//! The daemon: listener, per-connection I/O threads, verb dispatch,
//! journal-backed crash recovery, and graceful shutdown.
//!
//! Wire protocol: newline-delimited JSON in both directions. Each
//! request line is an object with a `"verb"` — `submit`, `result`,
//! `checkpoint`, `resume`, `stats`, `health`, `ping`, `shutdown` — and
//! each response line an object with an `"event"`. A `submit` is
//! answered immediately with
//! `accepted` or `rejected` (typed quota code), then `chunk` events
//! stream as the job runs and a final `done` event carries the
//! trajectory digest. Events for every job of a connection share that
//! connection's bounded outbox: a client that stops reading blocks its
//! own workers at the outbox, and nobody else's.
//!
//! Crash safety: every accepted job is appended to a [`Journal`] as a
//! `job <spec>` line, and every terminal outcome as a `done <id> …`
//! line. A daemon restarted over the same journal re-admits every job
//! whose `done` line is missing and re-runs it (headless — the original
//! client is gone; the recomputed outcome is available via `result`).
//! With a snapshot store attached, the re-run does not start from step 0:
//! `run_job` restores the job's latest durable mid-trajectory checkpoint
//! and continues from its recorded step. Jobs are deterministic and
//! checkpoints are bit-exact, so either way the resumed run produces the
//! same digest the uninterrupted run would have.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use limpet_harness::{shutdown, Journal, KernelCache, SnapshotStore};

use crate::json::Json;
use crate::queue::Bounded;
use crate::scheduler::{
    CheckpointRequester, JobOutcome, JobSpec, JobStatus, Pool, PoolConfig, QueuedJob,
};
use crate::tenant::{Ledger, QuotaConfig};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A TCP address, e.g. `127.0.0.1:7070` (port 0 picks a free port).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

/// Everything configurable about one daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub listen: Listen,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission quotas.
    pub quotas: QuotaConfig,
    /// Per-connection outbox capacity (events buffered before
    /// backpressure stalls the producing worker).
    pub outbox_cap: usize,
    /// Job journal path; `None` disables crash recovery.
    pub journal: Option<PathBuf>,
    /// Disk tier directory for the kernel cache; `None` stays in-memory.
    pub cache_dir: Option<PathBuf>,
    /// Wall-clock budget in milliseconds applied to every job that does
    /// not carry its own `deadline_ms`; `None` means jobs without a
    /// deadline run unbounded.
    pub default_deadline_ms: Option<u64>,
    /// Stuck-worker watchdog grace period in milliseconds; `None`
    /// disables the watchdog entirely.
    pub watchdog_ms: Option<u64>,
    /// Durable snapshot directory for mid-trajectory checkpoints. `None`
    /// defaults to `<cache_dir>/checkpoints` when a cache dir is set;
    /// with neither, checkpointing is disabled.
    pub snapshot_dir: Option<PathBuf>,
    /// Checkpoint cadence: snapshot every N completed chunks (plus on
    /// abort/deadline and on the `checkpoint` verb). 0 is treated as 1.
    pub checkpoint_every_chunks: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: Listen::Tcp("127.0.0.1:0".into()),
            workers: 2,
            quotas: QuotaConfig::default(),
            outbox_cap: 64,
            journal: None,
            cache_dir: None,
            default_deadline_ms: Some(300_000),
            watchdog_ms: Some(1_000),
            snapshot_dir: None,
            checkpoint_every_chunks: 1,
        }
    }
}

/// Service-wide monotonic counters (jobs, not per-tenant — the ledger
/// keeps those).
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    aborted: AtomicU64,
    rejected: AtomicU64,
    resumed: AtomicU64,
    connections: AtomicU64,
    /// Jobs that hit their wall-clock budget (cooperatively, at a chunk
    /// boundary) and ended with status `deadline`.
    deadlines: AtomicU64,
    /// Times the watchdog had to forcibly reclaim a wedged worker (the
    /// non-cooperative subset of `deadlines`).
    watchdog_stalls: AtomicU64,
    /// Replacement workers spawned after reclaims.
    workers_respawned: AtomicU64,
    /// Per-tier finish counts (which rung of the execution ladder each
    /// job ended on) — the operator's view of native promotion working.
    tier_native: AtomicU64,
    tier_optimized: AtomicU64,
    tier_raw: AtomicU64,
    tier_reference: AtomicU64,
}

/// Shared state behind every connection and worker.
struct ServerState {
    ledger: Ledger,
    journal: Mutex<Option<Journal>>,
    /// Terminal outcomes by job id, with FIFO eviction.
    results: Mutex<(BTreeMap<String, JobOutcome>, VecDeque<String>)>,
    counters: Counters,
    next_id: AtomicU64,
    started: Instant,
    outbox_cap: usize,
    /// The durable snapshot store shared with the worker pool; `None`
    /// when checkpointing is disabled.
    snapshots: Option<Arc<SnapshotStore>>,
}

const RESULT_RETENTION: usize = 4096;

impl ServerState {
    fn fresh_id(&self) -> String {
        format!("job-{}", self.next_id.fetch_add(1, Ordering::SeqCst))
    }

    fn record_result(&self, outcome: JobOutcome) {
        let mut guard = self.results.lock().unwrap_or_else(|p| p.into_inner());
        let (map, order) = &mut *guard;
        if map.insert(outcome.id.clone(), outcome.clone()).is_none() {
            order.push_back(outcome.id.clone());
            while order.len() > RESULT_RETENTION {
                if let Some(old) = order.pop_front() {
                    map.remove(&old);
                }
            }
        }
    }

    fn journal_line(&self, line: &str) {
        let guard = self.journal.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(j) = guard.as_ref() {
            if let Err(e) = j.record(line) {
                eprintln!("limpet-serve: journal write failed: {e}");
            }
        }
    }

    /// The terminal bookkeeping every job goes through, however it ran.
    fn on_done(&self, spec: &JobSpec, outcome: &JobOutcome) {
        let completed = outcome.status == JobStatus::Done;
        self.ledger.release(&spec.tenant, spec.cost(), completed);
        match outcome.status {
            JobStatus::Done => self.counters.completed.fetch_add(1, Ordering::SeqCst),
            JobStatus::Failed => self.counters.failed.fetch_add(1, Ordering::SeqCst),
            JobStatus::Aborted => self.counters.aborted.fetch_add(1, Ordering::SeqCst),
            JobStatus::Deadline => self.counters.deadlines.fetch_add(1, Ordering::SeqCst),
        };
        match outcome.tier.as_deref() {
            Some("native") => self.counters.tier_native.fetch_add(1, Ordering::SeqCst),
            Some("optimized") => self.counters.tier_optimized.fetch_add(1, Ordering::SeqCst),
            Some("raw") => self.counters.tier_raw.fetch_add(1, Ordering::SeqCst),
            Some("reference") => self.counters.tier_reference.fetch_add(1, Ordering::SeqCst),
            _ => 0,
        };
        // A job aborted by daemon shutdown keeps its journal slot open so
        // the next incarnation resumes it; any other terminal state is
        // recorded so it is *not* re-run. A `deadline` job journals its
        // `done` line deliberately: re-running a job that already blew
        // its budget would just time out again on the next incarnation.
        let shutdown_abort = outcome.status == JobStatus::Aborted && shutdown::requested();
        if !shutdown_abort {
            self.journal_line(&format!("done {}", outcome.to_json()));
        }
        self.record_result(outcome.clone());
    }

    fn stats_json(&self, queued: usize) -> Json {
        let cache = KernelCache::global();
        let cache_stats = Json::parse(&cache.stats().to_json()).unwrap_or(Json::Null);
        let incidents = Json::parse(&limpet_harness::incidents_json(&cache.incidents()))
            .unwrap_or(Json::Arr(Vec::new()));
        let c = &self.counters;
        Json::obj(vec![
            ("event", Json::str("stats")),
            ("uptime_s", self.started.elapsed().as_secs_f64().into()),
            (
                "jobs",
                Json::obj(vec![
                    ("submitted", c.submitted.load(Ordering::SeqCst).into()),
                    ("completed", c.completed.load(Ordering::SeqCst).into()),
                    ("failed", c.failed.load(Ordering::SeqCst).into()),
                    ("aborted", c.aborted.load(Ordering::SeqCst).into()),
                    ("deadlines", c.deadlines.load(Ordering::SeqCst).into()),
                    ("rejected", c.rejected.load(Ordering::SeqCst).into()),
                    ("resumed", c.resumed.load(Ordering::SeqCst).into()),
                    ("connections", c.connections.load(Ordering::SeqCst).into()),
                    ("active", self.ledger.total_active().into()),
                    ("queued", queued.into()),
                ]),
            ),
            (
                "tiers",
                Json::obj(vec![
                    ("native", c.tier_native.load(Ordering::SeqCst).into()),
                    ("optimized", c.tier_optimized.load(Ordering::SeqCst).into()),
                    ("raw", c.tier_raw.load(Ordering::SeqCst).into()),
                    ("reference", c.tier_reference.load(Ordering::SeqCst).into()),
                ]),
            ),
            ("survivability", self.survivability_json()),
            ("cache", cache_stats),
            ("incidents", incidents),
            ("tenants", self.ledger.usage_json()),
        ])
    }

    /// The deadline/watchdog/checkpoint health block shared by `stats`
    /// and `health`: how often the daemon had to defend itself, and how
    /// often the snapshot store let work survive. `resumes` counts
    /// successful snapshot loads (journal replay, the `resume` verb, and
    /// client reconnects all go through the same store).
    fn survivability_json(&self) -> Json {
        let c = &self.counters;
        let ck = self
            .snapshots
            .as_deref()
            .map(SnapshotStore::stats)
            .unwrap_or_default();
        Json::obj(vec![
            ("deadlines", c.deadlines.load(Ordering::SeqCst).into()),
            (
                "watchdog_stalls",
                c.watchdog_stalls.load(Ordering::SeqCst).into(),
            ),
            (
                "workers_respawned",
                c.workers_respawned.load(Ordering::SeqCst).into(),
            ),
            ("checkpoints", ck.saved.into()),
            ("resumes", (ck.loaded_current + ck.loaded_previous).into()),
            ("checkpoint_rejects", ck.rejected_total().into()),
            ("checkpoint_restarts", ck.fell_to_zero.into()),
        ])
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Stream {
    Tcp(std::net::TcpStream),
    Unix(std::os::unix::net::UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    fn shutdown_both(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn set_read_timeout(&self, dur: Duration) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(Some(dur)),
            Stream::Unix(s) => s.set_read_timeout(Some(dur)),
        }
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A running daemon.
pub struct Server {
    state: Arc<ServerState>,
    pool: Option<Pool>,
    listener: Listener,
    /// The address actually bound (resolves TCP port 0).
    local_addr: String,
    conn_handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Server {
    /// Binds the listener, attaches the disk cache tier, replays the
    /// journal (resubmitting every job without a terminal record), and
    /// spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the socket, cache
    /// directory, or journal cannot be set up.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        if let Some(dir) = &config.cache_dir {
            let disk = limpet_harness::DiskCache::open(dir)?;
            KernelCache::global().set_disk_cache(Some(Arc::new(disk)));
        }
        // The snapshot store lives beside the disk cache by default: same
        // volume, same operational lifetime.
        let snapshot_dir = config
            .snapshot_dir
            .clone()
            .or_else(|| config.cache_dir.as_ref().map(|d| d.join("checkpoints")));
        let snapshots = match &snapshot_dir {
            None => None,
            Some(dir) => Some(Arc::new(SnapshotStore::new(dir)?)),
        };
        let listener = match &config.listen {
            Listen::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr)?),
            Listen::Unix(path) => {
                // A previous unclean exit leaves the socket file behind;
                // binding over it is the expected daemon restart path.
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        let local_addr = match &listener {
            Listener::Tcp(l) => l.local_addr()?.to_string(),
            Listener::Unix(_) => match &config.listen {
                Listen::Unix(p) => p.display().to_string(),
                Listen::Tcp(_) => unreachable!("listener kind follows config"),
            },
        };
        match &listener {
            Listener::Tcp(l) => l.set_nonblocking(true)?,
            Listener::Unix(l) => l.set_nonblocking(true)?,
        }

        let mut resumable: Vec<JobSpec> = Vec::new();
        let journal = match &config.journal {
            None => None,
            Some(path) => {
                let (journal, lines) = Journal::open(path, "limpet-serve job journal v1")?;
                resumable = replay(&lines);
                Some(journal)
            }
        };

        let state = Arc::new(ServerState {
            ledger: Ledger::new(config.quotas),
            journal: Mutex::new(journal),
            results: Mutex::new((BTreeMap::new(), VecDeque::new())),
            counters: Counters::default(),
            next_id: AtomicU64::new(1),
            started: Instant::now(),
            outbox_cap: config.outbox_cap.max(1),
            snapshots: snapshots.clone(),
        });
        let pool_state = Arc::clone(&state);
        let stall_state = Arc::clone(&state);
        let pool = Pool::new(
            PoolConfig {
                workers: config.workers,
                queue_cap: config.quotas.max_queue_depth.max(1),
                default_deadline_ms: config.default_deadline_ms,
                watchdog: config
                    .watchdog_ms
                    .map(|ms| Duration::from_millis(ms.max(1))),
                snapshot_store: snapshots,
                checkpoint_every_chunks: config.checkpoint_every_chunks,
            },
            move |spec, outcome| pool_state.on_done(spec, outcome),
            move |spec, reason| {
                // A worker that had to be forcibly reclaimed was most
                // likely wedged inside this model's native kernel:
                // quarantine that slot so reruns take the bytecode tier,
                // and count the stall + respawn for `stats`/`health`.
                stall_state
                    .counters
                    .watchdog_stalls
                    .fetch_add(1, Ordering::SeqCst);
                stall_state
                    .counters
                    .workers_respawned
                    .fetch_add(1, Ordering::SeqCst);
                KernelCache::global()
                    .native_registry()
                    .quarantine_for_model(spec.model.name(), reason);
            },
        );

        for spec in resumable {
            state.counters.resumed.fetch_add(1, Ordering::SeqCst);
            state.counters.submitted.fetch_add(1, Ordering::SeqCst);
            state.ledger.admit_resumed(&spec.tenant);
            // Journal already holds the job line from the previous
            // incarnation; do not re-append it.
            let _ = pool.submit(QueuedJob { spec, outbox: None });
        }

        Ok(Server {
            state,
            pool: Some(pool),
            listener,
            local_addr,
            conn_handles: Vec::new(),
        })
    }

    /// The bound address (`host:port` for TCP — useful with port 0 —
    /// or the socket path).
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Accepts connections until [`shutdown::requested`], then winds
    /// down: stops accepting, closes live connections, aborts running
    /// jobs at their next chunk boundary (leaving them journaled for the
    /// next incarnation), and joins every thread.
    pub fn serve_forever(mut self) {
        loop {
            if shutdown::requested() {
                break;
            }
            let accepted = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => Some(Stream::Tcp(s)),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) => {
                        eprintln!("limpet-serve: accept failed: {e}");
                        None
                    }
                },
                Listener::Unix(l) => match l.accept() {
                    Ok((s, _)) => Some(Stream::Unix(s)),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(e) => {
                        eprintln!("limpet-serve: accept failed: {e}");
                        None
                    }
                },
            };
            match accepted {
                Some(stream) => self.spawn_connection(stream),
                None => std::thread::sleep(Duration::from_millis(10)),
            }
            self.reap_connections();
        }
        self.stop();
    }

    fn reap_connections(&mut self) {
        let mut live = Vec::new();
        for h in self.conn_handles.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        self.conn_handles = live;
    }

    fn spawn_connection(&mut self, stream: Stream) {
        self.state
            .counters
            .connections
            .fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&self.state);
        let pool_queue = self
            .pool
            .as_ref()
            .map(PoolHandle::new)
            .expect("pool lives until stop()");
        let handle = std::thread::Builder::new()
            .name("limpet-conn".into())
            .spawn(move || serve_connection(stream, state, pool_queue))
            .expect("spawning a connection thread");
        self.conn_handles.push(handle);
    }

    /// Stops the daemon: workers abort at chunk boundaries, unfinished
    /// jobs stay journaled for resume, and the disk-cache tier is
    /// detached (releasing its resources with no operation in flight).
    fn stop(mut self) {
        if let Some(pool) = self.pool.take() {
            pool.shutdown(false);
        }
        for h in self.conn_handles.drain(..) {
            let _ = h.join();
        }
        KernelCache::global().set_disk_cache(None);
    }
}

/// What a connection needs from the pool: submit access and the
/// checkpoint-request capability, without owning the pool (the server
/// keeps ownership for shutdown).
struct PoolHandle {
    queue: Arc<Bounded<QueuedJob>>,
    ckpt: CheckpointRequester,
}

impl PoolHandle {
    fn new(pool: &Pool) -> PoolHandle {
        PoolHandle {
            queue: pool.queue_handle(),
            ckpt: pool.checkpoint_requester(),
        }
    }

    fn submit(&self, job: QueuedJob) -> Result<(), crate::queue::Closed> {
        self.queue.push(job)
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }
}

/// Replays journal lines into the list of jobs to resume: every
/// `job <spec>` without a *later* matching `done {"id":…}` record.
/// Order-aware on purpose — the `resume` verb re-journals a job after
/// its `done` line (e.g. a deadline the operator chose to continue), and
/// that re-opened job must survive the next replay too.
fn replay(lines: &[String]) -> Vec<JobSpec> {
    let mut open: BTreeMap<String, JobSpec> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for line in lines {
        if let Some(body) = line.strip_prefix("job ") {
            if let Ok(v) = Json::parse(body) {
                if let Ok(spec) = JobSpec::from_json(&v, "journal") {
                    if open.insert(spec.id.clone(), spec.clone()).is_none() {
                        order.push(spec.id);
                    }
                }
            }
        } else if let Some(body) = line.strip_prefix("done ") {
            if let Ok(v) = Json::parse(body) {
                if let Some(id) = v.get("id").and_then(Json::as_str) {
                    open.remove(id);
                    order.retain(|o| o != id);
                }
            }
        }
    }
    order
        .into_iter()
        .filter_map(|id| open.remove(&id))
        .collect()
}

/// Longest request line the daemon accepts. One NDJSON frame is one job
/// spec or verb — a megabyte is orders of magnitude past any legitimate
/// frame (inline model sources included), so anything longer is either a
/// protocol error or a memory-exhaustion attempt.
const MAX_LINE: usize = 1 << 20;

/// One connection: a writer thread drains the bounded outbox to the
/// socket while this (reader) thread parses request lines and dispatches
/// verbs. Reader EOF closes the outbox, which cancels any of this
/// connection's jobs still pushing events. Reads run under a short
/// timeout so the reader notices a daemon shutdown even while idle.
///
/// Hostile-input rules: a request line with invalid UTF-8 gets a typed
/// `error` event and the connection keeps going (the newline frame
/// boundary is still unambiguous); a line that exceeds [`MAX_LINE`]
/// gets a typed `error` event and the connection is closed (the frame
/// boundary can no longer be trusted); a torn final frame at EOF is
/// processed as-is, matching `read_line` semantics for clients that
/// close without a trailing newline.
fn serve_connection(stream: Stream, state: Arc<ServerState>, pool: PoolHandle) {
    let outbox: Arc<Bounded<String>> = Arc::new(Bounded::new(state.outbox_cap));
    let (write_half, ctrl) = match (stream.try_clone(), stream.try_clone()) {
        (Ok(w), Ok(c)) => (w, c),
        _ => return,
    };
    if stream.set_read_timeout(Duration::from_millis(200)).is_err() {
        return;
    }
    let writer_outbox = Arc::clone(&outbox);
    let writer = std::thread::Builder::new()
        .name("limpet-conn-writer".into())
        .spawn(move || {
            let mut stream = write_half;
            while let Some(line) = writer_outbox.pop() {
                if stream.write_all(line.as_bytes()).is_err()
                    || stream.write_all(b"\n").is_err()
                    || stream.flush().is_err()
                {
                    // Client gone: close so blocked workers abort.
                    writer_outbox.close();
                    break;
                }
            }
        })
        .expect("spawning a connection writer thread");

    let mut reader = BufReader::new(stream);
    let mut acc: Vec<u8> = Vec::new();
    loop {
        if shutdown::requested() {
            break;
        }
        // Cap each read at the remaining line budget so a firehose with
        // no newline cannot grow `acc` without bound inside one call.
        let budget = (MAX_LINE + 1).saturating_sub(acc.len()) as u64;
        let n = match std::io::Read::take(&mut reader, budget).read_until(b'\n', &mut acc) {
            Ok(n) => n,
            // Timeout mid-wait (or mid-line: partial bytes stay in
            // `acc` and the next pass appends to them).
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        if acc.len() > MAX_LINE {
            let _ = outbox.push(error_event("request line exceeds 1 MiB; closing").to_string());
            break;
        }
        let eof = n == 0;
        if eof && acc.is_empty() {
            break;
        }
        if !eof && acc.last() != Some(&b'\n') {
            // Partial line (the take budget or pending EOF split it);
            // keep accumulating.
            continue;
        }
        let line = match String::from_utf8(std::mem::take(&mut acc)) {
            Ok(s) => s,
            Err(_) => {
                if outbox
                    .push(error_event("request line is not valid UTF-8").to_string())
                    .is_err()
                {
                    break;
                }
                if eof {
                    break;
                }
                continue;
            }
        };
        if !line.trim().is_empty() {
            if let Some(resp) = dispatch(&line, &state, &pool, &outbox) {
                if outbox.push(resp.to_string()).is_err() {
                    break;
                }
            }
        }
        if eof {
            break;
        }
    }
    outbox.close();
    // Give the writer a moment to flush the tail of the outbox (e.g. a
    // final `stopping` response), then cut the socket to unblock it if
    // the client has stopped reading, and join.
    let flush_deadline = Instant::now() + Duration::from_secs(2);
    while !writer.is_finished() && Instant::now() < flush_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    ctrl.shutdown_both();
    let _ = writer.join();
}

fn error_event(reason: &str) -> Json {
    Json::obj(vec![
        ("event", Json::str("error")),
        ("reason", Json::str(reason)),
    ])
}

/// Handles one request line; `Some(response)` is queued behind any
/// streaming events already in the outbox.
fn dispatch(
    line: &str,
    state: &Arc<ServerState>,
    pool: &PoolHandle,
    outbox: &Arc<Bounded<String>>,
) -> Option<Json> {
    let v = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return Some(error_event(&format!("bad JSON: {e}"))),
    };
    let verb = match v.get("verb").and_then(Json::as_str) {
        Some(s) => s.to_owned(),
        None => return Some(error_event("missing 'verb'")),
    };
    match verb.as_str() {
        "ping" => Some(Json::obj(vec![("event", Json::str("pong"))])),
        "health" => Some(Json::obj(vec![
            ("event", Json::str("health")),
            ("status", Json::str("ok")),
            ("uptime_s", state.started.elapsed().as_secs_f64().into()),
            ("active", state.ledger.total_active().into()),
            ("survivability", state.survivability_json()),
        ])),
        "stats" => Some(state.stats_json(pool.queued())),
        "result" => {
            let id = v.get("id").and_then(Json::as_str).unwrap_or("");
            let guard = state.results.lock().unwrap_or_else(|p| p.into_inner());
            match guard.0.get(id) {
                Some(outcome) => Some(outcome.to_json()),
                None => Some(Json::obj(vec![
                    ("event", Json::str("pending")),
                    ("id", Json::str(id)),
                ])),
            }
        }
        "shutdown" => {
            shutdown::request();
            Some(Json::obj(vec![("event", Json::str("stopping"))]))
        }
        "checkpoint" => {
            let id = v.get("id").and_then(Json::as_str).unwrap_or("");
            if id.is_empty() {
                return Some(error_event("checkpoint requires 'id'"));
            }
            let Some(store) = &state.snapshots else {
                return Some(error_event("checkpointing is disabled (no snapshot dir)"));
            };
            // `active` — the owning worker will snapshot at its next
            // chunk boundary; `snapshot` — a durable snapshot already
            // exists right now (an earlier cadence save).
            let active = pool.ckpt.request(id);
            Some(Json::obj(vec![
                ("event", Json::str("checkpoint")),
                ("id", Json::str(id)),
                ("active", active.into()),
                ("snapshot", store.has(id).into()),
            ]))
        }
        "resume" => Some(resume(&v, state, pool, outbox)),
        "submit" => Some(submit(&v, state, pool, outbox)),
        other => Some(error_event(&format!("unknown verb '{other}'"))),
    }
}

fn submit(
    v: &Json,
    state: &Arc<ServerState>,
    pool: &PoolHandle,
    outbox: &Arc<Bounded<String>>,
) -> Json {
    let fallback = state.fresh_id();
    let spec = match JobSpec::from_json(v, &fallback) {
        Ok(s) => s,
        Err(e) => return error_event(&e),
    };
    admit_and_queue(spec, state, pool, outbox, None)
}

/// The `resume` verb: re-admits a job from its durable snapshot. The
/// snapshot embeds the original job-spec JSON, so the caller supplies
/// only the id; the resubmitted job then restores the snapshot inside
/// `run_job` and continues from the recorded step. Works for jobs the
/// daemon lost to a crash, a disconnect, or (deliberately) a deadline.
fn resume(
    v: &Json,
    state: &Arc<ServerState>,
    pool: &PoolHandle,
    outbox: &Arc<Bounded<String>>,
) -> Json {
    let id = v.get("id").and_then(Json::as_str).unwrap_or("");
    if id.is_empty() {
        return error_event("resume requires 'id'");
    }
    let Some(store) = &state.snapshots else {
        return error_event("checkpointing is disabled (no snapshot dir)");
    };
    // Run the real load ladder: a corrupt current file is rejected,
    // healed, and the previous rotation (if any) serves the resume.
    let outcome = store.load(id);
    for (path, reason) in &outcome.rejects {
        eprintln!(
            "limpet-serve: checkpoint: rejected snapshot {} ({}); removed",
            path.display(),
            reason.as_str()
        );
    }
    let Some(snap) = &outcome.snapshot else {
        return error_event(&format!("no durable snapshot for job '{id}'"));
    };
    let Some(meta) = &snap.meta else {
        return error_event(&format!("snapshot for job '{id}' carries no job spec"));
    };
    let spec = match Json::parse(meta).map_err(|e| e.to_string()).and_then(|m| {
        JobSpec::from_json(&m, id).map_err(|e| format!("snapshot spec for '{id}' invalid: {e}"))
    }) {
        Ok(s) => s,
        Err(e) => return error_event(&e),
    };
    admit_and_queue(spec, state, pool, outbox, Some(snap.steps_done))
}

/// Shared admission tail of `submit` and `resume`: quota check, journal
/// `job` line, and hand-off to the pool.
fn admit_and_queue(
    spec: JobSpec,
    state: &Arc<ServerState>,
    pool: &PoolHandle,
    outbox: &Arc<Bounded<String>>,
    resumed_from: Option<u64>,
) -> Json {
    if let Err(r) = state.ledger.admit(&spec.tenant, spec.cost()) {
        state.counters.rejected.fetch_add(1, Ordering::SeqCst);
        return Json::obj(vec![
            ("event", Json::str("rejected")),
            ("id", Json::str(&spec.id)),
            ("code", u64::from(r.code).into()),
            ("reason", Json::str(&r.reason)),
        ]);
    }
    state.counters.submitted.fetch_add(1, Ordering::SeqCst);
    state.journal_line(&format!("job {}", spec.to_json()));
    let mut fields = vec![
        ("event", Json::str("accepted")),
        ("id", Json::str(&spec.id)),
        ("tenant", Json::str(&spec.tenant)),
        ("cost", spec.cost().into()),
    ];
    if let Some(step) = resumed_from {
        fields.push(("resumed_from_step", step.into()));
    }
    let accepted = Json::obj(fields);
    let job = QueuedJob {
        spec: spec.clone(),
        outbox: Some(Arc::clone(outbox)),
    };
    if pool.submit(job).is_err() {
        // Pool shutting down: undo the admission.
        state.ledger.release(&spec.tenant, spec.cost(), false);
        return error_event("server is shutting down");
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_line(id: &str) -> String {
        format!(
            r#"job {{"id":"{id}","tenant":"t","model":"HodgkinHuxley","config":"baseline","cells":8,"steps":4,"dt":0.01,"chunk":4}}"#
        )
    }

    #[test]
    fn replay_resumes_only_unfinished_jobs() {
        let lines = vec![
            spec_line("a"),
            spec_line("b"),
            format!(r#"done {{"event":"done","id":"a","status":"done"}}"#),
            "garbage line".to_owned(),
            spec_line("c"),
        ];
        let resumed = replay(&lines);
        let ids: Vec<&str> = resumed.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, ["b", "c"]);
    }

    #[test]
    fn replay_tolerates_malformed_records() {
        let lines = vec![
            "job not-json".to_owned(),
            "job {\"tenant\":\"x\"}".to_owned(), // missing model
            "done also-not-json".to_owned(),
        ];
        assert!(replay(&lines).is_empty());
    }

    /// Pins the key layout of `stats` and its survivability block so a
    /// field rename cannot silently break dashboards or the CI greps.
    #[test]
    fn stats_json_shape_is_pinned() {
        let state = ServerState {
            ledger: Ledger::new(QuotaConfig::default()),
            journal: Mutex::new(None),
            results: Mutex::new((BTreeMap::new(), VecDeque::new())),
            counters: Counters::default(),
            next_id: AtomicU64::new(1),
            started: Instant::now(),
            outbox_cap: 4,
            snapshots: None,
        };
        state.counters.deadlines.store(3, Ordering::SeqCst);
        state.counters.watchdog_stalls.store(2, Ordering::SeqCst);
        state.counters.workers_respawned.store(2, Ordering::SeqCst);

        let stats = state.stats_json(7);
        for key in [
            "event",
            "uptime_s",
            "jobs",
            "tiers",
            "survivability",
            "cache",
            "incidents",
            "tenants",
        ] {
            assert!(stats.get(key).is_some(), "stats is missing key '{key}'");
        }
        let jobs = stats.get("jobs").expect("jobs object");
        for key in [
            "submitted",
            "completed",
            "failed",
            "aborted",
            "deadlines",
            "rejected",
            "resumed",
            "connections",
            "active",
            "queued",
        ] {
            assert!(jobs.get(key).is_some(), "jobs is missing key '{key}'");
        }
        let surv = stats.get("survivability").expect("survivability object");
        let rendered = surv.to_string();
        assert_eq!(
            rendered,
            r#"{"checkpoint_rejects":0,"checkpoint_restarts":0,"checkpoints":0,"deadlines":3,"resumes":0,"watchdog_stalls":2,"workers_respawned":2}"#,
            "survivability block shape drifted"
        );
    }

    /// A `resume`-verb re-journal must re-open a job that already has a
    /// `done` line — and a later `done` must close it again. Replay is
    /// order-aware, not a flat set-subtraction.
    #[test]
    fn replay_reopens_a_job_rejournaled_after_done() {
        let lines = vec![
            spec_line("a"),
            format!(r#"done {{"event":"done","id":"a","status":"deadline"}}"#),
            spec_line("a"), // the `resume` verb re-journals the spec
        ];
        let ids: Vec<String> = replay(&lines).into_iter().map(|s| s.id).collect();
        assert_eq!(ids, ["a"]);

        let closed = vec![
            spec_line("a"),
            format!(r#"done {{"event":"done","id":"a","status":"deadline"}}"#),
            spec_line("a"),
            format!(r#"done {{"event":"done","id":"a","status":"done"}}"#),
        ];
        assert!(replay(&closed).is_empty());
    }
}
