//! # serve — the multi-tenant simulation service over the kernel cache
//!
//! The paper's compiler pipeline exists to feed a long-running host
//! simulator; this crate is the service boundary in front of it. The
//! `limpet-serve` daemon accepts simulation jobs — a roster model or
//! inline EasyML source × a pipeline configuration × a workload — over a
//! newline-delimited-JSON protocol on a TCP or Unix socket, runs them on
//! a bounded worker pool over the process-wide
//! [`limpet_harness::KernelCache`] (memory + disk tiers, so every
//! tenant's compile is compile-once per machine), and streams trajectory
//! chunks back with per-connection backpressure.
//!
//! The layering, bottom-up:
//!
//! * [`json`] — a minimal strict JSON codec (the workspace has no serde).
//! * [`queue`] — a bounded MPMC queue with close semantics; one per
//!   connection, it is the backpressure and cancellation primitive.
//! * [`tenant`] — the admission ledger: per-tenant concurrency, per-job
//!   cost, and service-wide depth limits with typed 413/429/503
//!   rejections.
//! * [`scheduler`] — job specs (one JSON codec for wire + journal),
//!   deterministic execution on the harness's resilient simulation path
//!   (faults degrade a job down the tier ladder, never the daemon), and
//!   the worker pool.
//! * [`server`] — the daemon: listener, per-connection reader/writer
//!   threads, verb dispatch, journal-backed crash recovery, graceful
//!   shutdown.
//!
//! See `DESIGN.md` §12 for the wire protocol and failure semantics.

#![warn(missing_docs)]

pub mod json;
pub mod queue;
pub mod scheduler;
pub mod server;
pub mod tenant;

pub use json::Json;
pub use queue::Bounded;
pub use scheduler::{
    parse_config, CheckpointRequester, JobOutcome, JobSpec, JobStatus, ModelRef, Pool, PoolConfig,
    QueuedJob, RunCtl,
};
pub use server::{Listen, Server, ServerConfig};
pub use tenant::{Ledger, QuotaConfig, Rejection, TenantUsage};
