//! A minimal JSON value type, parser, and printer for the wire protocol.
//!
//! The build environment has no crates.io access, so `serde_json` is not
//! an option; the protocol needs only a small, strict subset of JSON —
//! objects, arrays, strings, finite numbers, booleans, null — and this
//! module implements exactly that. Parsing is recursive descent with a
//! depth cap (a hostile client must not be able to blow the daemon's
//! stack with `[[[[…`), printing is compact single-line output so one
//! value is always one wire line.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has no NaN/Inf; printing a non-finite value
    /// degrades to `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted (BTreeMap) so printing is
    /// deterministic — journal lines and test assertions depend on that.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object; `None` on other kinds.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions
    /// and values outside `u64`).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if (0.0..=9.007_199_254_740_992e15).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON value from `text`, requiring that nothing but
    /// whitespace follows it.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    // Shortest round-trip float formatting (Rust default).
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number '{text}' at byte {start}"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point \\u{hex}"))?;
                            out.push(c);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "string is not UTF-8".to_owned())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_value() {
        let text =
            r#"{"verb":"submit","cells":64,"dt":0.01,"tags":["a","b"],"deep":{"x":null,"y":true}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("verb").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("cells").and_then(Json::as_u64), Some(64));
        assert_eq!(v.get("dt").and_then(Json::as_f64), Some(0.01));
        assert_eq!(
            v.get("tags").and_then(Json::as_arr).map(<[_]>::len),
            Some(2)
        );
        // Printing then reparsing is identity.
        let reparsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = Json::str("a\"b\\c\nd\te\u{1}");
        let printed = v.to_string();
        assert!(printed.contains("\\\""), "{printed}");
        assert!(printed.contains("\\u0001"), "{printed}");
        assert_eq!(Json::parse(&printed).unwrap(), v);
        // Unicode passes through unescaped.
        let u = Json::str("Vm→∞");
        assert_eq!(Json::parse(&u.to_string()).unwrap(), u);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} trailing",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_cap_stops_hostile_nesting() {
        let bomb = "[".repeat(100_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(64.0).to_string(), "64");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn u64_conversion_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
    }
}
