//! A small bounded MPMC queue (mutex + condvars) — the backpressure
//! primitive of the service.
//!
//! Every connection owns one [`Bounded`] outbox: workers `push` job
//! events into it (blocking when the client reads too slowly), a writer
//! thread `pop`s and writes to the socket. Closing the queue wakes every
//! blocked pusher and popper, which is how a dead connection cancels its
//! in-flight jobs instead of wedging a pool worker forever.
//!
//! The standard library's `mpsc::sync_channel` would almost fit, but its
//! sender is `!Sync`-shaped for this use (one queue shared by several
//! pushing workers *and* the closing reader) and it cannot be closed from
//! the receiving side without dropping the receiver, which the writer
//! thread still owns. Fifty lines of mutex + condvar are simpler than
//! contorting around that.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Error returned by [`Bounded::push`] after [`Bounded::close`]: the
/// consumer is gone, so the producer should stop generating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

/// Error returned by [`Bounded::pop_timeout`] when the timeout elapses
/// with nothing available (the queue is still open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

#[derive(Debug)]
struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue with close semantics.
#[derive(Debug)]
pub struct Bounded<T> {
    cap: usize,
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1 is enforced).
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            cap: cap.max(1),
            state: Mutex::new(State {
                buf: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Appends `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] (with the item dropped) once the queue is
    /// closed — including when close happens while blocked.
    pub fn push(&self, item: T) -> Result<(), Closed> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(Closed);
            }
            if st.buf.len() < self.cap {
                st.buf.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Non-blocking [`Bounded::push`]: appends `item` only if there is
    /// room right now. Used by the stuck-worker watchdog, which must
    /// never let one connection's full outbox stall the sweep that
    /// protects every other connection.
    ///
    /// # Errors
    ///
    /// Returns [`Closed`] (with the item dropped) when the queue is
    /// closed or momentarily full.
    pub fn try_push(&self, item: T) -> Result<(), Closed> {
        let mut st = self.lock();
        if st.closed || st.buf.len() >= self.cap {
            return Err(Closed);
        }
        st.buf.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Removes the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.buf.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// [`Bounded::pop`] with a timeout; `Ok(None)` means closed+drained,
    /// `Err(TimedOut)` means the timeout elapsed with nothing available.
    ///
    /// # Errors
    ///
    /// Returns [`TimedOut`] on timeout.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<Option<T>, TimedOut> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            if let Some(item) = st.buf.pop_front() {
                self.not_full.notify_one();
                return Ok(Some(item));
            }
            if st.closed {
                return Ok(None);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(TimedOut);
            }
            let (guard, _) = self
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Closes the queue: every blocked or future [`Bounded::push`] fails,
    /// and [`Bounded::pop`] drains the remaining items then returns
    /// `None`. Idempotent.
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// True once [`Bounded::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Items currently buffered.
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_blocks_at_capacity_until_popped() {
        let q = Arc::new(Bounded::new(2));
        q.push(1).unwrap();
        q.push(2).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(3));
        // The pusher must be blocked: the queue stays at capacity.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        pusher.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_wakes_blocked_pusher_with_error() {
        let q = Arc::new(Bounded::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert_eq!(pusher.join().unwrap(), Err(Closed));
        // Drain semantics: buffered items survive the close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "closed+empty stays None");
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_closed() {
        let q: Bounded<u32> = Bounded::new(4);
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Err(TimedOut));
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Ok(None));
    }

    #[test]
    fn try_push_never_blocks() {
        let q = Bounded::new(1);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(Closed), "full queue refuses instantly");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        q.close();
        assert_eq!(q.try_push(4), Err(Closed));
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(Bounded::new(3));
        let mut handles = Vec::new();
        for t in 0..4 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    q.push(t * 100 + i).unwrap();
                }
            }));
        }
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(q.pop().unwrap());
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 100, "every pushed item arrives exactly once");
    }
}
