//! # limpet-proptest
//!
//! A self-contained, offline re-implementation of the subset of the
//! [proptest](https://docs.rs/proptest) API that this workspace's property
//! tests use. The build environment has no network access to crates.io,
//! so the real crate cannot be vendored; test sources keep their original
//! `use proptest::prelude::*;` form via a Cargo dependency rename
//! (`proptest = { package = "limpet-proptest", ... }`).
//!
//! Supported surface:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive`, `prop_filter_map`,
//!   and [`Strategy::boxed`];
//! * range strategies (`-5.0f64..5.0`, `0u8..4`, `1usize..30`, …),
//!   [`Just`], tuple strategies (arity 2–10), [`any::<bool>()`](any),
//!   and string-pattern strategies (a small character-class + repetition
//!   subset of regex syntax, e.g. `"[A-Z][a-z]{2,8}"` and `"\\PC{0,200}"`);
//! * `prop::collection::vec`;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name, so failures reproduce exactly), and shrinking is **greedy**
//! rather than exhaustive — a failing case is minimized by repeatedly
//! halving numeric inputs toward their range start and truncating
//! collections/strings ([`Strategy::shrink`]), keeping any candidate
//! that still fails, and the panic reports both the original and the
//! minimized inputs. Strategies built through `prop_map` /
//! `prop_filter_map` do not shrink (the mapping cannot be inverted).

#![warn(missing_docs)]

use limpet_rng::SmallRng;
use std::ops::Range;
use std::sync::Arc;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property inside a `proptest!` body (produced by
/// [`prop_assert!`]/[`prop_assert_eq!`]).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Derives the deterministic RNG for one test (seeded by its full path).
pub fn test_rng(test_path: &str) -> SmallRng {
    SmallRng::seed_from_str(test_path)
}

/// Ties a case-runner closure's argument type to a strategy's value type
/// (the `proptest!` macro cannot name that type). Identity otherwise.
#[doc(hidden)]
pub fn bind_runner<S, F>(_strategy: &S, run: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    run
}

/// Greedily minimizes a failing input: walks the strategy's
/// [`Strategy::shrink`] candidates, restarting from the first candidate
/// that still fails, until no candidate fails or the step budget (1024
/// re-runs) is exhausted. Returns the minimized value, the error it
/// produced, and the number of candidates tried. Called by the
/// [`proptest!`] harness; public so custom harnesses can reuse it.
pub fn shrink_failure<S, F>(
    strategy: &S,
    mut best: S::Value,
    mut best_err: TestCaseError,
    run: &F,
) -> (S::Value, TestCaseError, usize)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    const MAX_STEPS: usize = 1024;
    let mut steps = 0;
    'outer: while steps < MAX_STEPS {
        for cand in strategy.shrink(&best) {
            steps += 1;
            if let Err(e) = run(&cand) {
                // Still failing: adopt the smaller input and restart from
                // its own candidates.
                best = cand;
                best_err = e;
                continue 'outer;
            }
            if steps >= MAX_STEPS {
                break 'outer;
            }
        }
        break; // every candidate passed: `best` is locally minimal
    }
    (best, best_err, steps)
}

/// A generator of random values — the trait the `in` clauses of
/// [`proptest!`] consume.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Proposes strictly "smaller" candidates for a failing `value`,
    /// most aggressive first (e.g. the range start before the halfway
    /// point). The default — for strategies that cannot shrink, such as
    /// mapped ones — proposes nothing.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates values, keeping only those `f` maps to `Some`.
    ///
    /// Gives up (panics) after 1000 consecutive rejections, mirroring
    /// proptest's global rejection limit.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps a strategy into one level of nesting, applied up to `depth`
    /// times. The `_desired_size`/`_expected_branch_size` tuning knobs of
    /// the real crate are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let rec = recurse(cur).boxed();
            let leaf = base.clone();
            // A generated value carries no record of which arm produced
            // it, so offer both arms' shrink candidates.
            let (shrink_rec, shrink_leaf) = (rec.clone(), leaf.clone());
            cur = BoxedStrategy {
                gen: Arc::new(move |rng: &mut SmallRng| {
                    if rng.gen_bool(0.5) {
                        rec.generate(rng)
                    } else {
                        leaf.generate(rng)
                    }
                }),
                shrinker: Arc::new(move |v| {
                    let mut out = shrink_leaf.shrink(v);
                    out.extend(shrink_rec.shrink(v));
                    out
                }),
            };
        }
        cur
    }

    /// Type-erases the strategy (shrinking is preserved).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = Arc::new(self);
        let gen_inner = Arc::clone(&inner);
        BoxedStrategy {
            gen: Arc::new(move |rng: &mut SmallRng| gen_inner.generate(rng)),
            shrinker: Arc::new(move |v: &Self::Value| inner.shrink(v)),
        }
    }
}

type Shrinker<V> = Arc<dyn Fn(&V) -> Vec<V>>;

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    gen: Arc<dyn Fn(&mut SmallRng) -> V>,
    shrinker: Shrinker<V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
            shrinker: Arc::clone(&self.shrinker),
        }
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        (self.gen)(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        (self.shrinker)(value)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected 1000 consecutive cases: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Numeric types whose range strategies know how to shrink: step a
/// failing value halfway back toward the range start.
pub trait ShrinkHalf: Sized {
    /// The point halfway between `start` and `v` (rounding toward
    /// `start`; `v` is always within the generating range, so `v >=
    /// start`).
    fn halfway(start: &Self, v: &Self) -> Self;
}

impl ShrinkHalf for f64 {
    fn halfway(start: &f64, v: &f64) -> f64 {
        start + (v - start) / 2.0
    }
}

macro_rules! impl_shrink_half_int {
    ($($t:ty),*) => {$(
        impl ShrinkHalf for $t {
            fn halfway(start: &$t, v: &$t) -> $t {
                start + (v - start) / 2
            }
        }
    )*};
}

impl_shrink_half_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: limpet_rng::SampleUniform + ShrinkHalf + PartialOrd + Clone> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        let mut out = Vec::new();
        for cand in [self.start.clone(), T::halfway(&self.start, value)] {
            if cand != *value && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            /// Shrinks one coordinate at a time, the others unchanged.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5), (G, 6));
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8)
);
impl_tuple_strategy!(
    (A, 0),
    (B, 1),
    (C, 2),
    (D, 3),
    (E, 4),
    (F, 5),
    (G, 6),
    (H, 7),
    (I, 8),
    (J, 9)
);

/// A uniform choice among boxed alternatives (the [`prop_oneof!`] target).
#[derive(Debug, Clone)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
    /// A generated value carries no record of its arm, so every arm's
    /// candidates are offered (failing ones are simply not kept by the
    /// greedy loop).
    fn shrink(&self, value: &V) -> Vec<V> {
        self.arms.iter().flat_map(|arm| arm.shrink(value)).collect()
    }
}

/// Types with a canonical strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

// --- string pattern strategies ------------------------------------------

/// One parsed atom of the mini pattern language.
#[derive(Debug, Clone)]
enum PatAtom {
    /// Explicit set of characters (from `[...]` classes or literals).
    Class(Vec<char>),
    /// `\PC`: any printable (non-control) character.
    Printable,
}

#[derive(Debug, Clone)]
struct PatPiece {
    atom: PatAtom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatPiece> {
    let mut pieces = Vec::new();
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                // Only the `\PC` (printable) escape plus literal escapes.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    PatAtom::Printable
                } else {
                    let c = *chars.get(i + 1).unwrap_or(&'\\');
                    i += 2;
                    PatAtom::Class(vec![c])
                }
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() && chars[i + 2] != ']'
                    {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                PatAtom::Class(set)
            }
            c => {
                i += 1;
                PatAtom::Class(vec![c])
            }
        };
        // Optional {n} / {m,n} quantifier.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .expect("unterminated {} quantifier");
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(PatPiece { atom, min, max });
    }
    pieces
}

/// Pool for `\PC`: ASCII printables plus a few multibyte characters so
/// UTF-8 boundary handling gets exercised.
fn printable_char(rng: &mut SmallRng) -> char {
    const EXTRA: [char; 8] = ['é', 'λ', 'ß', '→', '中', '🦀', '\u{AD}', 'Ω'];
    if rng.gen_bool(0.9) {
        char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()
    } else {
        EXTRA[rng.gen_range(0..EXTRA.len())]
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut SmallRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = if piece.min == piece.max {
                piece.min
            } else {
                rng.gen_range(piece.min..piece.max + 1)
            };
            for _ in 0..n {
                match &piece.atom {
                    PatAtom::Printable => out.push(printable_char(rng)),
                    PatAtom::Class(set) => {
                        assert!(!set.is_empty(), "empty character class in {self:?}");
                        out.push(set[rng.gen_range(0..set.len())]);
                    }
                }
            }
        }
        out
    }

    /// Truncates toward the pattern's minimum length (half, then one
    /// char shorter), always on a `char` boundary.
    fn shrink(&self, value: &String) -> Vec<String> {
        let min_chars: usize = parse_pattern(self).iter().map(|p| p.min).sum();
        let len = value.chars().count();
        let mut out: Vec<String> = Vec::new();
        for keep in [min_chars.max(len / 2), len.saturating_sub(1).max(min_chars)] {
            if keep < len {
                let cand: String = value.chars().take(keep).collect();
                if !out.contains(&cand) {
                    out.push(cand);
                }
            }
        }
        out
    }
}

/// The `prop::` facade module (`prop::collection::vec`, `prop::num`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, SmallRng, Strategy};

        /// A strategy for `Vec`s whose length is drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of `element` values with a length in `size`
        /// (a `usize` for exact length, or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Clone,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let n = if self.size.min == self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..self.size.max)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }

            /// Truncates (half, then one element shorter, never below the
            /// minimum length), then shrinks elements in place one at a
            /// time (most aggressive candidate per slot).
            fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
                let mut out = Vec::new();
                let len = value.len();
                let mut lens_seen = Vec::new();
                for keep in [
                    self.size.min.max(len / 2),
                    len.saturating_sub(1).max(self.size.min),
                ] {
                    if keep < len && !lens_seen.contains(&keep) {
                        lens_seen.push(keep);
                        out.push(value[..keep].to_vec());
                    }
                }
                for (i, v) in value.iter().enumerate() {
                    if let Some(cand) = self.element.shrink(v).into_iter().next() {
                        let mut next = value.clone();
                        next[i] = cand;
                        out.push(next);
                    }
                }
                out
            }
        }
    }
}

/// Length specification for [`prop::collection::vec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (exclusive, unless equal to `min`).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Defines property tests. See the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            // All bindings combine into one tuple strategy so the greedy
            // shrinker can minimize the whole failing input at once.
            let __strategy = ($($strat,)+);
            let __run = $crate::bind_runner(&__strategy, |__vals| {
                let ($($pat,)+) = ::std::clone::Clone::clone(__vals);
                $body
                ::std::result::Result::Ok(())
            });
            for __case in 0..__cfg.cases {
                let __value = $crate::Strategy::generate(&__strategy, &mut __rng);
                if let ::std::result::Result::Err(__err) = __run(&__value) {
                    let (__min, __min_err, __steps) =
                        $crate::shrink_failure(&__strategy, __value.clone(), __err.clone(), &__run);
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\ninputs: {:?}\n\
                         minimized ({} shrink steps): {}\nminimized inputs: {:?}",
                        __case + 1,
                        __cfg.cases,
                        __err,
                        __value,
                        __steps,
                        __min_err,
                        __min,
                    );
                }
            }
        }
    )*};
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Like `assert!`, but fails the surrounding property instead of
/// panicking directly (so the harness can report the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} != {:?}",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{}: {:?} != {:?}",
            ::std::format!($($fmt)+),
            __a,
            __b
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_rng("t1");
        let s = (0u8..4, -2.0f64..2.0, 1usize..5);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((-2.0..2.0).contains(&b));
            assert!((1..5).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::test_rng("t2");
        let ranged = prop::collection::vec(0.0f64..1.0, 1..16);
        let exact = prop::collection::vec(0.0f64..1.0, 7);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..16).contains(&v.len()));
            assert_eq!(exact.generate(&mut rng).len(), 7);
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_rng("t3");
        for _ in 0..100 {
            let name = "[A-Z][a-z]{2,8}".generate(&mut rng);
            let mut cs = name.chars();
            assert!(cs.next().unwrap().is_ascii_uppercase(), "{name}");
            let rest: Vec<char> = cs.collect();
            assert!((2..=8).contains(&rest.len()), "{name}");
            assert!(rest.iter().all(|c| c.is_ascii_lowercase()), "{name}");

            let junk = "\\PC{0,200}".generate(&mut rng);
            assert!(junk.chars().count() <= 200);
            assert!(junk.chars().all(|c| !c.is_control()), "{junk:?}");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_rng("t4");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // value only read via Debug on failure
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = crate::test_rng("t5");
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, mut patterns, and assertions.
        #[test]
        fn macro_end_to_end(mut xs in prop::collection::vec(0.0f64..10.0, 1..8), k in 1u8..5) {
            xs.sort_by(f64::total_cmp);
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]), "not sorted: {xs:?}");
            prop_assert_eq!(k as usize * 2 / 2, k as usize);
        }
    }

    #[test]
    fn range_shrink_halves_toward_start() {
        let s = 0u64..1000;
        assert_eq!(s.shrink(&800), vec![0, 400]);
        assert_eq!(s.shrink(&1), vec![0]); // halfway rounds onto start
        assert!(s.shrink(&0).is_empty());
        let f = -4.0f64..4.0;
        assert_eq!(f.shrink(&4.0), vec![-4.0, 0.0]);
    }

    #[test]
    fn vec_shrink_truncates_then_shrinks_elements() {
        let s = prop::collection::vec(0u8..100, 2..10);
        let cands = s.shrink(&vec![80, 60, 40, 20]);
        // Half-truncation and drop-last first, then element halving.
        assert!(cands.contains(&vec![80, 60]));
        assert!(cands.contains(&vec![80, 60, 40]));
        assert!(cands.contains(&vec![0, 60, 40, 20]));
        // Never below the minimum length.
        assert!(s.shrink(&vec![1, 2]).iter().all(|v| v.len() >= 2));
    }

    #[test]
    fn tuple_shrink_varies_one_coordinate() {
        let s = (0u8..10, 0u8..10);
        let cands = s.shrink(&(8, 6));
        assert!(cands.contains(&(0, 6)));
        assert!(cands.contains(&(4, 6)));
        assert!(cands.contains(&(8, 0)));
        assert!(cands.contains(&(8, 3)));
        assert!(!cands.contains(&(0, 0)), "one coordinate at a time");
    }

    #[test]
    fn string_shrink_truncates_on_char_boundaries() {
        let pat = "\\PC{0,200}";
        let cands = pat.shrink(&"ab🦀d".to_owned());
        assert!(cands.iter().all(|c| c.chars().count() < 4));
        assert!(cands.contains(&"ab".to_owned()));
        assert!(cands.contains(&"ab🦀".to_owned()));
        assert!(pat.shrink(&String::new()).is_empty());
    }

    #[test]
    fn greedy_shrink_minimizes_failures() {
        // Property: x < 10 — fails for any x >= 10; the minimal failing
        // input is 10, and halving from anywhere in 0..1000 must land in
        // the locally-minimal band [10, 19] (one more halving from 19
        // reaches 9, which passes).
        let strategy = (0u64..1000,);
        let run = |v: &(u64,)| -> Result<(), TestCaseError> {
            if v.0 < 10 {
                Ok(())
            } else {
                Err(TestCaseError(format!("{} too big", v.0)))
            }
        };
        let (min, err, steps) =
            crate::shrink_failure(&strategy, (800,), TestCaseError("seed".into()), &run);
        assert!((10..20).contains(&min.0), "got {min:?}");
        assert!(err.0.contains("too big"));
        assert!(steps > 0);
    }

    #[test]
    fn failing_proptest_reports_minimized_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            fn sum_stays_small(xs in prop::collection::vec(0u32..100, 0..20)) {
                prop_assert!(xs.iter().sum::<u32>() < 50, "sum too big: {xs:?}");
            }
        }
        let msg = *std::panic::catch_unwind(sum_stays_small)
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("panic payload is the formatted report");
        assert!(msg.contains("minimized inputs:"), "report: {msg}");
        // The minimized vector still violates the property but cannot be
        // shrunk further: parse it back out and check it is small.
        let min = msg.split("minimized inputs: (").nth(1).unwrap();
        let elems: Vec<u32> = min
            .trim_end_matches(|c| !char::is_numeric(c))
            .trim_start_matches('[')
            .split(|c: char| !c.is_numeric())
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().unwrap())
            .collect();
        let sum: u32 = elems.iter().sum();
        assert!(sum >= 50, "minimized case must still fail: {elems:?}");
        assert!(sum < 200, "shrinking should reduce the sum: {elems:?}");
    }
}
