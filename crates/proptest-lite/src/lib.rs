//! # limpet-proptest
//!
//! A self-contained, offline re-implementation of the subset of the
//! [proptest](https://docs.rs/proptest) API that this workspace's property
//! tests use. The build environment has no network access to crates.io,
//! so the real crate cannot be vendored; test sources keep their original
//! `use proptest::prelude::*;` form via a Cargo dependency rename
//! (`proptest = { package = "limpet-proptest", ... }`).
//!
//! Supported surface:
//!
//! * [`Strategy`] with `prop_map`, `prop_recursive`, `prop_filter_map`,
//!   and [`Strategy::boxed`];
//! * range strategies (`-5.0f64..5.0`, `0u8..4`, `1usize..30`, …),
//!   [`Just`], tuple strategies (arity 2–10), [`any::<bool>()`](any),
//!   and string-pattern strategies (a small character-class + repetition
//!   subset of regex syntax, e.g. `"[A-Z][a-z]{2,8}"` and `"\\PC{0,200}"`);
//! * `prop::collection::vec`;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//!   [`prop_assert_eq!`] macros and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! name, so failures reproduce exactly), and there is **no shrinking** —
//! a failing case reports its generated inputs via `Debug` instead.

#![warn(missing_docs)]

use limpet_rng::SmallRng;
use std::ops::Range;
use std::sync::Arc;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A failed property inside a `proptest!` body (produced by
/// [`prop_assert!`]/[`prop_assert_eq!`]).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Derives the deterministic RNG for one test (seeded by its full path).
pub fn test_rng(test_path: &str) -> SmallRng {
    SmallRng::seed_from_str(test_path)
}

/// A generator of random values — the trait the `in` clauses of
/// [`proptest!`] consume.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates values, keeping only those `f` maps to `Some`.
    ///
    /// Gives up (panics) after 1000 consecutive rejections, mirroring
    /// proptest's global rejection limit.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps a strategy into one level of nesting, applied up to `depth`
    /// times. The `_desired_size`/`_expected_branch_size` tuning knobs of
    /// the real crate are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let rec = recurse(cur).boxed();
            let leaf = base.clone();
            cur = BoxedStrategy {
                gen: Arc::new(move |rng: &mut SmallRng| {
                    if rng.gen_bool(0.5) {
                        rec.generate(rng)
                    } else {
                        leaf.generate(rng)
                    }
                }),
            };
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            gen: Arc::new(move |rng: &mut SmallRng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    gen: Arc<dyn Fn(&mut SmallRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
        }
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        (self.gen)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut SmallRng) -> U {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected 1000 consecutive cases: {}",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

impl<T: limpet_rng::SampleUniform + PartialOrd + Clone> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// A uniform choice among boxed alternatives (the [`prop_oneof!`] target).
#[derive(Debug, Clone)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

// --- string pattern strategies ------------------------------------------

/// One parsed atom of the mini pattern language.
#[derive(Debug, Clone)]
enum PatAtom {
    /// Explicit set of characters (from `[...]` classes or literals).
    Class(Vec<char>),
    /// `\PC`: any printable (non-control) character.
    Printable,
}

#[derive(Debug, Clone)]
struct PatPiece {
    atom: PatAtom,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatPiece> {
    let mut pieces = Vec::new();
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                // Only the `\PC` (printable) escape plus literal escapes.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    PatAtom::Printable
                } else {
                    let c = *chars.get(i + 1).unwrap_or(&'\\');
                    i += 2;
                    PatAtom::Class(vec![c])
                }
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() && chars[i + 2] != ']'
                    {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                PatAtom::Class(set)
            }
            c => {
                i += 1;
                PatAtom::Class(vec![c])
            }
        };
        // Optional {n} / {m,n} quantifier.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i)
                .expect("unterminated {} quantifier");
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(PatPiece { atom, min, max });
    }
    pieces
}

/// Pool for `\PC`: ASCII printables plus a few multibyte characters so
/// UTF-8 boundary handling gets exercised.
fn printable_char(rng: &mut SmallRng) -> char {
    const EXTRA: [char; 8] = ['é', 'λ', 'ß', '→', '中', '🦀', '\u{AD}', 'Ω'];
    if rng.gen_bool(0.9) {
        char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()
    } else {
        EXTRA[rng.gen_range(0..EXTRA.len())]
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut SmallRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let n = if piece.min == piece.max {
                piece.min
            } else {
                rng.gen_range(piece.min..piece.max + 1)
            };
            for _ in 0..n {
                match &piece.atom {
                    PatAtom::Printable => out.push(printable_char(rng)),
                    PatAtom::Class(set) => {
                        assert!(!set.is_empty(), "empty character class in {self:?}");
                        out.push(set[rng.gen_range(0..set.len())]);
                    }
                }
            }
        }
        out
    }
}

/// The `prop::` facade module (`prop::collection::vec`, `prop::num`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, SmallRng, Strategy};

        /// A strategy for `Vec`s whose length is drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of `element` values with a length in `size`
        /// (a `usize` for exact length, or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let n = if self.size.min == self.size.max {
                    self.size.min
                } else {
                    rng.gen_range(self.size.min..self.size.max)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Length specification for [`prop::collection::vec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (exclusive, unless equal to `min`).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Defines property tests. See the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let __value = $crate::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push(::std::format!("{:?}", __value));
                    let $pat = __value;
                )+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    ::std::panic!(
                        "proptest case {}/{} failed: {}\ninputs: [{}]",
                        __case + 1,
                        __cfg.cases,
                        e,
                        __inputs.join(", "),
                    );
                }
            }
        }
    )*};
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Like `assert!`, but fails the surrounding property instead of
/// panicking directly (so the harness can report the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} != {:?}",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{}: {:?} != {:?}",
            ::std::format!($($fmt)+),
            __a,
            __b
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_rng("t1");
        let s = (0u8..4, -2.0f64..2.0, 1usize..5);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((-2.0..2.0).contains(&b));
            assert!((1..5).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::test_rng("t2");
        let ranged = prop::collection::vec(0.0f64..1.0, 1..16);
        let exact = prop::collection::vec(0.0f64..1.0, 7);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..16).contains(&v.len()));
            assert_eq!(exact.generate(&mut rng).len(), 7);
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::test_rng("t3");
        for _ in 0..100 {
            let name = "[A-Z][a-z]{2,8}".generate(&mut rng);
            let mut cs = name.chars();
            assert!(cs.next().unwrap().is_ascii_uppercase(), "{name}");
            let rest: Vec<char> = cs.collect();
            assert!((2..=8).contains(&rest.len()), "{name}");
            assert!(rest.iter().all(|c| c.is_ascii_lowercase()), "{name}");

            let junk = "\\PC{0,200}".generate(&mut rng);
            assert!(junk.chars().count() <= 200);
            assert!(junk.chars().all(|c| !c.is_control()), "{junk:?}");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_rng("t4");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // value only read via Debug on failure
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        let s = leaf.prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = crate::test_rng("t5");
        for _ in 0..100 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, mut patterns, and assertions.
        #[test]
        fn macro_end_to_end(mut xs in prop::collection::vec(0.0f64..10.0, 1..8), k in 1u8..5) {
            xs.sort_by(f64::total_cmp);
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]), "not sorted: {xs:?}");
            prop_assert_eq!(k as usize * 2 / 2, k as usize);
        }
    }
}
