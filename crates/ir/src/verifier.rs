//! Structural and type verification of IR.
//!
//! [`verify_module`] checks SSA dominance (in the structured-region sense),
//! per-op typing rules, terminator placement, and cross-references (LUT
//! tables named by `lut.col` must exist).

use crate::module::{Func, Module, OpId, RegionId, ValueId};
use crate::ops::OpKind;
use crate::types::Type;
use std::collections::HashSet;
use std::fmt;

/// The category of a verification failure — a stable code for
/// programmatic classification (the harness incident log and tests key on
/// it instead of matching message strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum VerifyCode {
    /// An operand used before its definition or out of scope.
    Dominance,
    /// A terminator in the wrong place, or a region missing one.
    Terminator,
    /// An op with the wrong number of operands.
    Arity,
    /// An op whose operand/result types do not satisfy its typing rule.
    Type,
    /// A missing or malformed op attribute.
    Attribute,
    /// A dangling or inconsistent LUT cross-reference.
    LutRef,
    /// A structural rule violation (region shapes, nesting, counts).
    Structure,
}

impl VerifyCode {
    /// The stable kebab-case spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            VerifyCode::Dominance => "dominance",
            VerifyCode::Terminator => "terminator",
            VerifyCode::Arity => "arity",
            VerifyCode::Type => "type",
            VerifyCode::Attribute => "attribute",
            VerifyCode::LutRef => "lut-ref",
            VerifyCode::Structure => "structure",
        }
    }
}

impl fmt::Display for VerifyCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The failure category.
    pub code: VerifyCode,
    /// The module (model) being verified.
    pub model: Option<String>,
    /// The function in which the error occurred, if any.
    pub func: Option<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[verify/{}]", self.code)?;
        if let Some(m) = &self.model {
            write!(f, " in module '{m}'")?;
        }
        if let Some(name) = &self.func {
            write!(f, " in @{name}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Internal error carrier: a [`VerifyCode`] plus message, before module /
/// function attribution. Bare strings convert with code
/// [`VerifyCode::Type`] — the dominant category inside `verify_op` — and
/// every other category is tagged explicitly at the error site.
struct VErr {
    code: VerifyCode,
    message: String,
}

impl VErr {
    fn new(code: VerifyCode, message: impl Into<String>) -> VErr {
        VErr {
            code,
            message: message.into(),
        }
    }
}

impl From<String> for VErr {
    fn from(message: String) -> VErr {
        VErr::new(VerifyCode::Type, message)
    }
}

impl From<&str> for VErr {
    fn from(message: &str) -> VErr {
        VErr::new(VerifyCode::Type, message)
    }
}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
///
/// # Examples
///
/// ```
/// use limpet_ir::{Builder, Func, Module, verify_module};
/// let mut m = Module::new("m");
/// let mut f = Func::new("f", &[], &[]);
/// Builder::new(&mut f).ret(&[]);
/// m.add_func(f);
/// assert!(verify_module(&m).is_ok());
/// ```
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    let lut_err = |message: String| VerifyError {
        code: VerifyCode::LutRef,
        model: Some(module.name().to_owned()),
        func: None,
        message,
    };
    for lut in &module.luts {
        let func = module.func(&lut.func).ok_or_else(|| {
            lut_err(format!(
                "lut @{} references missing function @{}",
                lut.name, lut.func
            ))
        })?;
        if func.arg_types() != [Type::F64] {
            return Err(lut_err(format!(
                "lut function @{} must take a single f64 key",
                lut.func
            )));
        }
        if func.result_types().len() != lut.cols.len() {
            return Err(lut_err(format!(
                "lut @{} declares {} columns but @{} returns {} values",
                lut.name,
                lut.cols.len(),
                lut.func,
                func.result_types().len()
            )));
        }
        if lut.step <= 0.0 || lut.hi <= lut.lo {
            return Err(lut_err(format!(
                "lut @{} has an empty or inverted range",
                lut.name
            )));
        }
    }
    for func in module.funcs() {
        verify_func(module, func).map_err(|e| VerifyError {
            code: e.code,
            model: Some(module.name().to_owned()),
            func: Some(func.name().to_owned()),
            message: e.message,
        })?;
    }
    Ok(())
}

fn verify_func(module: &Module, func: &Func) -> Result<(), VErr> {
    let mut v = Verifier {
        module,
        func,
        defined: HashSet::new(),
    };
    v.verify_region(func.body(), None)
}

struct Verifier<'a> {
    module: &'a Module,
    func: &'a Func,
    defined: HashSet<ValueId>,
}

impl<'a> Verifier<'a> {
    fn ty(&self, v: ValueId) -> Type {
        self.func.value_type(v)
    }

    /// Verifies ops of `region`; `enclosing` is the op owning the region
    /// (`None` for the function body). Values defined inside the region —
    /// its arguments and every op result, including those of nested
    /// regions — go out of scope when this returns, enforcing
    /// structured-region dominance.
    fn verify_region(&mut self, region: RegionId, enclosing: Option<OpId>) -> Result<(), VErr> {
        let mut added: Vec<ValueId> = Vec::new();
        // Region arguments are visible within the region only.
        for &a in &self.func.region(region).args {
            if self.defined.insert(a) {
                added.push(a);
            }
        }
        let result = self.verify_region_inner(region, enclosing, &mut added);
        for v in added {
            self.defined.remove(&v);
        }
        result
    }

    fn verify_region_inner(
        &mut self,
        region: RegionId,
        enclosing: Option<OpId>,
        added: &mut Vec<ValueId>,
    ) -> Result<(), VErr> {
        let ops = &self.func.region(region).ops;
        for (i, &op_id) in ops.iter().enumerate() {
            let op = self.func.op(op_id);
            // Dominance: all operands already defined and in scope.
            for &operand in &op.operands {
                if !self.defined.contains(&operand) {
                    return Err(VErr::new(
                        VerifyCode::Dominance,
                        format!("{} uses value defined later or out of scope", op.kind),
                    ));
                }
            }
            // Terminators must be last; last op of a sub-region must terminate.
            if op.kind.is_terminator() && i + 1 != ops.len() {
                return Err(VErr::new(
                    VerifyCode::Terminator,
                    format!("{} is not the last op of its region", op.kind),
                ));
            }
            self.verify_op(op_id, enclosing)?;
            for &r in &op.regions {
                self.verify_region(r, Some(op_id))?;
            }
            for &r in &op.results {
                if self.defined.insert(r) {
                    added.push(r);
                }
            }
        }
        // Sub-regions must end with a terminator.
        if enclosing.is_some() {
            match ops.last() {
                Some(&last) if self.func.op(last).kind.is_terminator() => {}
                _ => {
                    return Err(VErr::new(
                        VerifyCode::Terminator,
                        "region does not end with a terminator",
                    ))
                }
            }
        }
        Ok(())
    }

    fn verify_op(&self, op_id: OpId, enclosing: Option<OpId>) -> Result<(), VErr> {
        let op = self.func.op(op_id);
        let kind = &op.kind;
        let arity_err = |want: usize| {
            Err(VErr::new(
                VerifyCode::Arity,
                format!(
                    "{} expects {} operands, has {}",
                    kind,
                    want,
                    op.operands.len()
                ),
            ))
        };
        match kind {
            OpKind::ConstantF(_) => {
                if !op.results.iter().all(|&r| self.ty(r).is_float_like()) {
                    return Err("float constant must have f64-like type".into());
                }
            }
            OpKind::ConstantInt(_) => {
                let ok = op.results.iter().all(|&r| {
                    matches!(self.ty(r), Type::Scalar(s) if s.is_integer_like() && !self.ty(r).is_bool_like())
                });
                if !ok {
                    return Err("int constant must have i64 or index type".into());
                }
            }
            OpKind::ConstantBool(_) => {
                if !op.results.iter().all(|&r| self.ty(r).is_bool_like()) {
                    return Err("bool constant must have i1-like type".into());
                }
            }
            OpKind::AddF
            | OpKind::SubF
            | OpKind::MulF
            | OpKind::DivF
            | OpKind::RemF
            | OpKind::MinF
            | OpKind::MaxF => {
                if op.operands.len() != 2 {
                    return arity_err(2);
                }
                let (a, b) = (self.ty(op.operands[0]), self.ty(op.operands[1]));
                let r = self.ty(op.result());
                if a != b || a != r || !a.is_float_like() {
                    return Err(format!("{kind} type mismatch: {a}, {b} -> {r}").into());
                }
            }
            OpKind::NegF => {
                if op.operands.len() != 1 {
                    return arity_err(1);
                }
                let a = self.ty(op.operands[0]);
                if a != self.ty(op.result()) || !a.is_float_like() {
                    return Err("negf type mismatch".into());
                }
            }
            OpKind::Fma => {
                if op.operands.len() != 3 {
                    return arity_err(3);
                }
                let t = self.ty(op.result());
                if !t.is_float_like() || op.operands.iter().any(|&o| self.ty(o) != t) {
                    return Err("fma type mismatch".into());
                }
            }
            OpKind::AddI | OpKind::SubI | OpKind::MulI => {
                if op.operands.len() != 2 {
                    return arity_err(2);
                }
                let a = self.ty(op.operands[0]);
                if a != self.ty(op.operands[1]) || a != self.ty(op.result()) {
                    return Err(format!("{kind} type mismatch").into());
                }
                if a.is_float_like() || a.is_bool_like() {
                    return Err(format!("{kind} needs integer operands").into());
                }
            }
            OpKind::CmpF(_) => {
                if op.operands.len() != 2 {
                    return arity_err(2);
                }
                let a = self.ty(op.operands[0]);
                let r = self.ty(op.result());
                if a != self.ty(op.operands[1]) || !a.is_float_like() {
                    return Err("cmpf operands must be matching floats".into());
                }
                if !r.is_bool_like() || r.lanes() != a.lanes() {
                    return Err("cmpf result must be i1 at operand lanes".into());
                }
            }
            OpKind::CmpI(_) => {
                if op.operands.len() != 2 {
                    return arity_err(2);
                }
                let a = self.ty(op.operands[0]);
                if a != self.ty(op.operands[1]) || a.is_float_like() {
                    return Err("cmpi operands must be matching integers".into());
                }
                if !self.ty(op.result()).is_bool_like() {
                    return Err("cmpi result must be i1".into());
                }
            }
            OpKind::AndI | OpKind::OrI | OpKind::XorI => {
                if op.operands.len() != 2 {
                    return arity_err(2);
                }
                let a = self.ty(op.operands[0]);
                if a != self.ty(op.operands[1]) || a != self.ty(op.result()) || !a.is_bool_like() {
                    return Err(format!("{kind} needs matching i1-like operands").into());
                }
            }
            OpKind::Select => {
                if op.operands.len() != 3 {
                    return arity_err(3);
                }
                let c = self.ty(op.operands[0]);
                let a = self.ty(op.operands[1]);
                let b = self.ty(op.operands[2]);
                let r = self.ty(op.result());
                if !c.is_bool_like() || a != b || a != r {
                    return Err("select type mismatch".into());
                }
                if c.lanes() != 1 && c.lanes() != a.lanes() {
                    return Err("select condition lanes must be 1 or match arms".into());
                }
            }
            OpKind::SIToFP => {
                if op.operands.len() != 1 {
                    return arity_err(1);
                }
                if !self.ty(op.result()).is_float_like() {
                    return Err("sitofp result must be float".into());
                }
            }
            OpKind::IndexCast => {
                if op.operands.len() != 1 {
                    return arity_err(1);
                }
            }
            OpKind::Math(f) => {
                if op.operands.len() != f.arity() {
                    return arity_err(f.arity());
                }
                let t = self.ty(op.result());
                if !t.is_float_like() || op.operands.iter().any(|&o| self.ty(o) != t) {
                    return Err(format!("{kind} type mismatch").into());
                }
            }
            OpKind::Broadcast => {
                if op.operands.len() != 1 {
                    return arity_err(1);
                }
                let a = self.ty(op.operands[0]);
                let r = self.ty(op.result());
                if !a.is_scalar() || !r.is_vector() || a.scalar() != r.scalar() {
                    return Err("broadcast must widen a scalar to a vector".into());
                }
            }
            OpKind::If => {
                if op.operands.len() != 1 {
                    return arity_err(1);
                }
                if !self.ty(op.operands[0]).is_bool_like() || self.ty(op.operands[0]).lanes() != 1 {
                    return Err("scf.if condition must be scalar i1".into());
                }
                if op.regions.len() != 2 {
                    return Err(VErr::new(
                        VerifyCode::Structure,
                        "scf.if needs then and else regions",
                    ));
                }
            }
            OpKind::For => {
                if op.operands.len() < 3 {
                    return arity_err(3);
                }
                for &b in &op.operands[..3] {
                    if self.ty(b) != Type::INDEX {
                        return Err("scf.for bounds must be index-typed".into());
                    }
                }
                let iters = &op.operands[3..];
                if iters.len() != op.results.len() {
                    return Err(VErr::new(
                        VerifyCode::Structure,
                        "scf.for iter_args/results count mismatch",
                    ));
                }
                let body = op.regions.first().ok_or_else(|| {
                    VErr::new(VerifyCode::Structure, "scf.for needs a body region")
                })?;
                let args = &self.func.region(*body).args;
                if args.len() != iters.len() + 1 {
                    return Err(VErr::new(
                        VerifyCode::Structure,
                        "scf.for body must have [iv, iters...] args",
                    ));
                }
                for (i, &init) in iters.iter().enumerate() {
                    if self.ty(init) != self.ty(args[i + 1])
                        || self.ty(init) != self.ty(op.results[i])
                    {
                        return Err("scf.for iter type mismatch".into());
                    }
                }
            }
            OpKind::Yield => {
                let parent = enclosing.ok_or_else(|| {
                    VErr::new(VerifyCode::Structure, "scf.yield outside a region")
                })?;
                let parent_op = self.func.op(parent);
                match parent_op.kind {
                    OpKind::If | OpKind::For => {}
                    _ => return Err("scf.yield must terminate an scf region".into()),
                }
                if op.operands.len() != parent_op.results.len() {
                    return Err(VErr::new(
                        VerifyCode::Structure,
                        format!(
                            "scf.yield yields {} values but parent produces {}",
                            op.operands.len(),
                            parent_op.results.len()
                        ),
                    ));
                }
                for (&y, &r) in op.operands.iter().zip(&parent_op.results) {
                    if self.ty(y) != self.ty(r) {
                        return Err("scf.yield type mismatch with parent results".into());
                    }
                }
            }
            OpKind::Return => {
                if enclosing.is_some() {
                    return Err(VErr::new(
                        VerifyCode::Structure,
                        "func.return inside a nested region",
                    ));
                }
                let want = self.func.result_types();
                if op.operands.len() != want.len() {
                    return Err(VErr::new(
                        VerifyCode::Arity,
                        format!(
                            "return has {} operands, function declares {} results",
                            op.operands.len(),
                            want.len()
                        ),
                    ));
                }
                for (&o, &t) in op.operands.iter().zip(want) {
                    if self.ty(o) != t {
                        return Err("return operand type mismatch".into());
                    }
                }
            }
            OpKind::GetExt | OpKind::GetState => {
                if op.attrs.str_of("var").is_none() {
                    return Err(VErr::new(
                        VerifyCode::Attribute,
                        format!("{kind} missing `var` attribute"),
                    ));
                }
                if !self.ty(op.result()).is_float_like() {
                    return Err(format!("{kind} result must be f64-like").into());
                }
            }
            OpKind::SetExt | OpKind::SetState | OpKind::SetParentState => {
                if op.operands.len() != 1 {
                    return arity_err(1);
                }
                if op.attrs.str_of("var").is_none() {
                    return Err(VErr::new(
                        VerifyCode::Attribute,
                        format!("{kind} missing `var` attribute"),
                    ));
                }
            }
            OpKind::GetParentState => {
                if op.operands.len() != 1 {
                    return arity_err(1);
                }
                if op.attrs.str_of("var").is_none() {
                    return Err(VErr::new(
                        VerifyCode::Attribute,
                        format!("{kind} missing `var` attribute"),
                    ));
                }
                if self.ty(op.operands[0]) != self.ty(op.result()) {
                    return Err("get_parent_state fallback type mismatch".into());
                }
            }
            OpKind::Param => {
                if op.attrs.str_of("name").is_none() {
                    return Err(VErr::new(
                        VerifyCode::Attribute,
                        "limpet.param missing `name` attribute",
                    ));
                }
                if self.ty(op.result()) != Type::F64 {
                    return Err("limpet.param result must be scalar f64".into());
                }
            }
            OpKind::HasParent => {
                if self.ty(op.result()) != Type::I1 {
                    return Err("has_parent result must be i1".into());
                }
            }
            OpKind::Dt | OpKind::Time => {
                if self.ty(op.result()) != Type::F64 {
                    return Err(format!("{kind} result must be scalar f64").into());
                }
            }
            OpKind::CellIndex => {
                if self.ty(op.result()) != Type::INDEX {
                    return Err("cell_index result must be index".into());
                }
            }
            OpKind::LutCol => {
                if op.operands.len() != 1 {
                    return arity_err(1);
                }
                let table = op.attrs.str_of("table").ok_or_else(|| {
                    VErr::new(VerifyCode::Attribute, "lut.col missing `table` attribute")
                })?;
                let col = op.attrs.i64_of("col").ok_or_else(|| {
                    VErr::new(VerifyCode::Attribute, "lut.col missing `col` attribute")
                })?;
                let spec = self.module.lut(table).ok_or_else(|| {
                    VErr::new(
                        VerifyCode::LutRef,
                        format!("lut.col references unknown table {table:?}"),
                    )
                })?;
                if col < 0 || col as usize >= spec.cols.len() {
                    return Err(VErr::new(
                        VerifyCode::LutRef,
                        format!("lut.col column {col} out of range for table {table:?}"),
                    ));
                }
                let k = self.ty(op.operands[0]);
                let r = self.ty(op.result());
                if !k.is_float_like() || k != r {
                    return Err("lut.col key/result must be matching f64-like".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attrs;
    use crate::builder::Builder;
    use crate::ops::CmpFPred;

    fn empty_module_with(f: Func) -> Module {
        let mut m = Module::new("m");
        m.add_func(f);
        m
    }

    #[test]
    fn valid_function_passes() {
        let mut f = Func::new("f", &[], &[]);
        let mut b = Builder::new(&mut f);
        let x = b.const_f(1.0);
        let y = b.exp(x);
        let c = b.cmpf(CmpFPred::Ogt, y, x);
        let s = b.select(c, x, y);
        b.set_state("u", s);
        b.ret(&[]);
        assert!(verify_module(&empty_module_with(f)).is_ok());
    }

    #[test]
    fn use_before_def_fails() {
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        // Manually construct a forward reference.
        let c1 = f.push_op(
            body,
            OpKind::ConstantF(1.0),
            vec![],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        let v1 = f.op(c1).result();
        let add = f.push_op(
            body,
            OpKind::AddF,
            vec![v1, v1],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        let vadd = f.op(add).result();
        f.push_op(body, OpKind::Return, vec![], &[], Attrs::new(), vec![]);
        // Swap order: add now precedes its operand's definition.
        f.region_mut(body).ops.swap(0, 1);
        let err = verify_module(&empty_module_with(f)).unwrap_err();
        assert!(err.message.contains("defined later"), "{err}");
        let _ = vadd;
    }

    #[test]
    fn type_mismatch_fails() {
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        let c1 = f.push_op(
            body,
            OpKind::ConstantF(1.0),
            vec![],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        let c2 = f.push_op(
            body,
            OpKind::ConstantInt(1),
            vec![],
            &[Type::I64],
            Attrs::new(),
            vec![],
        );
        let (v1, v2) = (f.op(c1).result(), f.op(c2).result());
        f.push_op(
            body,
            OpKind::AddF,
            vec![v1, v2],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        f.push_op(body, OpKind::Return, vec![], &[], Attrs::new(), vec![]);
        assert!(verify_module(&empty_module_with(f)).is_err());
    }

    #[test]
    fn yield_count_mismatch_fails() {
        let mut f = Func::new("f", &[], &[]);
        let mut b = Builder::new(&mut f);
        let c = b.const_bool(true);
        b.if_op(
            c,
            &[Type::F64],
            |b| b.yield_(&[]), // wrong: parent produces 1 result
            |b| {
                let v = b.const_f(0.0);
                b.yield_(&[v]);
            },
        );
        b.ret(&[]);
        let err = verify_module(&empty_module_with(f)).unwrap_err();
        assert!(err.message.contains("yield"), "{err}");
    }

    #[test]
    fn missing_terminator_fails() {
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        let c = f.push_op(
            body,
            OpKind::ConstantBool(true),
            vec![],
            &[Type::I1],
            Attrs::new(),
            vec![],
        );
        let cond = f.op(c).result();
        let then_r = f.new_region(&[]);
        let else_r = f.new_region(&[]);
        // then region left empty: no terminator.
        f.push_op(else_r, OpKind::Yield, vec![], &[], Attrs::new(), vec![]);
        f.push_op(
            body,
            OpKind::If,
            vec![cond],
            &[],
            Attrs::new(),
            vec![then_r, else_r],
        );
        f.push_op(body, OpKind::Return, vec![], &[], Attrs::new(), vec![]);
        let err = verify_module(&empty_module_with(f)).unwrap_err();
        assert!(err.message.contains("terminator"), "{err}");
    }

    #[test]
    fn lut_reference_checked() {
        let mut f = Func::new("f", &[], &[]);
        let mut b = Builder::new(&mut f);
        let k = b.const_f(0.0);
        let v = b.lut_col("Vm", 0, k);
        b.set_state("u", v);
        b.ret(&[]);
        let m = empty_module_with(f);
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("unknown table"), "{err}");
        assert_eq!(err.code, VerifyCode::LutRef);
        assert_eq!(err.model.as_deref(), Some("m"));
    }

    #[test]
    fn codes_classify_failures() {
        // Dominance: reuse the use-before-def construction.
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        let c1 = f.push_op(
            body,
            OpKind::ConstantF(1.0),
            vec![],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        let v1 = f.op(c1).result();
        f.push_op(
            body,
            OpKind::AddF,
            vec![v1, v1],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        f.push_op(body, OpKind::Return, vec![], &[], Attrs::new(), vec![]);
        f.region_mut(body).ops.swap(0, 1);
        let err = verify_module(&empty_module_with(f)).unwrap_err();
        assert_eq!(err.code, VerifyCode::Dominance);
        assert_eq!(err.func.as_deref(), Some("f"));

        // Arity: addf with one operand.
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        let c = f.push_op(
            body,
            OpKind::ConstantF(1.0),
            vec![],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        let v = f.op(c).result();
        f.push_op(
            body,
            OpKind::AddF,
            vec![v],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        f.push_op(body, OpKind::Return, vec![], &[], Attrs::new(), vec![]);
        let err = verify_module(&empty_module_with(f)).unwrap_err();
        assert_eq!(err.code, VerifyCode::Arity);

        // Attribute: set_state with no `var`.
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        let c = f.push_op(
            body,
            OpKind::ConstantF(1.0),
            vec![],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        let v = f.op(c).result();
        f.push_op(body, OpKind::SetState, vec![v], &[], Attrs::new(), vec![]);
        f.push_op(body, OpKind::Return, vec![], &[], Attrs::new(), vec![]);
        let err = verify_module(&empty_module_with(f)).unwrap_err();
        assert_eq!(err.code, VerifyCode::Attribute);
    }

    #[test]
    fn return_type_checked() {
        let mut f = Func::new("f", &[], &[Type::F64]);
        let mut b = Builder::new(&mut f);
        b.ret(&[]);
        let err = verify_module(&empty_module_with(f)).unwrap_err();
        assert!(err.message.contains("return"), "{err}");
    }

    #[test]
    fn vector_if_condition_rejected() {
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        let c = f.push_op(
            body,
            OpKind::ConstantBool(true),
            vec![],
            &[Type::vector(4, crate::types::ScalarType::I1)],
            Attrs::new(),
            vec![],
        );
        let cond = f.op(c).result();
        let then_r = f.new_region(&[]);
        let else_r = f.new_region(&[]);
        f.push_op(then_r, OpKind::Yield, vec![], &[], Attrs::new(), vec![]);
        f.push_op(else_r, OpKind::Yield, vec![], &[], Attrs::new(), vec![]);
        f.push_op(
            body,
            OpKind::If,
            vec![cond],
            &[],
            Attrs::new(),
            vec![then_r, else_r],
        );
        f.push_op(body, OpKind::Return, vec![], &[], Attrs::new(), vec![]);
        let err = verify_module(&empty_module_with(f)).unwrap_err();
        assert!(err.message.contains("scalar i1"), "{err}");
    }
}
