//! Ergonomic construction of IR.
//!
//! [`Builder`] appends operations to an insertion region of a [`Func`],
//! computing result types from operand types and returning result values
//! directly, so lowering code reads like the expressions it emits.

use crate::attr::Attrs;
use crate::module::{Func, RegionId, ValueId};
use crate::ops::{CmpFPred, CmpIPred, MathFn, OpKind};
use crate::types::{ScalarType, Type};

/// Appends operations to one region of a function.
///
/// # Examples
///
/// ```
/// use limpet_ir::{Builder, Func, Type};
/// let mut f = Func::new("f", &[Type::F64], &[Type::F64]);
/// let arg = f.args()[0];
/// let mut b = Builder::new(&mut f);
/// let two = b.const_f(2.0);
/// let doubled = b.mulf(arg, two);
/// b.ret(&[doubled]);
/// assert_eq!(f.region(f.body()).ops.len(), 3);
/// ```
#[derive(Debug)]
pub struct Builder<'a> {
    func: &'a mut Func,
    region: RegionId,
}

impl<'a> Builder<'a> {
    /// Creates a builder inserting at the end of the function body.
    pub fn new(func: &'a mut Func) -> Builder<'a> {
        let region = func.body();
        Builder { func, region }
    }

    /// Creates a builder inserting at the end of `region`.
    pub fn at(func: &'a mut Func, region: RegionId) -> Builder<'a> {
        Builder { func, region }
    }

    /// The function being built.
    pub fn func(&mut self) -> &mut Func {
        self.func
    }

    /// The current insertion region.
    pub fn region(&self) -> RegionId {
        self.region
    }

    fn ty(&self, v: ValueId) -> Type {
        self.func.value_type(v)
    }

    fn push(
        &mut self,
        kind: OpKind,
        operands: Vec<ValueId>,
        result_types: &[Type],
        attrs: Attrs,
        regions: Vec<RegionId>,
    ) -> Vec<ValueId> {
        let op = self
            .func
            .push_op(self.region, kind, operands, result_types, attrs, regions);
        self.func.op(op).results.clone()
    }

    fn push1(
        &mut self,
        kind: OpKind,
        operands: Vec<ValueId>,
        result_type: Type,
        attrs: Attrs,
    ) -> ValueId {
        self.push(kind, operands, &[result_type], attrs, vec![])[0]
    }

    fn same_float(&self, a: ValueId, b: ValueId) -> Type {
        let (ta, tb) = (self.ty(a), self.ty(b));
        assert_eq!(ta, tb, "binary float op operand types must match");
        assert!(
            ta.is_float_like(),
            "binary float op needs f64-like operands"
        );
        ta
    }

    // ---- constants ----

    /// `arith.constant` f64.
    pub fn const_f(&mut self, v: f64) -> ValueId {
        self.push1(OpKind::ConstantF(v), vec![], Type::F64, Attrs::new())
    }

    /// `arith.constant` f64 splat across `lanes` (scalar when `lanes == 1`).
    pub fn const_f_lanes(&mut self, v: f64, lanes: u32) -> ValueId {
        self.push1(
            OpKind::ConstantF(v),
            vec![],
            Type::F64.with_lanes(lanes),
            Attrs::new(),
        )
    }

    /// `arith.constant` i64.
    pub fn const_i(&mut self, v: i64) -> ValueId {
        self.push1(OpKind::ConstantInt(v), vec![], Type::I64, Attrs::new())
    }

    /// `arith.constant` index.
    pub fn const_index(&mut self, v: i64) -> ValueId {
        self.push1(OpKind::ConstantInt(v), vec![], Type::INDEX, Attrs::new())
    }

    /// `arith.constant` i1.
    pub fn const_bool(&mut self, v: bool) -> ValueId {
        self.push1(OpKind::ConstantBool(v), vec![], Type::I1, Attrs::new())
    }

    // ---- float arithmetic ----

    /// `arith.addf`
    pub fn addf(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.same_float(a, b);
        self.push1(OpKind::AddF, vec![a, b], t, Attrs::new())
    }

    /// `arith.subf`
    pub fn subf(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.same_float(a, b);
        self.push1(OpKind::SubF, vec![a, b], t, Attrs::new())
    }

    /// `arith.mulf`
    pub fn mulf(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.same_float(a, b);
        self.push1(OpKind::MulF, vec![a, b], t, Attrs::new())
    }

    /// `arith.divf`
    pub fn divf(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.same_float(a, b);
        self.push1(OpKind::DivF, vec![a, b], t, Attrs::new())
    }

    /// `arith.remf`
    pub fn remf(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.same_float(a, b);
        self.push1(OpKind::RemF, vec![a, b], t, Attrs::new())
    }

    /// `arith.negf`
    pub fn negf(&mut self, a: ValueId) -> ValueId {
        let t = self.ty(a);
        self.push1(OpKind::NegF, vec![a], t, Attrs::new())
    }

    /// `arith.minimumf`
    pub fn minf(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.same_float(a, b);
        self.push1(OpKind::MinF, vec![a, b], t, Attrs::new())
    }

    /// `arith.maximumf`
    pub fn maxf(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.same_float(a, b);
        self.push1(OpKind::MaxF, vec![a, b], t, Attrs::new())
    }

    /// `math.fma`: `a * b + c`.
    pub fn fma(&mut self, a: ValueId, b: ValueId, c: ValueId) -> ValueId {
        let t = self.same_float(a, b);
        assert_eq!(t, self.ty(c));
        self.push1(OpKind::Fma, vec![a, b, c], t, Attrs::new())
    }

    // ---- integer arithmetic ----

    /// `arith.addi`
    pub fn addi(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.ty(a);
        self.push1(OpKind::AddI, vec![a, b], t, Attrs::new())
    }

    /// `arith.subi`
    pub fn subi(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.ty(a);
        self.push1(OpKind::SubI, vec![a, b], t, Attrs::new())
    }

    /// `arith.muli`
    pub fn muli(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.ty(a);
        self.push1(OpKind::MulI, vec![a, b], t, Attrs::new())
    }

    // ---- comparisons, logic, select ----

    /// `arith.cmpf` with predicate `pred`; result is `i1` at operand lanes.
    pub fn cmpf(&mut self, pred: CmpFPred, a: ValueId, b: ValueId) -> ValueId {
        let t = self.same_float(a, b);
        let rt = Type::Scalar(ScalarType::I1).with_lanes(t.lanes());
        self.push1(OpKind::CmpF(pred), vec![a, b], rt, Attrs::new())
    }

    /// `arith.cmpi` with predicate `pred`.
    pub fn cmpi(&mut self, pred: CmpIPred, a: ValueId, b: ValueId) -> ValueId {
        self.push1(OpKind::CmpI(pred), vec![a, b], Type::I1, Attrs::new())
    }

    /// `arith.andi`
    pub fn andi(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.ty(a);
        self.push1(OpKind::AndI, vec![a, b], t, Attrs::new())
    }

    /// `arith.ori`
    pub fn ori(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.ty(a);
        self.push1(OpKind::OrI, vec![a, b], t, Attrs::new())
    }

    /// `arith.xori`
    pub fn xori(&mut self, a: ValueId, b: ValueId) -> ValueId {
        let t = self.ty(a);
        self.push1(OpKind::XorI, vec![a, b], t, Attrs::new())
    }

    /// Boolean negation via `xori` with constant `true`.
    pub fn not(&mut self, a: ValueId) -> ValueId {
        let t = self.ty(a);
        let one = self.push1(OpKind::ConstantBool(true), vec![], t, Attrs::new());
        self.xori(a, one)
    }

    /// `arith.select cond, a, b`.
    pub fn select(&mut self, cond: ValueId, a: ValueId, b: ValueId) -> ValueId {
        let t = self.ty(a);
        assert_eq!(t, self.ty(b), "select arms must have equal types");
        self.push1(OpKind::Select, vec![cond, a, b], t, Attrs::new())
    }

    /// `arith.sitofp`
    pub fn sitofp(&mut self, a: ValueId) -> ValueId {
        self.push1(OpKind::SIToFP, vec![a], Type::F64, Attrs::new())
    }

    /// `arith.index_cast` to the given integer-like type.
    pub fn index_cast(&mut self, a: ValueId, to: Type) -> ValueId {
        self.push1(OpKind::IndexCast, vec![a], to, Attrs::new())
    }

    // ---- math ----

    /// Applies a unary `math.*` function.
    ///
    /// # Panics
    ///
    /// Panics if `f` is binary.
    pub fn math1(&mut self, f: MathFn, a: ValueId) -> ValueId {
        assert_eq!(f.arity(), 1, "{} is not unary", f.name());
        let t = self.ty(a);
        self.push1(OpKind::Math(f), vec![a], t, Attrs::new())
    }

    /// Applies a binary `math.*` function.
    ///
    /// # Panics
    ///
    /// Panics if `f` is unary.
    pub fn math2(&mut self, f: MathFn, a: ValueId, b: ValueId) -> ValueId {
        assert_eq!(f.arity(), 2, "{} is not binary", f.name());
        let t = self.same_float(a, b);
        self.push1(OpKind::Math(f), vec![a, b], t, Attrs::new())
    }

    /// `math.exp`
    pub fn exp(&mut self, a: ValueId) -> ValueId {
        self.math1(MathFn::Exp, a)
    }

    /// `math.log`
    pub fn log(&mut self, a: ValueId) -> ValueId {
        self.math1(MathFn::Log, a)
    }

    /// `math.sqrt`
    pub fn sqrt(&mut self, a: ValueId) -> ValueId {
        self.math1(MathFn::Sqrt, a)
    }

    /// `math.powf`
    pub fn pow(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.math2(MathFn::Pow, a, b)
    }

    // ---- vector ----

    /// `vector.broadcast` of a scalar to `width` lanes.
    pub fn broadcast(&mut self, a: ValueId, width: u32) -> ValueId {
        let t = self.ty(a);
        assert!(t.is_scalar(), "broadcast takes a scalar");
        self.push1(
            OpKind::Broadcast,
            vec![a],
            t.with_lanes(width),
            Attrs::new(),
        )
    }

    // ---- limpet data access ----

    fn named(kind: OpKind, key: &str, name: &str) -> (OpKind, Attrs) {
        let mut attrs = Attrs::new();
        attrs.set(key, name);
        (kind, attrs)
    }

    /// `limpet.get_state "var"`.
    pub fn get_state(&mut self, var: &str) -> ValueId {
        let (k, a) = Self::named(OpKind::GetState, "var", var);
        self.push1(k, vec![], Type::F64, a)
    }

    /// `limpet.set_state "var", %v`.
    pub fn set_state(&mut self, var: &str, v: ValueId) {
        let (k, a) = Self::named(OpKind::SetState, "var", var);
        self.push(k, vec![v], &[], a, vec![]);
    }

    /// `limpet.get_ext "var"`.
    pub fn get_ext(&mut self, var: &str) -> ValueId {
        let (k, a) = Self::named(OpKind::GetExt, "var", var);
        self.push1(k, vec![], Type::F64, a)
    }

    /// `limpet.set_ext "var", %v`.
    pub fn set_ext(&mut self, var: &str, v: ValueId) {
        let (k, a) = Self::named(OpKind::SetExt, "var", var);
        self.push(k, vec![v], &[], a, vec![]);
    }

    /// `limpet.param "name"` — uniform scalar parameter.
    pub fn param(&mut self, name: &str) -> ValueId {
        let (k, a) = Self::named(OpKind::Param, "name", name);
        self.push1(k, vec![], Type::F64, a)
    }

    /// `limpet.has_parent` — multimodel support.
    pub fn has_parent(&mut self) -> ValueId {
        self.push1(OpKind::HasParent, vec![], Type::I1, Attrs::new())
    }

    /// `limpet.get_parent_state "var", %fallback`.
    pub fn get_parent_state(&mut self, var: &str, fallback: ValueId) -> ValueId {
        let (k, a) = Self::named(OpKind::GetParentState, "var", var);
        let t = self.ty(fallback);
        self.push1(k, vec![fallback], t, a)
    }

    /// `limpet.set_parent_state "var", %v`.
    pub fn set_parent_state(&mut self, var: &str, v: ValueId) {
        let (k, a) = Self::named(OpKind::SetParentState, "var", var);
        self.push(k, vec![v], &[], a, vec![]);
    }

    /// `limpet.dt` — the integration time step.
    pub fn dt(&mut self) -> ValueId {
        self.push1(OpKind::Dt, vec![], Type::F64, Attrs::new())
    }

    /// `limpet.time` — the current simulation time.
    pub fn time(&mut self) -> ValueId {
        self.push1(OpKind::Time, vec![], Type::F64, Attrs::new())
    }

    /// `limpet.cell_index`.
    pub fn cell_index(&mut self) -> ValueId {
        self.push1(OpKind::CellIndex, vec![], Type::INDEX, Attrs::new())
    }

    /// `lut.col "table", col, %key` — interpolated table column.
    pub fn lut_col(&mut self, table: &str, col: i64, key: ValueId) -> ValueId {
        let mut attrs = Attrs::new();
        attrs.set("table", table);
        attrs.set("col", col);
        let t = self.ty(key);
        self.push1(OpKind::LutCol, vec![key], t, attrs)
    }

    // ---- control flow ----

    /// Builds `scf.if %cond -> (result_types)` with closure-built regions.
    ///
    /// Each closure receives a builder positioned in its region and must
    /// terminate it with [`Builder::yield_`] (yielding `result_types`-typed
    /// values).
    pub fn if_op(
        &mut self,
        cond: ValueId,
        result_types: &[Type],
        then_f: impl FnOnce(&mut Builder<'_>),
        else_f: impl FnOnce(&mut Builder<'_>),
    ) -> Vec<ValueId> {
        let then_r = self.func.new_region(&[]);
        let else_r = self.func.new_region(&[]);
        then_f(&mut Builder {
            func: self.func,
            region: then_r,
        });
        else_f(&mut Builder {
            func: self.func,
            region: else_r,
        });
        self.push(
            OpKind::If,
            vec![cond],
            result_types,
            Attrs::new(),
            vec![then_r, else_r],
        )
    }

    /// Builds `scf.for %lb to %ub step %s iter_args(init)`.
    ///
    /// The closure receives a builder positioned in the loop body, the
    /// induction variable, and the iteration arguments; it must terminate the
    /// body with [`Builder::yield_`] (yielding next-iteration values).
    /// Returns the loop results (final iteration values).
    pub fn for_op(
        &mut self,
        lb: ValueId,
        ub: ValueId,
        step: ValueId,
        init: &[ValueId],
        body_f: impl FnOnce(&mut Builder<'_>, ValueId, &[ValueId]),
    ) -> Vec<ValueId> {
        let mut region_arg_types = vec![Type::INDEX];
        let iter_types: Vec<Type> = init.iter().map(|&v| self.ty(v)).collect();
        region_arg_types.extend(iter_types.iter().copied());
        let body_r = self.func.new_region(&region_arg_types);
        let args = self.func.region(body_r).args.clone();
        let (iv, iters) = args.split_first().expect("for region has induction arg");
        body_f(
            &mut Builder {
                func: self.func,
                region: body_r,
            },
            *iv,
            iters,
        );
        let mut operands = vec![lb, ub, step];
        operands.extend_from_slice(init);
        self.push(
            OpKind::For,
            operands,
            &iter_types,
            Attrs::new(),
            vec![body_r],
        )
    }

    /// `scf.yield` terminating the current region.
    pub fn yield_(&mut self, values: &[ValueId]) {
        self.push(OpKind::Yield, values.to_vec(), &[], Attrs::new(), vec![]);
    }

    /// `func.return`.
    pub fn ret(&mut self, values: &[ValueId]) {
        self.push(OpKind::Return, values.to_vec(), &[], Attrs::new(), vec![]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_types_propagate() {
        let mut f = Func::new("f", &[], &[]);
        let mut b = Builder::new(&mut f);
        let x = b.const_f(1.0);
        let y = b.const_f(2.0);
        let s = b.addf(x, y);
        let c = b.cmpf(CmpFPred::Olt, x, y);
        let sel = b.select(c, s, x);
        b.ret(&[]);
        assert_eq!(f.value_type(s), Type::F64);
        assert_eq!(f.value_type(c), Type::I1);
        assert_eq!(f.value_type(sel), Type::F64);
    }

    #[test]
    fn vector_types_propagate() {
        let mut f = Func::new("f", &[], &[]);
        let mut b = Builder::new(&mut f);
        let x = b.const_f_lanes(1.0, 8);
        let y = b.const_f_lanes(2.0, 8);
        let s = b.mulf(x, y);
        let c = b.cmpf(CmpFPred::Ogt, x, y);
        assert_eq!(f.value_type(s).lanes(), 8);
        assert!(f.value_type(c).is_bool_like());
        assert_eq!(f.value_type(c).lanes(), 8);
    }

    #[test]
    #[should_panic(expected = "operand types must match")]
    fn mixed_lane_arith_panics() {
        let mut f = Func::new("f", &[], &[]);
        let mut b = Builder::new(&mut f);
        let x = b.const_f(1.0);
        let y = b.const_f_lanes(2.0, 4);
        b.addf(x, y);
    }

    #[test]
    fn if_op_builds_two_regions() {
        let mut f = Func::new("f", &[], &[]);
        let mut b = Builder::new(&mut f);
        let c = b.const_bool(true);
        let r = b.if_op(
            c,
            &[Type::F64],
            |b| {
                let v = b.const_f(1.0);
                b.yield_(&[v]);
            },
            |b| {
                let v = b.const_f(2.0);
                b.yield_(&[v]);
            },
        );
        b.ret(&[]);
        assert_eq!(r.len(), 1);
        assert_eq!(f.value_type(r[0]), Type::F64);
    }

    #[test]
    fn for_op_threads_iter_args() {
        let mut f = Func::new("f", &[], &[]);
        let mut b = Builder::new(&mut f);
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let st = b.const_index(1);
        let init = b.const_f(0.0);
        let res = b.for_op(lb, ub, st, &[init], |b, _iv, iters| {
            let one = b.const_f(1.0);
            let next = b.addf(iters[0], one);
            b.yield_(&[next]);
        });
        b.ret(&[]);
        assert_eq!(res.len(), 1);
        assert_eq!(f.value_type(res[0]), Type::F64);
    }

    #[test]
    fn state_access_ops_carry_names() {
        let mut f = Func::new("f", &[], &[]);
        let mut b = Builder::new(&mut f);
        let v = b.get_state("u1");
        b.set_state("u1", v);
        let e = b.get_ext("Vm");
        b.set_ext("Iion", e);
        b.ret(&[]);
        let walked = f.walk_ops();
        let get = f.op(walked[0].2);
        assert_eq!(get.attrs.str_of("var"), Some("u1"));
    }

    #[test]
    fn not_flips_const() {
        let mut f = Func::new("f", &[], &[]);
        let mut b = Builder::new(&mut f);
        let t = b.const_bool(true);
        let n = b.not(t);
        b.ret(&[]);
        assert_eq!(f.value_type(n), Type::I1);
    }
}
