//! Parser for the textual IR form produced by [`crate::printer`].
//!
//! The grammar is the exact output language of the printer, so
//! `parse_module(&print_module(&m))` reconstructs a structurally equal
//! module (round-trip property, tested in `tests/roundtrip.rs`).

use crate::attr::{Attr, Attrs};
use crate::module::{Func, LutSpec, Module, RegionId, ValueId};
use crate::ops::{CmpFPred, CmpIPred, MathFn, OpKind};
use crate::types::{ScalarType, Type};
use std::collections::HashMap;
use std::fmt;

/// An error produced while parsing textual IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the error occurred.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),   // bare identifiers incl. dotted op names
    Percent(String), // %name
    At(String),      // @name
    Num(String),     // numeric literal (lexeme kept for int/float choice)
    Str(String),     // "string"
    LParen,
    RParen,
    LBrace,
    RBrace,
    Lt,
    Gt,
    Eq,
    Comma,
    Colon,
    Arrow,
    Question,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek_byte() {
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek_byte() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_word(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek_byte() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn lex_number(&mut self) -> String {
        let start = self.pos;
        if self.peek_byte() == Some(b'-') {
            self.pos += 1;
        }
        let mut seen_e = false;
        while let Some(c) = self.peek_byte() {
            match c {
                b'0'..=b'9' | b'.' => self.pos += 1,
                b'e' | b'E' if !seen_e => {
                    seen_e = true;
                    self.pos += 1;
                    if matches!(self.peek_byte(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn next_tok(&mut self) -> Result<Option<(Tok, usize)>> {
        self.skip_ws();
        let line = self.line;
        let Some(c) = self.peek_byte() else {
            return Ok(None);
        };
        let tok = match c {
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b'<' => {
                self.pos += 1;
                Tok::Lt
            }
            b'>' => {
                self.pos += 1;
                Tok::Gt
            }
            b'=' => {
                self.pos += 1;
                Tok::Eq
            }
            b',' => {
                self.pos += 1;
                Tok::Comma
            }
            b':' => {
                self.pos += 1;
                Tok::Colon
            }
            b'?' => {
                self.pos += 1;
                Tok::Question
            }
            b'%' => {
                self.pos += 1;
                Tok::Percent(self.lex_word())
            }
            b'@' => {
                self.pos += 1;
                Tok::At(self.lex_word())
            }
            b'"' => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.peek_byte() {
                        Some(b'"') => {
                            self.pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            self.pos += 1;
                            match self.peek_byte() {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                other => {
                                    return Err(
                                        self.error(format!("bad escape {:?} in string", other))
                                    )
                                }
                            }
                            self.pos += 1;
                        }
                        Some(c) => {
                            s.push(c as char);
                            self.pos += 1;
                        }
                        None => return Err(self.error("unterminated string")),
                    }
                }
                Tok::Str(s)
            }
            b'-' => {
                if self.src.get(self.pos + 1) == Some(&b'>') {
                    self.pos += 2;
                    Tok::Arrow
                } else {
                    Tok::Num(self.lex_number())
                }
            }
            b'0'..=b'9' => Tok::Num(self.lex_number()),
            c if c.is_ascii_alphabetic() || c == b'_' => Tok::Ident(self.lex_word()),
            other => return Err(self.error(format!("unexpected character {:?}", other as char))),
        };
        Ok(Some((tok, line)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        let mut lexer = Lexer::new(src);
        let mut toks = Vec::new();
        while let Some(t) = lexer.next_tok()? {
            toks.push(t);
        }
        Ok(Parser { toks, pos: 0 })
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(_, l)| *l)
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.error("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(self.error(format!("expected {want:?}, got {got:?}")))
        }
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, got {other:?}"))),
        }
    }

    fn expect_at(&mut self) -> Result<String> {
        match self.next()? {
            Tok::At(s) => Ok(s),
            other => Err(self.error(format!("expected @symbol, got {other:?}"))),
        }
    }

    fn expect_percent(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Percent(s) => Ok(s),
            other => Err(self.error(format!("expected %value, got {other:?}"))),
        }
    }

    // type := f64 | i1 | i64 | index | vector '<' N 'x' scalar '>' | memref '<' ? 'x' scalar '>'
    fn parse_type(&mut self) -> Result<Type> {
        let head = self.expect_ident()?;
        match head.as_str() {
            "f64" => Ok(Type::F64),
            "i1" => Ok(Type::I1),
            "i64" => Ok(Type::I64),
            "index" => Ok(Type::INDEX),
            "vector" => {
                self.expect(&Tok::Lt)?;
                // The printer emits e.g. `8xf64`, which lexes as Num("8")
                // followed by Ident("xf64").
                let width: u32 = match self.next()? {
                    Tok::Num(n) => n
                        .parse()
                        .map_err(|_| self.error(format!("bad vector width {n}")))?,
                    other => return Err(self.error(format!("expected width, got {other:?}"))),
                };
                let elem = self.parse_x_scalar()?;
                self.expect(&Tok::Gt)?;
                Ok(Type::vector(width, elem))
            }
            "memref" => {
                self.expect(&Tok::Lt)?;
                self.expect(&Tok::Question)?;
                let elem = self.parse_x_scalar()?;
                self.expect(&Tok::Gt)?;
                Ok(Type::memref(elem))
            }
            other => Err(self.error(format!("unknown type {other:?}"))),
        }
    }

    fn parse_x_scalar(&mut self) -> Result<ScalarType> {
        let w = self.expect_ident()?;
        let rest = w
            .strip_prefix('x')
            .ok_or_else(|| self.error(format!("expected xTYPE, got {w:?}")))?;
        match rest {
            "f64" => Ok(ScalarType::F64),
            "i1" => Ok(ScalarType::I1),
            "i64" => Ok(ScalarType::I64),
            "index" => Ok(ScalarType::Index),
            other => Err(self.error(format!("unknown element type {other:?}"))),
        }
    }

    fn parse_attr_value(&mut self) -> Result<Attr> {
        match self.next()? {
            Tok::Num(n) => {
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    Ok(Attr::F64(n.parse().map_err(|_| {
                        self.error(format!("bad float literal {n}"))
                    })?))
                } else {
                    Ok(Attr::I64(
                        n.parse()
                            .map_err(|_| self.error(format!("bad int literal {n}")))?,
                    ))
                }
            }
            Tok::Str(s) => Ok(Attr::Str(s)),
            Tok::Ident(w) => match w.as_str() {
                "true" => Ok(Attr::Bool(true)),
                "false" => Ok(Attr::Bool(false)),
                "f64" => Ok(Attr::Ty(Type::F64)),
                "i1" => Ok(Attr::Ty(Type::I1)),
                "i64" => Ok(Attr::Ty(Type::I64)),
                "index" => Ok(Attr::Ty(Type::INDEX)),
                "vector" => {
                    // Re-parse the tail of a vector type.
                    self.pos -= 1;
                    Ok(Attr::Ty(self.parse_type()?))
                }
                other => Err(self.error(format!("bad attribute value {other:?}"))),
            },
            other => Err(self.error(format!("bad attribute value {other:?}"))),
        }
    }

    fn parse_attr_dict(&mut self) -> Result<Attrs> {
        self.expect(&Tok::LBrace)?;
        let mut attrs = Attrs::new();
        if self.eat(&Tok::RBrace) {
            return Ok(attrs);
        }
        loop {
            let key = self.expect_ident()?;
            self.expect(&Tok::Eq)?;
            let value = self.parse_attr_value()?;
            attrs.set(&key, value);
            if self.eat(&Tok::RBrace) {
                break;
            }
            self.expect(&Tok::Comma)?;
        }
        Ok(attrs)
    }
}

struct FuncParser<'p> {
    p: &'p mut Parser,
    func: Func,
    scope: HashMap<String, ValueId>,
}

impl<'p> FuncParser<'p> {
    fn lookup(&self, name: &str) -> Result<ValueId> {
        self.scope
            .get(name)
            .copied()
            .ok_or_else(|| self.p.error(format!("unknown value %{name}")))
    }

    /// Parses operations into `region` until (and consuming) the closing `}`.
    fn parse_region_body(&mut self, region: RegionId) -> Result<()> {
        loop {
            if self.p.eat(&Tok::RBrace) {
                return Ok(());
            }
            self.parse_op(region)?;
        }
    }

    fn parse_op(&mut self, region: RegionId) -> Result<()> {
        // Optional result list.
        let mut result_names = Vec::new();
        while let Some(Tok::Percent(_)) = self.p.peek() {
            let Tok::Percent(n) = self.p.next()? else {
                unreachable!()
            };
            result_names.push(n);
            if !self.p.eat(&Tok::Comma) {
                break;
            }
        }
        if !result_names.is_empty() {
            self.p.expect(&Tok::Eq)?;
        }
        let op_name = self.p.expect_ident()?;
        match op_name.as_str() {
            "scf.if" => self.parse_if(region, &result_names),
            "scf.for" => self.parse_for(region, &result_names),
            "arith.constant" => self.parse_constant(region, &result_names),
            other => self.parse_generic(region, other, &result_names),
        }
    }

    fn bind_results(&mut self, op: crate::module::OpId, names: &[String]) -> Result<()> {
        let results = self.func.op(op).results.clone();
        if results.len() != names.len() {
            return Err(self.p.error(format!(
                "op produces {} results but {} names given",
                results.len(),
                names.len()
            )));
        }
        for (n, r) in names.iter().zip(results) {
            self.scope.insert(n.clone(), r);
        }
        Ok(())
    }

    fn parse_if(&mut self, region: RegionId, result_names: &[String]) -> Result<()> {
        let cond_name = self.p.expect_percent()?;
        let cond = self.lookup(&cond_name)?;
        let mut result_types = Vec::new();
        if self.p.eat(&Tok::Arrow) {
            self.p.expect(&Tok::LParen)?;
            loop {
                result_types.push(self.p.parse_type()?);
                if self.p.eat(&Tok::RParen) {
                    break;
                }
                self.p.expect(&Tok::Comma)?;
            }
        }
        self.p.expect(&Tok::LBrace)?;
        let then_r = self.func.new_region(&[]);
        self.parse_region_body(then_r)?;
        let else_kw = self.p.expect_ident()?;
        if else_kw != "else" {
            return Err(self.p.error("expected `else`"));
        }
        self.p.expect(&Tok::LBrace)?;
        let else_r = self.func.new_region(&[]);
        self.parse_region_body(else_r)?;
        let op = self.func.push_op(
            region,
            OpKind::If,
            vec![cond],
            &result_types,
            Attrs::new(),
            vec![then_r, else_r],
        );
        self.bind_results(op, result_names)
    }

    fn parse_for(&mut self, region: RegionId, result_names: &[String]) -> Result<()> {
        let iv_name = self.p.expect_percent()?;
        self.p.expect(&Tok::Eq)?;
        let lb_name = self.p.expect_percent()?;
        let lb = self.lookup(&lb_name)?;
        let to_kw = self.p.expect_ident()?;
        if to_kw != "to" {
            return Err(self.p.error("expected `to`"));
        }
        let ub_name = self.p.expect_percent()?;
        let ub = self.lookup(&ub_name)?;
        let step_kw = self.p.expect_ident()?;
        if step_kw != "step" {
            return Err(self.p.error("expected `step`"));
        }
        let st_name = self.p.expect_percent()?;
        let st = self.lookup(&st_name)?;

        let mut iter_names = Vec::new();
        let mut iter_inits = Vec::new();
        if matches!(self.p.peek(), Some(Tok::Ident(w)) if w == "iter_args") {
            self.p.next()?;
            self.p.expect(&Tok::LParen)?;
            loop {
                let an = self.p.expect_percent()?;
                self.p.expect(&Tok::Eq)?;
                let init_name = self.p.expect_percent()?;
                let init = self.lookup(&init_name)?;
                iter_names.push(an);
                iter_inits.push(init);
                if self.p.eat(&Tok::RParen) {
                    break;
                }
                self.p.expect(&Tok::Comma)?;
            }
            self.p.expect(&Tok::Arrow)?;
            self.p.expect(&Tok::LParen)?;
            // Result types are redundant with init types; consume them.
            loop {
                let _ = self.p.parse_type()?;
                if self.p.eat(&Tok::RParen) {
                    break;
                }
                self.p.expect(&Tok::Comma)?;
            }
        }
        self.p.expect(&Tok::LBrace)?;

        let mut arg_types = vec![Type::INDEX];
        let iter_types: Vec<Type> = iter_inits
            .iter()
            .map(|&v| self.func.value_type(v))
            .collect();
        arg_types.extend(iter_types.iter().copied());
        let body = self.func.new_region(&arg_types);
        let args = self.func.region(body).args.clone();
        self.scope.insert(iv_name, args[0]);
        for (n, &a) in iter_names.iter().zip(&args[1..]) {
            self.scope.insert(n.clone(), a);
        }
        self.parse_region_body(body)?;

        let mut operands = vec![lb, ub, st];
        operands.extend(iter_inits);
        let op = self.func.push_op(
            region,
            OpKind::For,
            operands,
            &iter_types,
            Attrs::new(),
            vec![body],
        );
        self.bind_results(op, result_names)
    }

    fn parse_constant(&mut self, region: RegionId, result_names: &[String]) -> Result<()> {
        let payload = self.p.next()?;
        self.p.expect(&Tok::Colon)?;
        let ty = self.p.parse_type()?;
        let kind = match (payload, ty.scalar()) {
            (Tok::Num(n), Some(ScalarType::F64)) => OpKind::ConstantF(
                n.parse()
                    .map_err(|_| self.p.error(format!("bad float {n}")))?,
            ),
            (Tok::Num(n), Some(ScalarType::I64)) | (Tok::Num(n), Some(ScalarType::Index)) => {
                OpKind::ConstantInt(
                    n.parse()
                        .map_err(|_| self.p.error(format!("bad int {n}")))?,
                )
            }
            (Tok::Ident(w), Some(ScalarType::I1)) if w == "true" || w == "false" => {
                OpKind::ConstantBool(w == "true")
            }
            (p, _) => {
                return Err(self
                    .p
                    .error(format!("bad constant payload {p:?} for type {ty}")))
            }
        };
        let op = self
            .func
            .push_op(region, kind, vec![], &[ty], Attrs::new(), vec![]);
        self.bind_results(op, result_names)
    }

    fn parse_generic(
        &mut self,
        region: RegionId,
        op_name: &str,
        result_names: &[String],
    ) -> Result<()> {
        // Optional predicate for cmp ops: `pred,`.
        let mut pred: Option<String> = None;
        if op_name == "arith.cmpf" || op_name == "arith.cmpi" {
            pred = Some(self.p.expect_ident()?);
            self.p.expect(&Tok::Comma)?;
        }
        // Operand list.
        let mut operands = Vec::new();
        while let Some(Tok::Percent(_)) = self.p.peek() {
            let Tok::Percent(n) = self.p.next()? else {
                unreachable!()
            };
            operands.push(self.lookup(&n)?);
            if !self.p.eat(&Tok::Comma) {
                break;
            }
        }
        // Optional attribute dict.
        let attrs = if self.p.peek() == Some(&Tok::LBrace) {
            self.p.parse_attr_dict()?
        } else {
            Attrs::new()
        };
        // Optional trailing type.
        let trailing = if self.p.eat(&Tok::Colon) {
            Some(self.p.parse_type()?)
        } else {
            None
        };

        let kind = op_kind_from_name(op_name, pred.as_deref())
            .ok_or_else(|| self.p.error(format!("unknown op {op_name:?}")))?;
        let result_types: Vec<Type> = if result_names.is_empty() {
            vec![]
        } else {
            let ty =
                trailing.ok_or_else(|| self.p.error(format!("{op_name} needs a result type")))?;
            vec![ty; result_names.len()]
        };
        let op = self
            .func
            .push_op(region, kind, operands, &result_types, attrs, vec![]);
        self.bind_results(op, result_names)
    }
}

/// Maps an op name (and optional cmp predicate) to its [`OpKind`].
fn op_kind_from_name(name: &str, pred: Option<&str>) -> Option<OpKind> {
    if let Some(suffix) = name.strip_prefix("math.") {
        if suffix == "fma" {
            return Some(OpKind::Fma);
        }
        return MathFn::parse(suffix).map(OpKind::Math);
    }
    Some(match name {
        "arith.addf" => OpKind::AddF,
        "arith.subf" => OpKind::SubF,
        "arith.mulf" => OpKind::MulF,
        "arith.divf" => OpKind::DivF,
        "arith.remf" => OpKind::RemF,
        "arith.negf" => OpKind::NegF,
        "arith.minimumf" => OpKind::MinF,
        "arith.maximumf" => OpKind::MaxF,
        "arith.addi" => OpKind::AddI,
        "arith.subi" => OpKind::SubI,
        "arith.muli" => OpKind::MulI,
        "arith.cmpf" => OpKind::CmpF(CmpFPred::parse(pred?)?),
        "arith.cmpi" => OpKind::CmpI(CmpIPred::parse(pred?)?),
        "arith.andi" => OpKind::AndI,
        "arith.ori" => OpKind::OrI,
        "arith.xori" => OpKind::XorI,
        "arith.select" => OpKind::Select,
        "arith.sitofp" => OpKind::SIToFP,
        "arith.index_cast" => OpKind::IndexCast,
        "vector.broadcast" => OpKind::Broadcast,
        "scf.yield" => OpKind::Yield,
        "func.return" => OpKind::Return,
        "limpet.get_ext" => OpKind::GetExt,
        "limpet.set_ext" => OpKind::SetExt,
        "limpet.get_state" => OpKind::GetState,
        "limpet.set_state" => OpKind::SetState,
        "limpet.param" => OpKind::Param,
        "limpet.has_parent" => OpKind::HasParent,
        "limpet.get_parent_state" => OpKind::GetParentState,
        "limpet.set_parent_state" => OpKind::SetParentState,
        "limpet.dt" => OpKind::Dt,
        "limpet.time" => OpKind::Time,
        "limpet.cell_index" => OpKind::CellIndex,
        "lut.col" => OpKind::LutCol,
        _ => return None,
    })
}

/// Parses a textual IR module.
///
/// # Errors
///
/// Returns a [`ParseError`] (with line number) on any lexical, syntactic, or
/// name-resolution failure.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), limpet_ir::ParseError> {
/// let m = limpet_ir::parse_module(
///     "module @m {\n  func.func @f() {\n    func.return\n  }\n}\n",
/// )?;
/// assert_eq!(m.name(), "m");
/// assert!(m.func("f").is_some());
/// # Ok(())
/// # }
/// ```
pub fn parse_module(src: &str) -> Result<Module> {
    let mut p = Parser::new(src)?;
    let kw = p.expect_ident()?;
    if kw != "module" {
        return Err(p.error("expected `module`"));
    }
    let name = p.expect_at()?;
    let mut module = Module::new(&name);
    if matches!(p.peek(), Some(Tok::Ident(w)) if w == "attributes") {
        p.next()?;
        module.attrs = p.parse_attr_dict()?;
    }
    p.expect(&Tok::LBrace)?;
    loop {
        match p.peek() {
            Some(Tok::RBrace) => {
                p.next()?;
                break;
            }
            Some(Tok::Ident(w)) if w == "lut" => {
                p.next()?;
                let name = p.expect_at()?;
                let attrs = p.parse_attr_dict()?;
                let spec = LutSpec {
                    name,
                    lo: attrs
                        .f64_of("lo")
                        .ok_or_else(|| p.error("lut missing lo"))?,
                    hi: attrs
                        .f64_of("hi")
                        .ok_or_else(|| p.error("lut missing hi"))?,
                    step: attrs
                        .f64_of("step")
                        .ok_or_else(|| p.error("lut missing step"))?,
                    func: attrs
                        .str_of("func")
                        .ok_or_else(|| p.error("lut missing func"))?
                        .to_owned(),
                    cols: attrs
                        .str_of("cols")
                        .map(|s| {
                            s.split(',')
                                .filter(|c| !c.is_empty())
                                .map(str::to_owned)
                                .collect()
                        })
                        .unwrap_or_default(),
                };
                module.luts.push(spec);
            }
            Some(Tok::Ident(w)) if w == "func.func" => {
                p.next()?;
                let fname = p.expect_at()?;
                p.expect(&Tok::LParen)?;
                let mut arg_names = Vec::new();
                let mut arg_types = Vec::new();
                if !p.eat(&Tok::RParen) {
                    loop {
                        let an = p.expect_percent()?;
                        p.expect(&Tok::Colon)?;
                        let ty = p.parse_type()?;
                        arg_names.push(an);
                        arg_types.push(ty);
                        if p.eat(&Tok::RParen) {
                            break;
                        }
                        p.expect(&Tok::Comma)?;
                    }
                }
                let mut result_types = Vec::new();
                if p.eat(&Tok::Arrow) {
                    p.expect(&Tok::LParen)?;
                    loop {
                        result_types.push(p.parse_type()?);
                        if p.eat(&Tok::RParen) {
                            break;
                        }
                        p.expect(&Tok::Comma)?;
                    }
                }
                p.expect(&Tok::LBrace)?;
                let func = Func::new(&fname, &arg_types, &result_types);
                let mut scope = HashMap::new();
                for (n, &v) in arg_names.iter().zip(func.args()) {
                    scope.insert(n.clone(), v);
                }
                let mut fp = FuncParser {
                    p: &mut p,
                    func,
                    scope,
                };
                let body = fp.func.body();
                fp.parse_region_body(body)?;
                module.add_func(fp.func);
            }
            other => return Err(p.error(format!("expected lut/func.func/}}, got {other:?}"))),
        }
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    #[test]
    fn parse_minimal_module() {
        let m = parse_module("module @m {\n}\n").unwrap();
        assert_eq!(m.name(), "m");
        assert!(m.funcs().is_empty());
    }

    #[test]
    fn parse_simple_ops() {
        let src = "module @m {
  func.func @f() {
    %0 = arith.constant 2.0 : f64
    %1 = arith.constant 3.0 : f64
    %2 = arith.addf %0, %1 : f64
    limpet.set_state %2 {var = \"u\"} : f64
    func.return
  }
}
";
        let m = parse_module(src).unwrap();
        let f = m.func("f").unwrap();
        assert_eq!(f.region(f.body()).ops.len(), 5);
        // Re-print must equal the original.
        assert_eq!(print_module(&m), src);
    }

    #[test]
    fn parse_if_with_results() {
        let src = "module @m {
  func.func @f() {
    %0 = arith.constant true : i1
    %1 = scf.if %0 -> (f64) {
      %2 = arith.constant 1.0 : f64
      scf.yield %2 : f64
    } else {
      %3 = arith.constant 2.0 : f64
      scf.yield %3 : f64
    }
    func.return
  }
}
";
        let m = parse_module(src).unwrap();
        assert_eq!(print_module(&m), src);
    }

    #[test]
    fn parse_for_loop() {
        let src = "module @m {
  func.func @f() {
    %0 = arith.constant 0 : index
    %1 = arith.constant 4 : index
    %2 = arith.constant 1 : index
    %3 = arith.constant 1.0 : f64
    %4 = scf.for %arg0 = %0 to %1 step %2 iter_args(%arg1 = %3) -> (f64) {
      %5 = arith.addf %arg1, %arg1 : f64
      scf.yield %5 : f64
    }
    func.return
  }
}
";
        let m = parse_module(src).unwrap();
        assert_eq!(print_module(&m), src);
    }

    #[test]
    fn parse_vector_types_and_cmp() {
        let src = "module @m {
  func.func @f() {
    %0 = arith.constant 1.5 : vector<8xf64>
    %1 = arith.cmpf olt, %0, %0 : vector<8xi1>
    %2 = arith.select %1, %0, %0 : vector<8xf64>
    func.return
  }
}
";
        let m = parse_module(src).unwrap();
        assert_eq!(print_module(&m), src);
    }

    #[test]
    fn parse_lut_decl() {
        let src = "module @m {
  lut @Vm {cols = \"e0,e1\", func = \"lut_Vm\", hi = 100.0, lo = -100.0, step = 0.05}
  func.func @lut_Vm(%arg0: f64) -> (f64, f64) {
    func.return %arg0, %arg0 : f64
  }
}
";
        let m = parse_module(src).unwrap();
        let lut = m.lut("Vm").unwrap();
        assert_eq!(lut.cols, vec!["e0", "e1"]);
        assert_eq!(lut.rows(), 4002);
        assert_eq!(print_module(&m), src);
    }

    #[test]
    fn error_has_line_number() {
        let err =
            parse_module("module @m {\n  func.func @f() {\n    %0 = bogus.op : f64\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.to_string().contains("bogus.op"));
    }

    #[test]
    fn unknown_value_is_error() {
        let src = "module @m {\n  func.func @f() {\n    limpet.set_state %9 {var = \"u\"} : f64\n  }\n}\n";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("unknown value"));
    }

    #[test]
    fn all_generic_ops_parse_by_name() {
        // Every op name emitted by OpKind::name must be recognized.
        use crate::ops::OpKind::*;
        let kinds = [
            AddF,
            SubF,
            MulF,
            DivF,
            RemF,
            NegF,
            MinF,
            MaxF,
            Fma,
            AddI,
            SubI,
            MulI,
            AndI,
            OrI,
            XorI,
            Select,
            SIToFP,
            IndexCast,
            Broadcast,
            Yield,
            Return,
            GetExt,
            SetExt,
            GetState,
            SetState,
            Param,
            HasParent,
            GetParentState,
            SetParentState,
            Dt,
            Time,
            CellIndex,
            LutCol,
        ];
        for k in kinds {
            assert!(
                op_kind_from_name(k.name(), None).is_some(),
                "{} unrecognized",
                k.name()
            );
        }
        for f in MathFn::ALL {
            assert!(op_kind_from_name(OpKind::Math(f).name(), None).is_some());
        }
    }
}
