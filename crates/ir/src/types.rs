//! The type system of mlir-lite.
//!
//! Mirrors the subset of MLIR's builtin types that the limpetMLIR code
//! generator needs: `f64`, `i1`, `i64`, `index`, fixed-width vectors of
//! scalars, and 1-D memrefs of scalars.

use std::fmt;

/// A scalar (rank-0) type.
///
/// # Examples
///
/// ```
/// use limpet_ir::ScalarType;
/// assert_eq!(ScalarType::F64.to_string(), "f64");
/// assert!(ScalarType::F64.is_float());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// 64-bit IEEE-754 floating point.
    F64,
    /// 1-bit boolean (MLIR `i1`).
    I1,
    /// 64-bit signless integer.
    I64,
    /// Target-width index type used for subscripts and loop bounds.
    Index,
}

impl ScalarType {
    /// Returns `true` for [`ScalarType::F64`].
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F64)
    }

    /// Returns `true` for the integer-like types (`i1`, `i64`, `index`).
    pub fn is_integer_like(self) -> bool {
        !self.is_float()
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarType::F64 => write!(f, "f64"),
            ScalarType::I1 => write!(f, "i1"),
            ScalarType::I64 => write!(f, "i64"),
            ScalarType::Index => write!(f, "index"),
        }
    }
}

/// An mlir-lite type: scalar, vector-of-scalar, or memref-of-scalar.
///
/// # Examples
///
/// ```
/// use limpet_ir::{ScalarType, Type};
/// let v = Type::vector(8, ScalarType::F64);
/// assert_eq!(v.to_string(), "vector<8xf64>");
/// assert_eq!(v.lanes(), 8);
/// assert_eq!(v.scalar(), Some(ScalarType::F64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// A rank-0 scalar value.
    Scalar(ScalarType),
    /// A fixed-width 1-D vector, e.g. `vector<8xf64>`.
    Vector {
        /// Number of lanes. Always >= 1.
        width: u32,
        /// Element type.
        elem: ScalarType,
    },
    /// A dynamically-sized 1-D memref, e.g. `memref<?xf64>`.
    MemRef {
        /// Element type.
        elem: ScalarType,
    },
}

impl Type {
    /// The canonical `f64` type.
    pub const F64: Type = Type::Scalar(ScalarType::F64);
    /// The canonical `i1` type.
    pub const I1: Type = Type::Scalar(ScalarType::I1);
    /// The canonical `i64` type.
    pub const I64: Type = Type::Scalar(ScalarType::I64);
    /// The canonical `index` type.
    pub const INDEX: Type = Type::Scalar(ScalarType::Index);

    /// Builds a vector type of `width` lanes of `elem`.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn vector(width: u32, elem: ScalarType) -> Type {
        assert!(width >= 1, "vector width must be at least 1");
        Type::Vector { width, elem }
    }

    /// Builds a 1-D memref type of `elem`.
    pub fn memref(elem: ScalarType) -> Type {
        Type::MemRef { elem }
    }

    /// The number of lanes: 1 for scalars, `width` for vectors.
    ///
    /// Memrefs have no meaningful lane count and report 1.
    pub fn lanes(&self) -> u32 {
        match self {
            Type::Vector { width, .. } => *width,
            _ => 1,
        }
    }

    /// The underlying scalar type for scalars and vectors, `None` for memrefs.
    pub fn scalar(&self) -> Option<ScalarType> {
        match self {
            Type::Scalar(s) => Some(*s),
            Type::Vector { elem, .. } => Some(*elem),
            Type::MemRef { .. } => None,
        }
    }

    /// Returns `true` if this is a scalar type.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Scalar(_))
    }

    /// Returns `true` if this is a vector type.
    pub fn is_vector(&self) -> bool {
        matches!(self, Type::Vector { .. })
    }

    /// Returns `true` if this is a memref type.
    pub fn is_memref(&self) -> bool {
        matches!(self, Type::MemRef { .. })
    }

    /// Returns `true` for scalar or vector `f64`.
    pub fn is_float_like(&self) -> bool {
        self.scalar().is_some_and(ScalarType::is_float)
    }

    /// Returns `true` for scalar or vector `i1`.
    pub fn is_bool_like(&self) -> bool {
        self.scalar() == Some(ScalarType::I1)
    }

    /// Re-wraps this type's scalar at a new lane count.
    ///
    /// `with_lanes(1)` yields the scalar type itself; larger counts yield a
    /// vector. Memrefs are returned unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use limpet_ir::Type;
    /// assert_eq!(Type::F64.with_lanes(4).to_string(), "vector<4xf64>");
    /// assert_eq!(Type::F64.with_lanes(4).with_lanes(1), Type::F64);
    /// ```
    pub fn with_lanes(&self, lanes: u32) -> Type {
        match self.scalar() {
            None => *self,
            Some(s) if lanes <= 1 => Type::Scalar(s),
            Some(s) => Type::Vector {
                width: lanes,
                elem: s,
            },
        }
    }
}

impl From<ScalarType> for Type {
    fn from(s: ScalarType) -> Type {
        Type::Scalar(s)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Vector { width, elem } => write!(f, "vector<{width}x{elem}>"),
            Type::MemRef { elem } => write!(f, "memref<?x{elem}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_names() {
        assert_eq!(Type::F64.to_string(), "f64");
        assert_eq!(Type::I1.to_string(), "i1");
        assert_eq!(Type::I64.to_string(), "i64");
        assert_eq!(Type::INDEX.to_string(), "index");
        assert_eq!(Type::vector(2, ScalarType::I1).to_string(), "vector<2xi1>");
        assert_eq!(Type::memref(ScalarType::F64).to_string(), "memref<?xf64>");
    }

    #[test]
    fn lanes_and_scalar() {
        assert_eq!(Type::F64.lanes(), 1);
        assert_eq!(Type::vector(8, ScalarType::F64).lanes(), 8);
        assert_eq!(
            Type::vector(8, ScalarType::F64).scalar(),
            Some(ScalarType::F64)
        );
        assert_eq!(Type::memref(ScalarType::F64).scalar(), None);
    }

    #[test]
    fn with_lanes_is_idempotent_on_scalars() {
        let v = Type::F64.with_lanes(8);
        assert!(v.is_vector());
        assert_eq!(v.with_lanes(8), v);
        assert_eq!(v.with_lanes(1), Type::F64);
        let m = Type::memref(ScalarType::F64);
        assert_eq!(m.with_lanes(8), m);
    }

    #[test]
    #[should_panic(expected = "vector width")]
    fn zero_width_vector_panics() {
        let _ = Type::vector(0, ScalarType::F64);
    }

    #[test]
    fn classification() {
        assert!(Type::F64.is_float_like());
        assert!(Type::vector(4, ScalarType::F64).is_float_like());
        assert!(!Type::I64.is_float_like());
        assert!(Type::I1.is_bool_like());
        assert!(Type::vector(4, ScalarType::I1).is_bool_like());
        assert!(ScalarType::I64.is_integer_like());
        assert!(ScalarType::Index.is_integer_like());
    }
}
