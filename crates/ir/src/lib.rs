//! # limpet-ir: mlir-lite
//!
//! A compact, multi-dialect SSA intermediate representation modeled on the
//! subset of [MLIR](https://mlir.llvm.org) used by the limpetMLIR code
//! generator (Thangamani et al., *Lifting Code Generation of Cardiac
//! Physiology Simulation to Novel Compiler Technology*, CGO 2023):
//!
//! * **Dialects** — `arith`, `math`, `scf` (structured control flow),
//!   `func`, `vector`, plus the domain dialects `limpet` (ionic-model data
//!   access) and `lut` (lookup-table interpolation).
//! * **Structure** — a [`Module`] holds [`Func`]s; each function owns a body
//!   region; `scf.if` / `scf.for` own nested single-block regions. Values
//!   are SSA.
//! * **Text format** — [`print_module`] emits an MLIR-style textual form
//!   that [`parse_module`] parses back (round-trip tested).
//! * **Verification** — [`verify_module`] enforces dominance, typing, and
//!   terminator rules.
//!
//! # Examples
//!
//! Build, print, and re-parse a tiny kernel:
//!
//! ```
//! use limpet_ir::{Builder, Func, Module, parse_module, print_module, verify_module};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut module = Module::new("demo");
//! let mut f = Func::new("compute", &[], &[]);
//! let mut b = Builder::new(&mut f);
//! let vm = b.get_ext("Vm");
//! let k = b.const_f(0.04);
//! let dv = b.mulf(vm, k);
//! b.set_state("u", dv);
//! b.ret(&[]);
//! module.add_func(f);
//!
//! verify_module(&module)?;
//! let text = print_module(&module);
//! let reparsed = parse_module(&text)?;
//! assert_eq!(print_module(&reparsed), text);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attr;
mod builder;
mod module;
mod ops;
mod parser;
mod printer;
pub mod testing;
mod types;
mod verifier;

/// Version stamp of the textual IR format ([`print_module`] /
/// [`parse_module`]). Bump whenever the printed form changes shape — the
/// on-disk kernel cache embeds this stamp in every entry and treats a
/// mismatch as "stale: recompile", so old entries can never be misparsed
/// by a newer reader (or vice versa).
pub const TEXT_FORMAT_VERSION: u32 = 1;

pub use attr::{Attr, Attrs};
pub use builder::Builder;
pub use module::{
    Func, LutSpec, Module, OpData, OpId, RegionData, RegionId, ValueData, ValueDef, ValueId,
};
pub use ops::{CmpFPred, CmpIPred, MathFn, OpKind};
pub use parser::{parse_module, ParseError};
pub use printer::{print_func, print_module};
pub use types::{ScalarType, Type};
pub use verifier::{verify_module, VerifyCode, VerifyError};
