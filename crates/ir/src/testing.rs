//! Shared test corpus: a known-valid kernel module plus a catalogue of
//! invalidating mutations.
//!
//! Two suites consume this corpus:
//!
//! * `limpet-ir`'s `verifier_mutations` integration test asserts
//!   [`verify_module`](crate::verify_module) rejects every mutation;
//! * `limpet-pm`'s verify-instrumentation test wraps each mutation as a
//!   pass and asserts the pass manager's verify-after-each-pass mode
//!   attributes the failure to the offending pass by name.
//!
//! Each [`Mutation`] is a named function applied to a *fresh*
//! [`corpus_module`]; value handles are deterministic, so the `values`
//! returned at construction stay valid.

use crate::{Attrs, Builder, CmpFPred, Func, Module, OpKind, Type, ValueId};

/// A valid module with arithmetic, an if, a loop, and state access, plus
/// handles to a few of its values (`x`, the constant `2.0`, the multiply
/// result, and the `i1` comparison result, in that order).
pub fn corpus_module() -> (Module, Vec<ValueId>) {
    let mut m = Module::new("m");
    let mut f = Func::new("compute", &[], &[]);
    let mut b = Builder::new(&mut f);
    let x = b.get_state("x");
    let two = b.const_f(2.0);
    let y = b.mulf(x, two);
    let z = b.const_f(0.0);
    let c = b.cmpf(CmpFPred::Ogt, y, z);
    let sel = b.if_op(
        c,
        &[Type::F64],
        |bb| {
            let e = bb.exp(y);
            bb.yield_(&[e]);
        },
        |bb| {
            bb.yield_(&[y]);
        },
    );
    let lb = b.const_index(0);
    let ub = b.const_index(3);
    let st = b.const_index(1);
    let looped = b.for_op(lb, ub, st, &[sel[0]], |bb, _iv, iters| {
        let h = bb.const_f(0.5);
        let n = bb.mulf(iters[0], h);
        bb.yield_(&[n]);
    });
    b.set_state("x", looped[0]);
    b.ret(&[]);
    m.add_func(f);
    let values = vec![x, two, y, c];
    (m, values)
}

/// One way of breaking a [`corpus_module`]: a distinct class of structural
/// invalidity the verifier must detect.
#[derive(Debug, Clone, Copy)]
pub struct Mutation {
    /// A stable, kebab-case identifier (doubles as a pass name in the
    /// pass-manager instrumentation test).
    pub name: &'static str,
    /// Applies the mutation. `values` is the handle vector returned by
    /// [`corpus_module`] for the same module instance.
    pub apply: fn(&mut Module, &[ValueId]),
}

fn find_op(f: &Func, want: impl Fn(&OpKind) -> bool) -> crate::OpId {
    f.walk_ops()
        .into_iter()
        .find(|&(_, _, op)| want(&f.op(op).kind))
        .expect("corpus module contains the op")
        .2
}

/// The catalogue of invalidating mutations, each rejected by
/// [`verify_module`](crate::verify_module).
pub fn mutations() -> Vec<Mutation> {
    vec![
        Mutation {
            name: "type-mismatched-operand",
            apply: |m, vals| {
                let f = m.func_mut("compute").unwrap();
                // Make mulf consume the i1 comparison result: type error.
                let target = find_op(f, |k| *k == OpKind::MulF);
                f.op_mut(target).operands[1] = vals[3];
            },
        },
        Mutation {
            name: "use-before-def",
            apply: |m, _| {
                let f = m.func_mut("compute").unwrap();
                let body = f.body();
                // Move the first op (get_state) to the end, after its uses.
                let ops = &mut f.region_mut(body).ops;
                let first = ops.remove(0);
                let len = ops.len();
                ops.insert(len - 1, first);
            },
        },
        Mutation {
            name: "removed-region-terminator",
            apply: |m, _| {
                let f = m.func_mut("compute").unwrap();
                // Find the if's then-region and pop its yield.
                let if_op = find_op(f, |k| *k == OpKind::If);
                let then_r = f.op(if_op).regions[0];
                f.region_mut(then_r).ops.pop();
            },
        },
        Mutation {
            name: "yield-arity-change",
            apply: |m, _| {
                let f = m.func_mut("compute").unwrap();
                let if_op = find_op(f, |k| *k == OpKind::If);
                let then_r = f.op(if_op).regions[0];
                let yield_op = *f.region(then_r).ops.last().unwrap();
                f.op_mut(yield_op).operands.clear();
            },
        },
        Mutation {
            name: "cross-region-escape",
            apply: |m, _| {
                let f = m.func_mut("compute").unwrap();
                // Use a value defined inside the if's then-region from the
                // body.
                let if_op = find_op(f, |k| *k == OpKind::If);
                let then_r = f.op(if_op).regions[0];
                let inner_val = f.op(f.region(then_r).ops[0]).result();
                let store = find_op(f, |k| *k == OpKind::SetState);
                f.op_mut(store).operands[0] = inner_val;
            },
        },
        Mutation {
            name: "missing-var-attribute",
            apply: |m, _| {
                let f = m.func_mut("compute").unwrap();
                let store = find_op(f, |k| *k == OpKind::SetState);
                f.op_mut(store).attrs = Attrs::new();
            },
        },
        Mutation {
            name: "for-with-float-bounds",
            apply: |m, _| {
                let f = m.func_mut("compute").unwrap();
                let for_op = find_op(f, |k| *k == OpKind::For);
                // Replace the lower bound with an f64 value.
                let some_float = find_op(f, |k| matches!(k, OpKind::ConstantF(_)));
                let some_float = f.op(some_float).result();
                f.op_mut(for_op).operands[0] = some_float;
            },
        },
        Mutation {
            name: "lut-col-missing-table",
            apply: |m, vals| {
                let f = m.func_mut("compute").unwrap();
                let body = f.body();
                let mut attrs = Attrs::new();
                attrs.set("table", "NoSuchTable");
                attrs.set("col", 0i64);
                // vals[0] is defined by op 0; inserting at index 0 also
                // makes the read precede the definition — either error is
                // acceptable, but an error there must be.
                f.insert_op(
                    body,
                    0,
                    OpKind::LutCol,
                    vec![vals[0]],
                    &[Type::F64],
                    attrs,
                    vec![],
                );
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_module;

    #[test]
    fn corpus_module_is_valid_and_mutation_names_unique() {
        let (m, _) = corpus_module();
        verify_module(&m).unwrap();
        let muts = mutations();
        let mut names: Vec<_> = muts.iter().map(|mu| mu.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), muts.len(), "duplicate mutation names");
    }
}
