//! Operation kinds: the instruction vocabulary of mlir-lite.
//!
//! Operations are grouped into dialects following the MLIR dialects the paper
//! uses (§3.3): `arith`, `math`, `scf`, `func`, `vector`, plus two
//! domain dialects:
//!
//! * `limpet` — ionic-model data access (external variables, per-cell state,
//!   parameters, simulation context), standing in for the memref views +
//!   accessor functions of the original generated code;
//! * `lut` — lookup-table linear interpolation (§3.4.2).

use std::fmt;

/// Floating-point comparison predicates (ordered comparisons only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpFPred {
    /// Ordered equal.
    Oeq,
    /// Ordered not-equal.
    One,
    /// Ordered less-than.
    Olt,
    /// Ordered less-or-equal.
    Ole,
    /// Ordered greater-than.
    Ogt,
    /// Ordered greater-or-equal.
    Oge,
}

impl CmpFPred {
    /// The MLIR spelling, e.g. `"olt"`.
    pub fn name(self) -> &'static str {
        match self {
            CmpFPred::Oeq => "oeq",
            CmpFPred::One => "one",
            CmpFPred::Olt => "olt",
            CmpFPred::Ole => "ole",
            CmpFPred::Ogt => "ogt",
            CmpFPred::Oge => "oge",
        }
    }

    /// Parses the MLIR spelling.
    pub fn parse(s: &str) -> Option<CmpFPred> {
        Some(match s {
            "oeq" => CmpFPred::Oeq,
            "one" => CmpFPred::One,
            "olt" => CmpFPred::Olt,
            "ole" => CmpFPred::Ole,
            "ogt" => CmpFPred::Ogt,
            "oge" => CmpFPred::Oge,
            _ => return None,
        })
    }

    /// Applies the predicate to two floats.
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpFPred::Oeq => a == b,
            CmpFPred::One => a != b,
            CmpFPred::Olt => a < b,
            CmpFPred::Ole => a <= b,
            CmpFPred::Ogt => a > b,
            CmpFPred::Oge => a >= b,
        }
    }

    /// The predicate with swapped operand order (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpFPred {
        match self {
            CmpFPred::Olt => CmpFPred::Ogt,
            CmpFPred::Ole => CmpFPred::Oge,
            CmpFPred::Ogt => CmpFPred::Olt,
            CmpFPred::Oge => CmpFPred::Ole,
            p => p,
        }
    }
}

/// Integer comparison predicates (signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpIPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
}

impl CmpIPred {
    /// The MLIR spelling, e.g. `"slt"`.
    pub fn name(self) -> &'static str {
        match self {
            CmpIPred::Eq => "eq",
            CmpIPred::Ne => "ne",
            CmpIPred::Slt => "slt",
            CmpIPred::Sle => "sle",
            CmpIPred::Sgt => "sgt",
            CmpIPred::Sge => "sge",
        }
    }

    /// Parses the MLIR spelling.
    pub fn parse(s: &str) -> Option<CmpIPred> {
        Some(match s {
            "eq" => CmpIPred::Eq,
            "ne" => CmpIPred::Ne,
            "slt" => CmpIPred::Slt,
            "sle" => CmpIPred::Sle,
            "sgt" => CmpIPred::Sgt,
            "sge" => CmpIPred::Sge,
            _ => return None,
        })
    }

    /// Applies the predicate to two integers.
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpIPred::Eq => a == b,
            CmpIPred::Ne => a != b,
            CmpIPred::Slt => a < b,
            CmpIPred::Sle => a <= b,
            CmpIPred::Sgt => a > b,
            CmpIPred::Sge => a >= b,
        }
    }
}

/// Functions of the `math` dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MathFn {
    Exp,
    Expm1,
    Log,
    Log1p,
    Log10,
    Log2,
    Sqrt,
    Cbrt,
    Sin,
    Cos,
    Tan,
    Asin,
    Acos,
    Atan,
    Sinh,
    Cosh,
    Tanh,
    Abs,
    Floor,
    Ceil,
    Round,
    Pow,
    Atan2,
    CopySign,
}

impl MathFn {
    /// Number of operands (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            MathFn::Pow | MathFn::Atan2 | MathFn::CopySign => 2,
            _ => 1,
        }
    }

    /// The MLIR op suffix, e.g. `exp` for `math.exp`.
    pub fn name(self) -> &'static str {
        match self {
            MathFn::Exp => "exp",
            MathFn::Expm1 => "expm1",
            MathFn::Log => "log",
            MathFn::Log1p => "log1p",
            MathFn::Log10 => "log10",
            MathFn::Log2 => "log2",
            MathFn::Sqrt => "sqrt",
            MathFn::Cbrt => "cbrt",
            MathFn::Sin => "sin",
            MathFn::Cos => "cos",
            MathFn::Tan => "tan",
            MathFn::Asin => "asin",
            MathFn::Acos => "acos",
            MathFn::Atan => "atan",
            MathFn::Sinh => "sinh",
            MathFn::Cosh => "cosh",
            MathFn::Tanh => "tanh",
            MathFn::Abs => "absf",
            MathFn::Floor => "floor",
            MathFn::Ceil => "ceil",
            MathFn::Round => "round",
            MathFn::Pow => "powf",
            MathFn::Atan2 => "atan2",
            MathFn::CopySign => "copysign",
        }
    }

    /// Parses the MLIR op suffix.
    pub fn parse(s: &str) -> Option<MathFn> {
        Some(match s {
            "exp" => MathFn::Exp,
            "expm1" => MathFn::Expm1,
            "log" => MathFn::Log,
            "log1p" => MathFn::Log1p,
            "log10" => MathFn::Log10,
            "log2" => MathFn::Log2,
            "sqrt" => MathFn::Sqrt,
            "cbrt" => MathFn::Cbrt,
            "sin" => MathFn::Sin,
            "cos" => MathFn::Cos,
            "tan" => MathFn::Tan,
            "asin" => MathFn::Asin,
            "acos" => MathFn::Acos,
            "atan" => MathFn::Atan,
            "sinh" => MathFn::Sinh,
            "cosh" => MathFn::Cosh,
            "tanh" => MathFn::Tanh,
            "absf" => MathFn::Abs,
            "floor" => MathFn::Floor,
            "ceil" => MathFn::Ceil,
            "round" => MathFn::Round,
            "powf" => MathFn::Pow,
            "atan2" => MathFn::Atan2,
            "copysign" => MathFn::CopySign,
            _ => return None,
        })
    }

    /// Evaluates the function on constant scalars.
    ///
    /// For unary functions `b` is ignored.
    pub fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            MathFn::Exp => a.exp(),
            MathFn::Expm1 => a.exp_m1(),
            MathFn::Log => a.ln(),
            MathFn::Log1p => a.ln_1p(),
            MathFn::Log10 => a.log10(),
            MathFn::Log2 => a.log2(),
            MathFn::Sqrt => a.sqrt(),
            MathFn::Cbrt => a.cbrt(),
            MathFn::Sin => a.sin(),
            MathFn::Cos => a.cos(),
            MathFn::Tan => a.tan(),
            MathFn::Asin => a.asin(),
            MathFn::Acos => a.acos(),
            MathFn::Atan => a.atan(),
            MathFn::Sinh => a.sinh(),
            MathFn::Cosh => a.cosh(),
            MathFn::Tanh => a.tanh(),
            MathFn::Abs => a.abs(),
            MathFn::Floor => a.floor(),
            MathFn::Ceil => a.ceil(),
            MathFn::Round => a.round(),
            MathFn::Pow => a.powf(b),
            MathFn::Atan2 => a.atan2(b),
            MathFn::CopySign => a.copysign(b),
        }
    }

    /// All math functions, for exhaustive tests.
    pub const ALL: [MathFn; 24] = [
        MathFn::Exp,
        MathFn::Expm1,
        MathFn::Log,
        MathFn::Log1p,
        MathFn::Log10,
        MathFn::Log2,
        MathFn::Sqrt,
        MathFn::Cbrt,
        MathFn::Sin,
        MathFn::Cos,
        MathFn::Tan,
        MathFn::Asin,
        MathFn::Acos,
        MathFn::Atan,
        MathFn::Sinh,
        MathFn::Cosh,
        MathFn::Tanh,
        MathFn::Abs,
        MathFn::Floor,
        MathFn::Ceil,
        MathFn::Round,
        MathFn::Pow,
        MathFn::Atan2,
        MathFn::CopySign,
    ];
}

/// The operation kind.
///
/// Payload data that is semantically part of the instruction (constant
/// values, predicates, math function selectors) lives in the variant; other
/// static arguments (variable names, table names) live in the operation's
/// attribute dictionary.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    // ---- arith ----
    /// `arith.constant` with an f64 (or splat vector f64) result.
    ConstantF(f64),
    /// `arith.constant` with an i64 or index result.
    ConstantInt(i64),
    /// `arith.constant` with an i1 result.
    ConstantBool(bool),
    /// `arith.addf`
    AddF,
    /// `arith.subf`
    SubF,
    /// `arith.mulf`
    MulF,
    /// `arith.divf`
    DivF,
    /// `arith.remf`
    RemF,
    /// `arith.negf`
    NegF,
    /// `arith.minimumf`
    MinF,
    /// `arith.maximumf`
    MaxF,
    /// `math.fma`-style fused multiply-add: `a*b + c`.
    Fma,
    /// `arith.addi`
    AddI,
    /// `arith.subi`
    SubI,
    /// `arith.muli`
    MulI,
    /// `arith.cmpf` with a predicate.
    CmpF(CmpFPred),
    /// `arith.cmpi` with a predicate.
    CmpI(CmpIPred),
    /// `arith.andi` on booleans.
    AndI,
    /// `arith.ori` on booleans.
    OrI,
    /// `arith.xori` on booleans.
    XorI,
    /// `arith.select cond, a, b`.
    Select,
    /// `arith.sitofp` i64 → f64.
    SIToFP,
    /// `arith.index_cast` index ↔ i64.
    IndexCast,

    // ---- math ----
    /// A `math.*` function application.
    Math(MathFn),

    // ---- vector ----
    /// `vector.broadcast` scalar → vector splat.
    Broadcast,

    // ---- scf ----
    /// `scf.if cond -> (tys) { then } else { else }`; both regions end in
    /// `scf.yield`.
    If,
    /// `scf.for lb to ub step s iter_args(...)`; region args are
    /// `[induction, iter...]`, region ends in `scf.yield`.
    For,
    /// `scf.yield` region terminator.
    Yield,

    // ---- func ----
    /// `func.return`.
    Return,

    // ---- limpet (data access) ----
    /// Reads an external (inter-cell) variable for the current cell.
    /// Attr `var`.
    GetExt,
    /// Writes an external variable. Attr `var`.
    SetExt,
    /// Reads a per-cell state variable. Attr `var`.
    GetState,
    /// Writes a per-cell state variable. Attr `var`.
    SetState,
    /// Reads a model parameter (uniform across cells). Attr `name`.
    Param,
    /// Whether a parent model is attached (multimodel support, §3.3.2).
    HasParent,
    /// Reads a parent-model state variable; falls back to the given operand
    /// when no parent is attached. Attr `var`; operand 0 = fallback value.
    GetParentState,
    /// Writes a parent-model state variable; no-op without parent. Attr `var`.
    SetParentState,
    /// The integration time step `dt` (uniform f64).
    Dt,
    /// The current simulation time `t` (uniform f64).
    Time,
    /// The index of the current cell (index type).
    CellIndex,

    // ---- lut ----
    /// Linearly interpolated lookup-table column read: attrs `table`
    /// (string) and `col` (i64); operand 0 = key value.
    LutCol,
}

impl OpKind {
    /// The full dialect-qualified op name, e.g. `"arith.addf"`.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::ConstantF(_) | OpKind::ConstantInt(_) | OpKind::ConstantBool(_) => {
                "arith.constant"
            }
            OpKind::AddF => "arith.addf",
            OpKind::SubF => "arith.subf",
            OpKind::MulF => "arith.mulf",
            OpKind::DivF => "arith.divf",
            OpKind::RemF => "arith.remf",
            OpKind::NegF => "arith.negf",
            OpKind::MinF => "arith.minimumf",
            OpKind::MaxF => "arith.maximumf",
            OpKind::Fma => "math.fma",
            OpKind::AddI => "arith.addi",
            OpKind::SubI => "arith.subi",
            OpKind::MulI => "arith.muli",
            OpKind::CmpF(_) => "arith.cmpf",
            OpKind::CmpI(_) => "arith.cmpi",
            OpKind::AndI => "arith.andi",
            OpKind::OrI => "arith.ori",
            OpKind::XorI => "arith.xori",
            OpKind::Select => "arith.select",
            OpKind::SIToFP => "arith.sitofp",
            OpKind::IndexCast => "arith.index_cast",
            OpKind::Math(f) => math_op_name(*f),
            OpKind::Broadcast => "vector.broadcast",
            OpKind::If => "scf.if",
            OpKind::For => "scf.for",
            OpKind::Yield => "scf.yield",
            OpKind::Return => "func.return",
            OpKind::GetExt => "limpet.get_ext",
            OpKind::SetExt => "limpet.set_ext",
            OpKind::GetState => "limpet.get_state",
            OpKind::SetState => "limpet.set_state",
            OpKind::Param => "limpet.param",
            OpKind::HasParent => "limpet.has_parent",
            OpKind::GetParentState => "limpet.get_parent_state",
            OpKind::SetParentState => "limpet.set_parent_state",
            OpKind::Dt => "limpet.dt",
            OpKind::Time => "limpet.time",
            OpKind::CellIndex => "limpet.cell_index",
            OpKind::LutCol => "lut.col",
        }
    }

    /// The dialect prefix of [`OpKind::name`], e.g. `"arith"`.
    pub fn dialect(&self) -> &'static str {
        let name = self.name();
        &name[..name.find('.').expect("op names are dialect-qualified")]
    }

    /// Whether the op has no side effects (may be CSE'd, folded, or erased
    /// when unused).
    pub fn is_pure(&self) -> bool {
        !matches!(
            self,
            OpKind::SetExt
                | OpKind::SetState
                | OpKind::SetParentState
                | OpKind::Yield
                | OpKind::Return
                | OpKind::If
                | OpKind::For
        )
    }

    /// Whether the op is a region terminator.
    pub fn is_terminator(&self) -> bool {
        matches!(self, OpKind::Yield | OpKind::Return)
    }

    /// Whether the op is an `arith.constant` of any payload.
    pub fn is_constant(&self) -> bool {
        matches!(
            self,
            OpKind::ConstantF(_) | OpKind::ConstantInt(_) | OpKind::ConstantBool(_)
        )
    }

    /// Whether this operation is commutative in its two operands.
    pub fn is_commutative(&self) -> bool {
        matches!(
            self,
            OpKind::AddF
                | OpKind::MulF
                | OpKind::MinF
                | OpKind::MaxF
                | OpKind::AddI
                | OpKind::MulI
                | OpKind::AndI
                | OpKind::OrI
                | OpKind::XorI
        )
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

fn math_op_name(f: MathFn) -> &'static str {
    match f {
        MathFn::Exp => "math.exp",
        MathFn::Expm1 => "math.expm1",
        MathFn::Log => "math.log",
        MathFn::Log1p => "math.log1p",
        MathFn::Log10 => "math.log10",
        MathFn::Log2 => "math.log2",
        MathFn::Sqrt => "math.sqrt",
        MathFn::Cbrt => "math.cbrt",
        MathFn::Sin => "math.sin",
        MathFn::Cos => "math.cos",
        MathFn::Tan => "math.tan",
        MathFn::Asin => "math.asin",
        MathFn::Acos => "math.acos",
        MathFn::Atan => "math.atan",
        MathFn::Sinh => "math.sinh",
        MathFn::Cosh => "math.cosh",
        MathFn::Tanh => "math.tanh",
        MathFn::Abs => "math.absf",
        MathFn::Floor => "math.floor",
        MathFn::Ceil => "math.ceil",
        MathFn::Round => "math.round",
        MathFn::Pow => "math.powf",
        MathFn::Atan2 => "math.atan2",
        MathFn::CopySign => "math.copysign",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmpf_pred_round_trip() {
        for p in [
            CmpFPred::Oeq,
            CmpFPred::One,
            CmpFPred::Olt,
            CmpFPred::Ole,
            CmpFPred::Ogt,
            CmpFPred::Oge,
        ] {
            assert_eq!(CmpFPred::parse(p.name()), Some(p));
        }
        assert_eq!(CmpFPred::parse("ult"), None);
    }

    #[test]
    fn cmpi_pred_round_trip() {
        for p in [
            CmpIPred::Eq,
            CmpIPred::Ne,
            CmpIPred::Slt,
            CmpIPred::Sle,
            CmpIPred::Sgt,
            CmpIPred::Sge,
        ] {
            assert_eq!(CmpIPred::parse(p.name()), Some(p));
        }
    }

    #[test]
    fn cmpf_apply_and_swap() {
        assert!(CmpFPred::Olt.apply(1.0, 2.0));
        assert!(!CmpFPred::Olt.apply(2.0, 1.0));
        assert!(CmpFPred::Oge.apply(2.0, 2.0));
        // NaN fails every ordered comparison.
        assert!(!CmpFPred::Oeq.apply(f64::NAN, f64::NAN));
        for p in [CmpFPred::Olt, CmpFPred::Ole, CmpFPred::Ogt, CmpFPred::Oge] {
            assert_eq!(p.apply(1.0, 2.0), p.swapped().apply(2.0, 1.0));
        }
    }

    #[test]
    fn math_fn_round_trip_and_arity() {
        for f in MathFn::ALL {
            assert_eq!(MathFn::parse(f.name()), Some(f));
            assert!(f.arity() == 1 || f.arity() == 2);
        }
        assert_eq!(MathFn::Pow.arity(), 2);
        assert_eq!(MathFn::Exp.arity(), 1);
    }

    #[test]
    fn math_fn_eval_matches_std() {
        assert_eq!(MathFn::Exp.eval(0.0, 0.0), 1.0);
        assert_eq!(MathFn::Pow.eval(2.0, 10.0), 1024.0);
        assert_eq!(MathFn::Abs.eval(-3.5, 0.0), 3.5);
        assert!((MathFn::Tanh.eval(100.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn op_kind_names_are_dialect_qualified() {
        let kinds = [
            OpKind::ConstantF(1.0),
            OpKind::AddF,
            OpKind::Math(MathFn::Exp),
            OpKind::If,
            OpKind::GetState,
            OpKind::LutCol,
            OpKind::Broadcast,
        ];
        for k in kinds {
            assert!(k.name().contains('.'), "{k} should be dialect-qualified");
            assert!(!k.dialect().is_empty());
        }
        assert_eq!(OpKind::AddF.dialect(), "arith");
        assert_eq!(OpKind::GetState.dialect(), "limpet");
    }

    #[test]
    fn purity() {
        assert!(OpKind::AddF.is_pure());
        assert!(OpKind::GetState.is_pure());
        assert!(!OpKind::SetState.is_pure());
        assert!(!OpKind::If.is_pure()); // regions may contain stores
        assert!(!OpKind::Return.is_pure());
    }

    #[test]
    fn commutativity() {
        assert!(OpKind::AddF.is_commutative());
        assert!(OpKind::MulF.is_commutative());
        assert!(!OpKind::SubF.is_commutative());
        assert!(!OpKind::DivF.is_commutative());
    }
}
