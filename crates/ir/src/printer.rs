//! MLIR-style textual printing of modules.
//!
//! The output round-trips through [`crate::parser::parse_module`]. Value
//! names are assigned in print order (`%0`, `%1`, … for op results,
//! `%argN` for region arguments), so two structurally equal functions print
//! identically regardless of arena history.

use crate::attr::Attr;
use crate::module::{Func, Module, OpId, RegionId, ValueId};
use crate::ops::OpKind;
use std::collections::HashMap;
use std::fmt::Write;

/// Prints a module in textual IR form.
///
/// # Examples
///
/// ```
/// use limpet_ir::{Builder, Func, Module, print_module};
/// let mut m = Module::new("demo");
/// let mut f = Func::new("compute", &[], &[]);
/// let mut b = Builder::new(&mut f);
/// let c = b.const_f(1.0);
/// b.set_state("u", c);
/// b.ret(&[]);
/// m.add_func(f);
/// let text = print_module(&m);
/// assert!(text.contains("module @demo"));
/// assert!(text.contains("arith.constant 1.0 : f64"));
/// ```
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    write!(out, "module @{}", module.name()).unwrap();
    if !module.attrs.is_empty() {
        write!(out, " attributes {}", module.attrs).unwrap();
    }
    out.push_str(" {\n");
    for lut in &module.luts {
        writeln!(
            out,
            "  lut @{} {{cols = \"{}\", func = \"{}\", hi = {}, lo = {}, step = {}}}",
            lut.name,
            lut.cols.join(","),
            lut.func,
            Attr::F64(lut.hi),
            Attr::F64(lut.lo),
            Attr::F64(lut.step),
        )
        .unwrap();
    }
    for func in module.funcs() {
        print_func(func, &mut out);
    }
    out.push_str("}\n");
    out
}

/// Prints a single function in textual IR form.
pub fn print_func(func: &Func, out: &mut String) {
    let mut p = FuncPrinter {
        func,
        names: HashMap::new(),
        next_result: 0,
        next_arg: 0,
    };
    write!(out, "  func.func @{}(", func.name()).unwrap();
    let args = func.args().to_vec();
    for (i, &a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let name = p.name_arg(a);
        write!(out, "{name}: {}", func.value_type(a)).unwrap();
    }
    out.push(')');
    if !func.result_types().is_empty() {
        out.push_str(" -> (");
        for (i, t) in func.result_types().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "{t}").unwrap();
        }
        out.push(')');
    }
    out.push_str(" {\n");
    p.print_region_body(func.body(), 2, out);
    out.push_str("  }\n");
}

struct FuncPrinter<'a> {
    func: &'a Func,
    names: HashMap<ValueId, String>,
    next_result: usize,
    next_arg: usize,
}

impl<'a> FuncPrinter<'a> {
    fn name_arg(&mut self, v: ValueId) -> String {
        let n = format!("%arg{}", self.next_arg);
        self.next_arg += 1;
        self.names.insert(v, n.clone());
        n
    }

    fn name_result(&mut self, v: ValueId) -> String {
        let n = format!("%{}", self.next_result);
        self.next_result += 1;
        self.names.insert(v, n.clone());
        n
    }

    fn name_of(&self, v: ValueId) -> String {
        self.names
            .get(&v)
            .cloned()
            .unwrap_or_else(|| format!("%<undef:{}>", v.index()))
    }

    fn print_region_body(&mut self, region: RegionId, depth: usize, out: &mut String) {
        let ops = self.func.region(region).ops.clone();
        for op in ops {
            self.print_op(op, depth, out);
        }
    }

    fn print_op(&mut self, op_id: OpId, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        let op = self.func.op(op_id).clone();
        out.push_str(&pad);

        // Results.
        if !op.results.is_empty() {
            let names: Vec<String> = op.results.iter().map(|&r| self.name_result(r)).collect();
            write!(out, "{} = ", names.join(", ")).unwrap();
        }

        match &op.kind {
            OpKind::If => {
                write!(out, "scf.if {}", self.name_of(op.operands[0])).unwrap();
                if !op.results.is_empty() {
                    let tys: Vec<String> = op
                        .results
                        .iter()
                        .map(|&r| self.func.value_type(r).to_string())
                        .collect();
                    write!(out, " -> ({})", tys.join(", ")).unwrap();
                }
                out.push_str(" {\n");
                self.print_region_body(op.regions[0], depth + 1, out);
                writeln!(out, "{pad}}} else {{").unwrap();
                self.print_region_body(op.regions[1], depth + 1, out);
                writeln!(out, "{pad}}}").unwrap();
            }
            OpKind::For => {
                let body = op.regions[0];
                let args = self.func.region(body).args.clone();
                let iv = self.name_arg(args[0]);
                write!(
                    out,
                    "scf.for {} = {} to {} step {}",
                    iv,
                    self.name_of(op.operands[0]),
                    self.name_of(op.operands[1]),
                    self.name_of(op.operands[2]),
                )
                .unwrap();
                if args.len() > 1 {
                    out.push_str(" iter_args(");
                    for (i, &a) in args[1..].iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let an = self.name_arg(a);
                        write!(out, "{an} = {}", self.name_of(op.operands[3 + i])).unwrap();
                    }
                    out.push(')');
                    let tys: Vec<String> = op
                        .results
                        .iter()
                        .map(|&r| self.func.value_type(r).to_string())
                        .collect();
                    write!(out, " -> ({})", tys.join(", ")).unwrap();
                }
                out.push_str(" {\n");
                self.print_region_body(body, depth + 1, out);
                writeln!(out, "{pad}}}").unwrap();
            }
            kind => {
                out.push_str(kind.name());
                // Inline payloads and predicates.
                match kind {
                    OpKind::ConstantF(v) => write!(out, " {}", Attr::F64(*v)).unwrap(),
                    OpKind::ConstantInt(v) => write!(out, " {v}").unwrap(),
                    OpKind::ConstantBool(v) => write!(out, " {v}").unwrap(),
                    OpKind::CmpF(p) => write!(out, " {},", p.name()).unwrap(),
                    OpKind::CmpI(p) => write!(out, " {},", p.name()).unwrap(),
                    _ => {}
                }
                // Operands.
                if !op.operands.is_empty() {
                    out.push(' ');
                    let names: Vec<String> = op.operands.iter().map(|&v| self.name_of(v)).collect();
                    out.push_str(&names.join(", "));
                }
                // Attributes.
                if !op.attrs.is_empty() {
                    write!(out, " {}", op.attrs).unwrap();
                }
                // Trailing type: result type, else first-operand type.
                let ty = op
                    .results
                    .first()
                    .map(|&r| self.func.value_type(r))
                    .or_else(|| op.operands.first().map(|&v| self.func.value_type(v)));
                if let Some(ty) = ty {
                    write!(out, " : {ty}").unwrap();
                }
                out.push('\n');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::ops::CmpFPred;
    use crate::types::Type;

    fn demo_module() -> Module {
        let mut m = Module::new("demo");
        m.attrs.set("vector_width", 8i64);
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let vm = b.get_ext("Vm");
        let c = b.const_f(2.0);
        let half = b.divf(vm, c);
        let is_neg = b.cmpf(CmpFPred::Olt, vm, c);
        let sel = b.if_op(
            is_neg,
            &[Type::F64],
            |b| {
                let v = b.negf(half);
                b.yield_(&[v]);
            },
            |b| {
                b.yield_(&[half]);
            },
        );
        b.set_state("u1", sel[0]);
        b.ret(&[]);
        m.add_func(f);
        m
    }

    #[test]
    fn prints_structured_if() {
        let text = print_module(&demo_module());
        assert!(text.contains("scf.if %3 -> (f64) {"));
        assert!(text.contains("} else {"));
        assert!(text.contains("limpet.get_ext {var = \"Vm\"} : f64"));
        assert!(text.contains("limpet.set_state %4 {var = \"u1\"} : f64"));
        assert!(text.contains("func.return"));
    }

    #[test]
    fn prints_module_attrs_and_header() {
        let text = print_module(&demo_module());
        assert!(text.starts_with("module @demo attributes {vector_width = 8} {"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn prints_for_loop() {
        let mut m = Module::new("loops");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let lb = b.const_index(0);
        let ub = b.const_index(3);
        let st = b.const_index(1);
        let x0 = b.const_f(1.0);
        let r = b.for_op(lb, ub, st, &[x0], |b, _iv, iters| {
            let two = b.const_f(2.0);
            let next = b.mulf(iters[0], two);
            b.yield_(&[next]);
        });
        b.set_state("x", r[0]);
        b.ret(&[]);
        m.add_func(f);
        let text = print_module(&m);
        assert!(text.contains("scf.for %arg0 = %0 to %1 step %2 iter_args(%arg1 = %3) -> (f64) {"));
        assert!(text.contains("scf.yield %6 : f64"));
    }

    #[test]
    fn stable_numbering_is_print_order() {
        let text = print_module(&demo_module());
        // First op result must be %0.
        assert!(text.contains("%0 = limpet.get_ext"));
        assert!(text.contains("%1 = arith.constant 2.0 : f64"));
    }

    #[test]
    fn prints_function_signature() {
        let mut m = Module::new("sig");
        let mut f = Func::new("lut_Vm", &[Type::F64], &[Type::F64]);
        let arg = f.args()[0];
        let mut b = Builder::new(&mut f);
        b.ret(&[arg]);
        m.add_func(f);
        let text = print_module(&m);
        assert!(text.contains("func.func @lut_Vm(%arg0: f64) -> (f64) {"));
        assert!(text.contains("func.return %arg0 : f64"));
    }
}
