//! IR containers: modules, functions, regions, operations, and SSA values.
//!
//! Storage is arena-based: a [`Func`] owns three arenas (values, operations,
//! regions) addressed by small copyable ids. Operations live in exactly one
//! region; regions belong to exactly one parent operation, except a
//! function's body region.

use crate::attr::Attrs;
use crate::ops::OpKind;
use crate::types::Type;

/// Identifies an SSA value within one [`Func`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

/// Identifies an operation within one [`Func`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(u32);

/// Identifies a region within one [`Func`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(u32);

impl ValueId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl OpId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl RegionId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where an SSA value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// The `index`-th result of operation `op`.
    OpResult {
        /// Defining operation.
        op: OpId,
        /// Result position.
        index: u32,
    },
    /// The `index`-th argument of region `region` (function arguments are the
    /// body region's arguments).
    RegionArg {
        /// Owning region.
        region: RegionId,
        /// Argument position.
        index: u32,
    },
}

/// Payload of one SSA value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueData {
    /// The value's type.
    pub ty: Type,
    /// Where the value is defined.
    pub def: ValueDef,
}

/// Payload of one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpData {
    /// The instruction kind.
    pub kind: OpKind,
    /// SSA operands.
    pub operands: Vec<ValueId>,
    /// SSA results.
    pub results: Vec<ValueId>,
    /// Attribute dictionary.
    pub attrs: Attrs,
    /// Nested regions (`scf.if` has two, `scf.for` one, others none).
    pub regions: Vec<RegionId>,
}

impl OpData {
    /// First (usually only) result.
    ///
    /// # Panics
    ///
    /// Panics if the op has no results.
    pub fn result(&self) -> ValueId {
        self.results[0]
    }
}

/// Payload of one region: a single block of operations with arguments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegionData {
    /// Block arguments (function args for the body region, `[iv, iters...]`
    /// for `scf.for`).
    pub args: Vec<ValueId>,
    /// Operations in execution order.
    pub ops: Vec<OpId>,
}

/// A function: a named body region with argument and result types.
///
/// # Examples
///
/// ```
/// use limpet_ir::{Func, Type};
/// let f = Func::new("compute", &[Type::F64], &[Type::F64]);
/// assert_eq!(f.name(), "compute");
/// assert_eq!(f.arg_types(), &[Type::F64]);
/// assert_eq!(f.args().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Func {
    name: String,
    arg_types: Vec<Type>,
    result_types: Vec<Type>,
    values: Vec<ValueData>,
    ops: Vec<OpData>,
    regions: Vec<RegionData>,
    body: RegionId,
}

impl Func {
    /// Creates an empty function whose body region has one argument per
    /// entry of `arg_types`.
    pub fn new(name: &str, arg_types: &[Type], result_types: &[Type]) -> Func {
        let mut f = Func {
            name: name.to_owned(),
            arg_types: arg_types.to_vec(),
            result_types: result_types.to_vec(),
            values: Vec::new(),
            ops: Vec::new(),
            regions: Vec::new(),
            body: RegionId(0),
        };
        let body = f.new_region(arg_types);
        f.body = body;
        f
    }

    /// The function's symbol name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Argument types.
    pub fn arg_types(&self) -> &[Type] {
        &self.arg_types
    }

    /// Result types.
    pub fn result_types(&self) -> &[Type] {
        &self.result_types
    }

    /// The body region.
    pub fn body(&self) -> RegionId {
        self.body
    }

    /// The body region's arguments (the function arguments).
    pub fn args(&self) -> &[ValueId] {
        &self.regions[self.body.index()].args
    }

    /// Creates a new region with arguments of the given types.
    pub fn new_region(&mut self, arg_types: &[Type]) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionData::default());
        let args: Vec<ValueId> = arg_types
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                self.new_value(
                    ty,
                    ValueDef::RegionArg {
                        region: id,
                        index: i as u32,
                    },
                )
            })
            .collect();
        self.regions[id.index()].args = args;
        id
    }

    /// Allocates a fresh SSA value.
    pub fn new_value(&mut self, ty: Type, def: ValueDef) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueData { ty, def });
        id
    }

    /// Appends an operation to `region` and returns its id.
    ///
    /// `regions` must have been created beforehand with [`Func::new_region`].
    pub fn push_op(
        &mut self,
        region: RegionId,
        kind: OpKind,
        operands: Vec<ValueId>,
        result_types: &[Type],
        attrs: Attrs,
        regions: Vec<RegionId>,
    ) -> OpId {
        let id = self.make_op(kind, operands, result_types, attrs, regions);
        self.regions[region.index()].ops.push(id);
        id
    }

    /// Inserts an operation at position `at` of `region`'s op list.
    ///
    /// # Panics
    ///
    /// Panics if `at > region.ops.len()`.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_op(
        &mut self,
        region: RegionId,
        at: usize,
        kind: OpKind,
        operands: Vec<ValueId>,
        result_types: &[Type],
        attrs: Attrs,
        regions: Vec<RegionId>,
    ) -> OpId {
        let id = self.make_op(kind, operands, result_types, attrs, regions);
        self.regions[region.index()].ops.insert(at, id);
        id
    }

    fn make_op(
        &mut self,
        kind: OpKind,
        operands: Vec<ValueId>,
        result_types: &[Type],
        attrs: Attrs,
        regions: Vec<RegionId>,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        let results: Vec<ValueId> = result_types
            .iter()
            .enumerate()
            .map(|(i, &ty)| {
                self.new_value(
                    ty,
                    ValueDef::OpResult {
                        op: id,
                        index: i as u32,
                    },
                )
            })
            .collect();
        self.ops.push(OpData {
            kind,
            operands,
            results,
            attrs,
            regions,
        });
        id
    }

    /// Read access to an operation.
    pub fn op(&self, id: OpId) -> &OpData {
        &self.ops[id.index()]
    }

    /// Mutable access to an operation.
    pub fn op_mut(&mut self, id: OpId) -> &mut OpData {
        &mut self.ops[id.index()]
    }

    /// Read access to a region.
    pub fn region(&self, id: RegionId) -> &RegionData {
        &self.regions[id.index()]
    }

    /// Mutable access to a region.
    pub fn region_mut(&mut self, id: RegionId) -> &mut RegionData {
        &mut self.regions[id.index()]
    }

    /// Read access to a value.
    pub fn value(&self, id: ValueId) -> &ValueData {
        &self.values[id.index()]
    }

    /// The type of a value.
    pub fn value_type(&self, id: ValueId) -> Type {
        self.values[id.index()].ty
    }

    /// Changes a value's type in place (used by the vectorizer).
    pub fn set_value_type(&mut self, id: ValueId, ty: Type) {
        self.values[id.index()].ty = ty;
    }

    /// Number of values allocated (including dead ones).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of operations allocated (including erased ones).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Replaces every use of `old` with `new` across all operations.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        for op in &mut self.ops {
            for operand in &mut op.operands {
                if *operand == old {
                    *operand = new;
                }
            }
        }
    }

    /// Removes `op` from `region`'s op list. The op's storage remains in the
    /// arena (ids stay stable) but it will no longer execute or print.
    pub fn erase_op(&mut self, region: RegionId, op: OpId) {
        self.regions[region.index()].ops.retain(|&o| o != op);
    }

    /// Walks all operations reachable from the body region, depth-first,
    /// in execution order, calling `f(region, position, op)`.
    pub fn walk<F: FnMut(RegionId, usize, OpId)>(&self, f: &mut F) {
        self.walk_region(self.body, f);
    }

    fn walk_region<F: FnMut(RegionId, usize, OpId)>(&self, region: RegionId, f: &mut F) {
        // Clone indices to keep borrow local; op lists are small.
        let ops = self.regions[region.index()].ops.clone();
        for (i, op) in ops.into_iter().enumerate() {
            f(region, i, op);
            let nested = self.ops[op.index()].regions.clone();
            for r in nested {
                self.walk_region(r, f);
            }
        }
    }

    /// Collects all `(region, position, op)` triples in walk order.
    pub fn walk_ops(&self) -> Vec<(RegionId, usize, OpId)> {
        let mut out = Vec::new();
        self.walk(&mut |r, i, o| out.push((r, i, o)));
        out
    }

    /// Counts the uses of each value (indexed by [`ValueId::index`]),
    /// considering only operations currently linked into regions.
    pub fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.values.len()];
        self.walk(&mut |_, _, op| {
            for &v in &self.ops[op.index()].operands {
                counts[v.index()] += 1;
            }
        });
        counts
    }
}

/// A lookup table specification (paper §3.4.2).
///
/// Columns are computed by evaluating the module function `func` — which
/// takes the key as its single argument and returns one value per column —
/// over the inclusive range `[lo, hi]` at the given `step`.
#[derive(Debug, Clone, PartialEq)]
pub struct LutSpec {
    /// Table name; conventionally the lookup variable, e.g. `"Vm"`.
    pub name: String,
    /// Lower bound of the tabulated interval.
    pub lo: f64,
    /// Upper bound of the tabulated interval.
    pub hi: f64,
    /// Tabulation step.
    pub step: f64,
    /// Name of the module function that computes all columns from the key.
    pub func: String,
    /// Human-readable column labels.
    pub cols: Vec<String>,
}

impl LutSpec {
    /// Number of rows the tabulated range produces.
    pub fn rows(&self) -> usize {
        if self.step <= 0.0 || self.hi < self.lo {
            return 0;
        }
        ((self.hi - self.lo) / self.step).floor() as usize + 2
    }
}

/// A compilation unit: functions plus lookup-table specifications.
///
/// # Examples
///
/// ```
/// use limpet_ir::{Func, Module};
/// let mut m = Module::new("Pathmanathan");
/// m.add_func(Func::new("compute", &[], &[]));
/// assert!(m.func("compute").is_some());
/// assert_eq!(m.name(), "Pathmanathan");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    name: String,
    funcs: Vec<Func>,
    /// Lookup tables referenced by `lut.col` ops.
    pub luts: Vec<LutSpec>,
    /// Module-level attributes (e.g. `layout`, `vector_width`).
    pub attrs: Attrs,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: &str) -> Module {
        Module {
            name: name.to_owned(),
            funcs: Vec::new(),
            luts: Vec::new(),
            attrs: Attrs::new(),
        }
    }

    /// The module (model) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a function; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn add_func(&mut self, func: Func) -> usize {
        assert!(
            self.func(func.name()).is_none(),
            "duplicate function {:?}",
            func.name()
        );
        self.funcs.push(func);
        self.funcs.len() - 1
    }

    /// Looks up a function by name.
    pub fn func(&self, name: &str) -> Option<&Func> {
        self.funcs.iter().find(|f| f.name() == name)
    }

    /// Mutable lookup by name.
    pub fn func_mut(&mut self, name: &str) -> Option<&mut Func> {
        self.funcs.iter_mut().find(|f| f.name() == name)
    }

    /// All functions in insertion order.
    pub fn funcs(&self) -> &[Func] {
        &self.funcs
    }

    /// Mutable access to all functions.
    pub fn funcs_mut(&mut self) -> &mut [Func] {
        &mut self.funcs
    }

    /// Looks up a LUT spec by table name.
    pub fn lut(&self, name: &str) -> Option<&LutSpec> {
        self.luts.iter().find(|l| l.name == name)
    }

    /// Histogram of operation names across all functions, e.g.
    /// `{"arith.addf": 12, "math.exp": 3, ...}` — the per-dialect op mix
    /// used in compiler statistics.
    pub fn op_histogram(&self) -> std::collections::BTreeMap<String, usize> {
        let mut hist = std::collections::BTreeMap::new();
        for f in &self.funcs {
            for (_, _, op) in f.walk_ops() {
                *hist.entry(f.op(op).kind.name().to_owned()).or_insert(0) += 1;
            }
        }
        hist
    }

    /// Total operation count across all functions.
    pub fn op_count(&self) -> usize {
        self.funcs.iter().map(|f| f.walk_ops().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpKind;

    #[test]
    fn build_simple_function() {
        let mut f = Func::new("f", &[Type::F64], &[Type::F64]);
        let body = f.body();
        let arg = f.args()[0];
        let c = f.push_op(
            body,
            OpKind::ConstantF(2.0),
            vec![],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        let cval = f.op(c).result();
        let mul = f.push_op(
            body,
            OpKind::MulF,
            vec![arg, cval],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        let mval = f.op(mul).result();
        f.push_op(body, OpKind::Return, vec![mval], &[], Attrs::new(), vec![]);

        assert_eq!(f.region(body).ops.len(), 3);
        assert_eq!(f.value_type(mval), Type::F64);
        assert_eq!(f.op(mul).operands, vec![arg, cval]);
    }

    #[test]
    fn replace_all_uses() {
        let mut f = Func::new("f", &[Type::F64, Type::F64], &[]);
        let body = f.body();
        let (a, b) = (f.args()[0], f.args()[1]);
        let add = f.push_op(
            body,
            OpKind::AddF,
            vec![a, a],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        f.replace_all_uses(a, b);
        assert_eq!(f.op(add).operands, vec![b, b]);
    }

    #[test]
    fn erase_op_unlinks() {
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        let c = f.push_op(
            body,
            OpKind::ConstantF(1.0),
            vec![],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        assert_eq!(f.region(body).ops.len(), 1);
        f.erase_op(body, c);
        assert!(f.region(body).ops.is_empty());
        // Arena storage still there; ids remain valid.
        assert_eq!(f.op(c).kind, OpKind::ConstantF(1.0));
    }

    #[test]
    fn walk_descends_into_regions() {
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        let c = f.push_op(
            body,
            OpKind::ConstantBool(true),
            vec![],
            &[Type::I1],
            Attrs::new(),
            vec![],
        );
        let cond = f.op(c).result();
        let then_r = f.new_region(&[]);
        let else_r = f.new_region(&[]);
        let k1 = f.push_op(
            then_r,
            OpKind::ConstantF(1.0),
            vec![],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        let v1 = f.op(k1).result();
        f.push_op(then_r, OpKind::Yield, vec![v1], &[], Attrs::new(), vec![]);
        let k2 = f.push_op(
            else_r,
            OpKind::ConstantF(2.0),
            vec![],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        let v2 = f.op(k2).result();
        f.push_op(else_r, OpKind::Yield, vec![v2], &[], Attrs::new(), vec![]);
        f.push_op(
            body,
            OpKind::If,
            vec![cond],
            &[Type::F64],
            Attrs::new(),
            vec![then_r, else_r],
        );

        let walked = f.walk_ops();
        assert_eq!(walked.len(), 6); // const, then{const,yield}, else{const,yield}... plus if
        let kinds: Vec<&str> = walked
            .iter()
            .map(|&(_, _, o)| f.op(o).kind.name())
            .collect();
        assert!(kinds.contains(&"scf.if"));
        assert!(kinds.contains(&"scf.yield"));
    }

    #[test]
    fn use_counts_only_linked_ops() {
        let mut f = Func::new("f", &[Type::F64], &[]);
        let body = f.body();
        let a = f.args()[0];
        let add = f.push_op(
            body,
            OpKind::AddF,
            vec![a, a],
            &[Type::F64],
            Attrs::new(),
            vec![],
        );
        assert_eq!(f.use_counts()[a.index()], 2);
        f.erase_op(body, add);
        assert_eq!(f.use_counts()[a.index()], 0);
    }

    #[test]
    fn module_func_lookup() {
        let mut m = Module::new("test");
        m.add_func(Func::new("a", &[], &[]));
        m.add_func(Func::new("b", &[], &[]));
        assert!(m.func("a").is_some());
        assert!(m.func("c").is_none());
        assert_eq!(m.funcs().len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut m = Module::new("test");
        m.add_func(Func::new("a", &[], &[]));
        m.add_func(Func::new("a", &[], &[]));
    }

    #[test]
    fn op_histogram_counts_by_name() {
        let mut m = Module::new("t");
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        for _ in 0..3 {
            f.push_op(
                body,
                OpKind::ConstantF(1.0),
                vec![],
                &[Type::F64],
                Attrs::new(),
                vec![],
            );
        }
        f.push_op(body, OpKind::Return, vec![], &[], Attrs::new(), vec![]);
        m.add_func(f);
        let h = m.op_histogram();
        assert_eq!(h["arith.constant"], 3);
        assert_eq!(h["func.return"], 1);
        assert_eq!(m.op_count(), 4);
    }

    #[test]
    fn lut_rows() {
        let l = LutSpec {
            name: "Vm".into(),
            lo: -100.0,
            hi: 100.0,
            step: 0.05,
            func: "lut_Vm".into(),
            cols: vec!["e1".into()],
        };
        assert_eq!(l.rows(), 4002);
        let bad = LutSpec { step: 0.0, ..l };
        assert_eq!(bad.rows(), 0);
    }
}
