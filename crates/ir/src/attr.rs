//! Operation attributes.
//!
//! Attributes are compile-time constants attached to operations, mirroring
//! MLIR's attribute dictionary (`{key = value}`).

use crate::types::Type;
use std::fmt;

/// A single attribute value.
///
/// # Examples
///
/// ```
/// use limpet_ir::Attr;
/// let a = Attr::F64(2.5);
/// assert_eq!(a.as_f64(), Some(2.5));
/// assert_eq!(a.to_string(), "2.5");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Attr {
    /// A floating-point constant.
    F64(f64),
    /// An integer constant.
    I64(i64),
    /// A boolean constant.
    Bool(bool),
    /// A string, printed quoted.
    Str(String),
    /// A type attribute.
    Ty(Type),
}

impl Attr {
    /// Extracts the `f64` payload, if this is [`Attr::F64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Attr::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts the `i64` payload, if this is [`Attr::I64`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Attr::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts the `bool` payload, if this is [`Attr::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attr::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts the string payload, if this is [`Attr::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attr::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts the type payload, if this is [`Attr::Ty`].
    pub fn as_type(&self) -> Option<Type> {
        match self {
            Attr::Ty(t) => Some(*t),
            _ => None,
        }
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attr::F64(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    // Keep integral floats distinguishable from Attr::I64.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Attr::I64(v) => write!(f, "{v}"),
            Attr::Bool(v) => write!(f, "{v}"),
            Attr::Str(s) => write!(f, "{s:?}"),
            Attr::Ty(t) => write!(f, "{t}"),
        }
    }
}

impl From<f64> for Attr {
    fn from(v: f64) -> Attr {
        Attr::F64(v)
    }
}
impl From<i64> for Attr {
    fn from(v: i64) -> Attr {
        Attr::I64(v)
    }
}
impl From<bool> for Attr {
    fn from(v: bool) -> Attr {
        Attr::Bool(v)
    }
}
impl From<&str> for Attr {
    fn from(v: &str) -> Attr {
        Attr::Str(v.to_owned())
    }
}
impl From<String> for Attr {
    fn from(v: String) -> Attr {
        Attr::Str(v)
    }
}
impl From<Type> for Attr {
    fn from(v: Type) -> Attr {
        Attr::Ty(v)
    }
}

/// An ordered key → value attribute dictionary.
///
/// Kept as a sorted `Vec` (operations carry few attributes) so that printing
/// is deterministic.
///
/// # Examples
///
/// ```
/// use limpet_ir::{Attr, Attrs};
/// let mut attrs = Attrs::new();
/// attrs.set("var", "u1");
/// attrs.set("step", 0.05);
/// assert_eq!(attrs.get("var").and_then(Attr::as_str), Some("u1"));
/// assert_eq!(attrs.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Attrs {
    entries: Vec<(String, Attr)>,
}

impl Attrs {
    /// Creates an empty dictionary.
    pub fn new() -> Attrs {
        Attrs::default()
    }

    /// Inserts or replaces `key`, keeping entries sorted by key.
    pub fn set(&mut self, key: &str, value: impl Into<Attr>) -> &mut Attrs {
        let value = value.into();
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (key.to_owned(), value)),
        }
        self
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Attr> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Convenience accessor for string attributes.
    pub fn str_of(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Attr::as_str)
    }

    /// Convenience accessor for integer attributes.
    pub fn i64_of(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Attr::as_i64)
    }

    /// Convenience accessor for float attributes.
    pub fn f64_of(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Attr::as_f64)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Attr)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl fmt::Display for Attrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(String, Attr)> for Attrs {
    fn from_iter<I: IntoIterator<Item = (String, Attr)>>(iter: I) -> Attrs {
        let mut attrs = Attrs::new();
        for (k, v) in iter {
            attrs.set(&k, v);
        }
        attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_replace() {
        let mut a = Attrs::new();
        a.set("b", 1i64).set("a", 2i64).set("b", 3i64);
        assert_eq!(a.len(), 2);
        assert_eq!(a.i64_of("a"), Some(2));
        assert_eq!(a.i64_of("b"), Some(3));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn sorted_display() {
        let mut a = Attrs::new();
        a.set("z", true).set("a", "hi");
        assert_eq!(a.to_string(), "{a = \"hi\", z = true}");
    }

    #[test]
    fn accessors() {
        let mut a = Attrs::new();
        a.set("f", 1.5)
            .set("i", 7i64)
            .set("s", "x")
            .set("t", Type::F64);
        assert_eq!(a.f64_of("f"), Some(1.5));
        assert_eq!(a.i64_of("i"), Some(7));
        assert_eq!(a.str_of("s"), Some("x"));
        assert_eq!(a.get("t").and_then(Attr::as_type), Some(Type::F64));
        assert_eq!(a.f64_of("i"), None);
    }

    #[test]
    fn float_attr_display_keeps_decimal_point() {
        assert_eq!(Attr::F64(2.0).to_string(), "2.0");
        assert_eq!(Attr::F64(0.05).to_string(), "0.05");
        assert_eq!(Attr::I64(2).to_string(), "2");
    }

    #[test]
    fn from_iterator() {
        let a: Attrs = vec![("k".to_owned(), Attr::I64(1))].into_iter().collect();
        assert_eq!(a.i64_of("k"), Some(1));
    }
}
