//! Property test: printing a randomly generated module and parsing it back
//! yields a module that prints identically (print∘parse fixpoint), verifies,
//! and has the same op count.

use limpet_ir::{
    parse_module, print_module, verify_module, Builder, CmpFPred, Func, LutSpec, MathFn, Module,
    Type, ValueId,
};
use proptest::prelude::*;

/// A recipe for one generated operation.
#[derive(Debug, Clone)]
enum OpRecipe {
    ConstF(f64),
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Min,
    Max,
    Math(u8),
    GetState(u8),
    SetState(u8),
    GetExt(u8),
    Param(u8),
    LutCol,
    If(Vec<OpRecipe>, Vec<OpRecipe>),
    For(u8, Vec<OpRecipe>),
    Cmp(u8),
    Select,
}

fn leaf_recipe() -> impl Strategy<Value = OpRecipe> {
    prop_oneof![
        (-1e6f64..1e6f64).prop_map(OpRecipe::ConstF),
        Just(OpRecipe::Add),
        Just(OpRecipe::Sub),
        Just(OpRecipe::Mul),
        Just(OpRecipe::Div),
        Just(OpRecipe::Neg),
        Just(OpRecipe::Min),
        Just(OpRecipe::Max),
        (0u8..24).prop_map(OpRecipe::Math),
        (0u8..4).prop_map(OpRecipe::GetState),
        (0u8..4).prop_map(OpRecipe::SetState),
        (0u8..2).prop_map(OpRecipe::GetExt),
        (0u8..3).prop_map(OpRecipe::Param),
        Just(OpRecipe::LutCol),
        (0u8..6).prop_map(OpRecipe::Cmp),
        Just(OpRecipe::Select),
    ]
}

fn recipe() -> impl Strategy<Value = OpRecipe> {
    leaf_recipe().prop_recursive(2, 24, 6, |inner| {
        prop_oneof![
            (
                prop::collection::vec(inner.clone(), 1..4),
                prop::collection::vec(inner.clone(), 1..4)
            )
                .prop_map(|(t, e)| OpRecipe::If(t, e)),
            ((1u8..4), prop::collection::vec(inner, 1..4)).prop_map(|(n, b)| OpRecipe::For(n, b)),
        ]
    })
}

const STATE_VARS: [&str; 4] = ["u1", "u2", "u3", "m_gate"];
const EXT_VARS: [&str; 2] = ["Vm", "Iion"];
const PARAMS: [&str; 3] = ["Cm", "beta", "xi"];

/// Builds ops from recipes; maintains a stack of available f64 values and a
/// stack of i1 values so every generated program is verifier-valid.
fn build(
    b: &mut Builder<'_>,
    recipes: &[OpRecipe],
    floats: &mut Vec<ValueId>,
    bools: &mut Vec<ValueId>,
) {
    for r in recipes {
        match r {
            OpRecipe::ConstF(v) => floats.push(b.const_f(*v)),
            OpRecipe::Add
            | OpRecipe::Sub
            | OpRecipe::Mul
            | OpRecipe::Div
            | OpRecipe::Min
            | OpRecipe::Max => {
                if floats.len() >= 2 {
                    let y = floats.pop().unwrap();
                    let x = *floats.last().unwrap();
                    let v = match r {
                        OpRecipe::Add => b.addf(x, y),
                        OpRecipe::Sub => b.subf(x, y),
                        OpRecipe::Mul => b.mulf(x, y),
                        OpRecipe::Div => b.divf(x, y),
                        OpRecipe::Min => b.minf(x, y),
                        _ => b.maxf(x, y),
                    };
                    floats.push(v);
                }
            }
            OpRecipe::Neg => {
                if let Some(&x) = floats.last() {
                    let v = b.negf(x);
                    floats.push(v);
                }
            }
            OpRecipe::Math(i) => {
                let f = MathFn::ALL[*i as usize % MathFn::ALL.len()];
                if f.arity() == 1 {
                    if let Some(&x) = floats.last() {
                        let v = b.math1(f, x);
                        floats.push(v);
                    }
                } else if floats.len() >= 2 {
                    let y = floats.pop().unwrap();
                    let x = *floats.last().unwrap();
                    let v = b.math2(f, x, y);
                    floats.push(v);
                }
            }
            OpRecipe::GetState(i) => {
                floats.push(b.get_state(STATE_VARS[*i as usize % STATE_VARS.len()]))
            }
            OpRecipe::SetState(i) => {
                if let Some(&x) = floats.last() {
                    b.set_state(STATE_VARS[*i as usize % STATE_VARS.len()], x);
                }
            }
            OpRecipe::GetExt(i) => floats.push(b.get_ext(EXT_VARS[*i as usize % EXT_VARS.len()])),
            OpRecipe::Param(i) => floats.push(b.param(PARAMS[*i as usize % PARAMS.len()])),
            OpRecipe::LutCol => {
                if let Some(&x) = floats.last() {
                    let v = b.lut_col("Vm", 0, x);
                    floats.push(v);
                }
            }
            OpRecipe::Cmp(i) => {
                if floats.len() >= 2 {
                    let preds = [
                        CmpFPred::Oeq,
                        CmpFPred::One,
                        CmpFPred::Olt,
                        CmpFPred::Ole,
                        CmpFPred::Ogt,
                        CmpFPred::Oge,
                    ];
                    let y = floats[floats.len() - 1];
                    let x = floats[floats.len() - 2];
                    bools.push(b.cmpf(preds[*i as usize % 6], x, y));
                }
            }
            OpRecipe::Select => {
                if floats.len() >= 2 && !bools.is_empty() {
                    let c = *bools.last().unwrap();
                    let y = floats.pop().unwrap();
                    let x = *floats.last().unwrap();
                    let v = b.select(c, x, y);
                    floats.push(v);
                }
            }
            OpRecipe::If(then_r, else_r) => {
                if let Some(&c) = bools.last() {
                    // Yield one float from each branch.
                    let seed = match floats.last() {
                        Some(&v) => v,
                        None => {
                            let v = b.const_f(0.0);
                            floats.push(v);
                            v
                        }
                    };
                    let res = b.if_op(
                        c,
                        &[Type::F64],
                        |b| {
                            let mut fs = vec![seed];
                            let mut bs = vec![];
                            build(b, then_r, &mut fs, &mut bs);
                            let last = *fs.last().unwrap();
                            b.yield_(&[last]);
                        },
                        |b| {
                            let mut fs = vec![seed];
                            let mut bs = vec![];
                            build(b, else_r, &mut fs, &mut bs);
                            let last = *fs.last().unwrap();
                            b.yield_(&[last]);
                        },
                    );
                    floats.push(res[0]);
                }
            }
            OpRecipe::For(n, body) => {
                let seed = match floats.last() {
                    Some(&v) => v,
                    None => {
                        let v = b.const_f(0.0);
                        floats.push(v);
                        v
                    }
                };
                let lb = b.const_index(0);
                let ub = b.const_index(*n as i64);
                let st = b.const_index(1);
                let res = b.for_op(lb, ub, st, &[seed], |b, _iv, iters| {
                    let mut fs = vec![iters[0]];
                    let mut bs = vec![];
                    build(b, body, &mut fs, &mut bs);
                    let last = *fs.last().unwrap();
                    b.yield_(&[last]);
                });
                floats.push(res[0]);
            }
        }
    }
}

fn module_from(recipes: &[OpRecipe]) -> Module {
    let mut m = Module::new("prop");
    // LUT table + its column function so lut.col verifies.
    let mut lf = Func::new("lut_Vm", &[Type::F64], &[Type::F64]);
    let arg = lf.args()[0];
    let mut lb = Builder::new(&mut lf);
    let e = lb.exp(arg);
    lb.ret(&[e]);
    m.add_func(lf);
    m.luts.push(LutSpec {
        name: "Vm".into(),
        lo: -100.0,
        hi: 100.0,
        step: 0.5,
        func: "lut_Vm".into(),
        cols: vec!["e0".into()],
    });

    let mut f = Func::new("compute", &[], &[]);
    let mut b = Builder::new(&mut f);
    let mut floats = Vec::new();
    let mut bools = Vec::new();
    build(&mut b, recipes, &mut floats, &mut bools);
    b.ret(&[]);
    m.add_func(f);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn print_parse_print_fixpoint(recipes in prop::collection::vec(recipe(), 0..40)) {
        let m = module_from(&recipes);
        verify_module(&m).expect("generated module must verify");
        let text = print_module(&m);
        let reparsed = parse_module(&text).expect("printer output must parse");
        verify_module(&reparsed).expect("reparsed module must verify");
        let text2 = print_module(&reparsed);
        prop_assert_eq!(&text, &text2);
        // Same structural op counts.
        let count = |m: &Module| -> usize {
            m.funcs().iter().map(|f| f.walk_ops().len()).sum()
        };
        prop_assert_eq!(count(&m), count(&reparsed));
    }
}
