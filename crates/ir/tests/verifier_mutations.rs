//! Verifier robustness: structurally *broken* modules must be rejected.
//!
//! Starting from a known-valid kernel, each mutation introduces a distinct
//! class of invalidity; the verifier must catch every one. This guards the
//! passes: any rewrite that corrupts the IR in one of these ways is
//! detected by the `verify_module` calls the test suites run after each
//! pipeline.

use limpet_ir::{verify_module, Attrs, Builder, CmpFPred, Func, Module, OpKind, Type, ValueId};

/// A valid module with arithmetic, an if, a loop, and state access.
fn valid_module() -> (Module, Vec<ValueId>) {
    let mut m = Module::new("m");
    let mut f = Func::new("compute", &[], &[]);
    let mut b = Builder::new(&mut f);
    let x = b.get_state("x");
    let two = b.const_f(2.0);
    let y = b.mulf(x, two);
    let z = b.const_f(0.0);
    let c = b.cmpf(CmpFPred::Ogt, y, z);
    let sel = b.if_op(
        c,
        &[Type::F64],
        |bb| {
            let e = bb.exp(y);
            bb.yield_(&[e]);
        },
        |bb| {
            bb.yield_(&[y]);
        },
    );
    let lb = b.const_index(0);
    let ub = b.const_index(3);
    let st = b.const_index(1);
    let looped = b.for_op(lb, ub, st, &[sel[0]], |bb, _iv, iters| {
        let h = bb.const_f(0.5);
        let n = bb.mulf(iters[0], h);
        bb.yield_(&[n]);
    });
    b.set_state("x", looped[0]);
    b.ret(&[]);
    m.add_func(f);
    let values = vec![x, two, y, c];
    (m, values)
}

#[test]
fn baseline_is_valid() {
    let (m, _) = valid_module();
    verify_module(&m).unwrap();
}

#[test]
fn rejects_type_mismatched_operand() {
    let (mut m, vals) = valid_module();
    let f = m.func_mut("compute").unwrap();
    // Make mulf consume the i1 comparison result: type error.
    let target = f
        .walk_ops()
        .into_iter()
        .find(|&(_, _, op)| f.op(op).kind == OpKind::MulF)
        .unwrap()
        .2;
    f.op_mut(target).operands[1] = vals[3]; // the i1 value
    assert!(verify_module(&m).is_err());
}

#[test]
fn rejects_use_before_def() {
    let (mut m, _) = valid_module();
    let f = m.func_mut("compute").unwrap();
    let body = f.body();
    // Move the first op (get_state) to the end, after its uses.
    let ops = &mut f.region_mut(body).ops;
    let first = ops.remove(0);
    let len = ops.len();
    ops.insert(len - 1, first);
    assert!(verify_module(&m).is_err());
}

#[test]
fn rejects_removed_region_terminator() {
    let (mut m, _) = valid_module();
    let f = m.func_mut("compute").unwrap();
    // Find the if's then-region and pop its yield.
    let if_op = f
        .walk_ops()
        .into_iter()
        .find(|&(_, _, op)| f.op(op).kind == OpKind::If)
        .unwrap()
        .2;
    let then_r = f.op(if_op).regions[0];
    f.region_mut(then_r).ops.pop();
    assert!(verify_module(&m).is_err());
}

#[test]
fn rejects_yield_arity_change() {
    let (mut m, _) = valid_module();
    let f = m.func_mut("compute").unwrap();
    let if_op = f
        .walk_ops()
        .into_iter()
        .find(|&(_, _, op)| f.op(op).kind == OpKind::If)
        .unwrap()
        .2;
    let then_r = f.op(if_op).regions[0];
    let yield_op = *f.region(then_r).ops.last().unwrap();
    f.op_mut(yield_op).operands.clear();
    assert!(verify_module(&m).is_err());
}

#[test]
fn rejects_cross_region_escape() {
    let (mut m, _) = valid_module();
    let f = m.func_mut("compute").unwrap();
    // Use a value defined inside the if's then-region from the body.
    let if_op = f
        .walk_ops()
        .into_iter()
        .find(|&(_, _, op)| f.op(op).kind == OpKind::If)
        .unwrap()
        .2;
    let then_r = f.op(if_op).regions[0];
    let inner_val = f.op(f.region(then_r).ops[0]).result();
    let store = f
        .walk_ops()
        .into_iter()
        .find(|&(_, _, op)| f.op(op).kind == OpKind::SetState)
        .unwrap()
        .2;
    f.op_mut(store).operands[0] = inner_val;
    assert!(
        verify_module(&m).is_err(),
        "region-local value used outside its region must be rejected"
    );
}

#[test]
fn rejects_missing_var_attribute() {
    let (mut m, _) = valid_module();
    let f = m.func_mut("compute").unwrap();
    let store = f
        .walk_ops()
        .into_iter()
        .find(|&(_, _, op)| f.op(op).kind == OpKind::SetState)
        .unwrap()
        .2;
    f.op_mut(store).attrs = Attrs::new();
    assert!(verify_module(&m).is_err());
}

#[test]
fn rejects_for_with_float_bounds() {
    let (mut m, _) = valid_module();
    let f = m.func_mut("compute").unwrap();
    let for_op = f
        .walk_ops()
        .into_iter()
        .find(|&(_, _, op)| f.op(op).kind == OpKind::For)
        .unwrap()
        .2;
    // Replace the lower bound with an f64 value.
    let some_float = f
        .walk_ops()
        .into_iter()
        .find(|&(_, _, op)| matches!(f.op(op).kind, OpKind::ConstantF(_)))
        .map(|(_, _, op)| f.op(op).result())
        .unwrap();
    f.op_mut(for_op).operands[0] = some_float;
    assert!(verify_module(&m).is_err());
}

#[test]
fn rejects_lut_col_against_missing_table() {
    let (mut m, vals) = valid_module();
    let f = m.func_mut("compute").unwrap();
    let body = f.body();
    let mut attrs = Attrs::new();
    attrs.set("table", "NoSuchTable");
    attrs.set("col", 0i64);
    f.insert_op(
        body,
        0,
        OpKind::LutCol,
        vec![vals[0]],
        &[Type::F64],
        attrs,
        vec![],
    );
    // vals[0] is defined by op 0 originally; after insertion at 0 the
    // lut.col reads it before definition — either error is acceptable,
    // but an error there must be.
    assert!(verify_module(&m).is_err());
}

/// Every mutation the optimization passes could plausibly make when buggy
/// (operand swap within same type) keeps the module valid — the verifier
/// checks *structure*, not semantics.
#[test]
fn same_type_operand_swap_remains_structurally_valid() {
    let (mut m, _) = valid_module();
    let f = m.func_mut("compute").unwrap();
    let target = f
        .walk_ops()
        .into_iter()
        .find(|&(_, _, op)| f.op(op).kind == OpKind::MulF)
        .unwrap()
        .2;
    f.op_mut(target).operands.swap(0, 1);
    verify_module(&m).unwrap();
}
