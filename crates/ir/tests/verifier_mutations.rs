//! Verifier robustness: structurally *broken* modules must be rejected.
//!
//! The corpus — a known-valid kernel plus one mutation per class of
//! invalidity — lives in `limpet_ir::testing` and is shared with the
//! pass-manager's verify-instrumentation test (which additionally asserts
//! the failure is *attributed* to the pass that introduced it). Here the
//! verifier itself is on trial: it must catch every mutation. This guards
//! the passes: any rewrite that corrupts the IR in one of these ways is
//! detected by the `verify_module` calls the test suites run after each
//! pipeline.

use limpet_ir::testing::{corpus_module, mutations};
use limpet_ir::{verify_module, OpKind};

#[test]
fn baseline_is_valid() {
    let (m, _) = corpus_module();
    verify_module(&m).unwrap();
}

#[test]
fn rejects_every_corpus_mutation() {
    for mutation in mutations() {
        let (mut m, vals) = corpus_module();
        (mutation.apply)(&mut m, &vals);
        assert!(
            verify_module(&m).is_err(),
            "mutation '{}' was not rejected",
            mutation.name
        );
    }
}

/// Every mutation the optimization passes could plausibly make when buggy
/// (operand swap within same type) keeps the module valid — the verifier
/// checks *structure*, not semantics.
#[test]
fn same_type_operand_swap_remains_structurally_valid() {
    let (mut m, _) = corpus_module();
    let f = m.func_mut("compute").unwrap();
    let target = f
        .walk_ops()
        .into_iter()
        .find(|&(_, _, op)| f.op(op).kind == OpKind::MulF)
        .unwrap()
        .2;
    f.op_mut(target).operands.swap(0, 1);
    verify_module(&m).unwrap();
}
