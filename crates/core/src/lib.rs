//! # limpet — MLIR-style optimizing code generation for cardiac ionic models
//!
//! A from-scratch Rust reproduction of **limpetMLIR** (Thangamani, Trevisan
//! Jost, Loechner, Genaud, Bramas: *Lifting Code Generation of Cardiac
//! Physiology Simulation to Novel Compiler Technology*, CGO 2023): a
//! compiler that lifts ionic-model descriptions written in the EasyML DSL
//! through a multi-dialect SSA IR into fully vectorized compute kernels,
//! outperforming openCARP's naive scalar translation.
//!
//! This crate is the facade: it re-exports the subsystem crates and offers
//! the high-level [`Compiler`] entry point.
//!
//! | layer | crate |
//! |---|---|
//! | EasyML frontend | [`easyml`] ([`limpet_easyml`]) |
//! | mlir-lite IR | [`ir`] ([`limpet_ir`]) |
//! | transformation passes | [`passes`] ([`limpet_passes`]) |
//! | code generation & pipelines | [`codegen`] ([`limpet_codegen`]) |
//! | bytecode VM + SIMD emulation | [`vm`] ([`limpet_vm`]) |
//! | 43-model suite | [`models`] ([`limpet_models`]) |
//! | linear solvers / monodomain | [`solver`] ([`limpet_solver`]) |
//! | experiment harness | [`harness`] ([`limpet_harness`]) |
//!
//! # Examples
//!
//! Compile an ionic model and run a short simulation:
//!
//! ```
//! use limpet::{Compiler, Isa};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//!     Vm; .external(); .lookup(-100, 100, 0.05);
//!     Iion; .external();
//!     group{ g = 0.3; }.param();
//!     diff_n = (n_inf - n) / 5.0;
//!     n_inf = 1.0 / (1.0 + exp(-(Vm + 30.0) / 10.0));
//!     n_init = 0.1;
//!     n;.method(rush_larsen);
//!     Iion = g * n * (Vm + 85.0);
//! ";
//! let compiled = Compiler::new().isa(Isa::Avx512).compile("demo", src)?;
//! let mut sim = compiled.simulation(256, 0.01);
//! sim.run(100);
//! assert!(sim.vm(0).is_finite());
//! println!("{}", compiled.ir_text());   // MLIR-style textual IR
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use limpet_codegen as codegen;
pub use limpet_easyml as easyml;
pub use limpet_harness as harness;
pub use limpet_ir as ir;
pub use limpet_models as models;
pub use limpet_passes as passes;
pub use limpet_solver as solver;
pub use limpet_vm as vm;

use limpet_codegen::pipeline::VectorIsa;
use limpet_easyml::Model;
use limpet_harness::{CompiledKernel, KernelCache, PipelineKind, Simulation, Workload};
use limpet_ir::Module;
use limpet_passes::RunReport;
use std::fmt;
use std::sync::Arc;

/// Target vector instruction set (paper §4 evaluates SSE/AVX2/AVX-512).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Isa {
    /// Scalar baseline (openCARP limpetC++-style code generation).
    Scalar,
    /// SSE: 2 × f64.
    Sse,
    /// AVX2: 4 × f64.
    Avx2,
    /// AVX-512: 8 × f64 (the paper's headline configuration).
    #[default]
    Avx512,
}

impl Isa {
    fn vector_isa(self) -> Option<VectorIsa> {
        match self {
            Isa::Scalar => None,
            Isa::Sse => Some(VectorIsa::Sse),
            Isa::Avx2 => Some(VectorIsa::Avx2),
            Isa::Avx512 => Some(VectorIsa::Avx512),
        }
    }
}

/// Errors from the high-level API.
#[derive(Debug)]
pub enum CompileError {
    /// The EasyML source failed to parse or analyze.
    Frontend(Box<dyn std::error::Error>),
    /// The generated module failed verification (a compiler bug).
    Verify(limpet_ir::VerifyError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Frontend(e) => write!(f, "frontend error: {e}"),
            CompileError::Verify(e) => write!(f, "verification error: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// High-level compiler entry point: EasyML source → optimized, executable
/// kernel.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Default)]
pub struct Compiler {
    isa: Isa,
    aos_layout: bool,
    disable_lut: bool,
}

impl Compiler {
    /// Creates a compiler with the default (AVX-512, AoSoA, LUT-enabled)
    /// configuration.
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// Selects the target ISA ([`Isa::Scalar`] produces the openCARP-style
    /// baseline).
    pub fn isa(mut self, isa: Isa) -> Compiler {
        self.isa = isa;
        self
    }

    /// Disables the AoSoA data-layout transformation (paper §3.4.1).
    pub fn without_layout_transform(mut self) -> Compiler {
        self.aos_layout = true;
        self
    }

    /// Disables lookup tables (paper §3.4.2).
    pub fn without_lut(mut self) -> Compiler {
        self.disable_lut = true;
        self
    }

    /// Compiles an EasyML source string.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Frontend`] for malformed models.
    pub fn compile(&self, name: &str, source: &str) -> Result<Compiled, CompileError> {
        let model = limpet_easyml::compile_model(name, source).map_err(CompileError::Frontend)?;
        self.compile_model(model)
    }

    /// Compiles an already-analyzed model.
    ///
    /// Compilation goes through the process-wide
    /// [`limpet_harness::KernelCache`]: the first compile of a
    /// `(model, configuration)` pair lowers, optimizes, and
    /// bytecode-compiles; every later compile of the same pair (from this
    /// facade or from [`limpet_harness::Simulation::new`]) shares that
    /// entry. The per-pass timing of the cold compile is available via
    /// [`Compiled::pass_report`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Verify`] if the generated IR fails
    /// verification.
    pub fn compile_model(&self, model: Model) -> Result<Compiled, CompileError> {
        let kind = match self.isa.vector_isa() {
            None => PipelineKind::Baseline,
            Some(isa) => {
                if self.disable_lut {
                    PipelineKind::LimpetMlirNoLut(isa)
                } else if self.aos_layout {
                    PipelineKind::LimpetMlirAos(isa)
                } else {
                    PipelineKind::LimpetMlir(isa)
                }
            }
        };
        let entry = KernelCache::global().get_or_compile(&model, kind);
        limpet_ir::verify_module(entry.module()).map_err(CompileError::Verify)?;
        Ok(Compiled { model, kind, entry })
    }
}

/// A compiled model: the checked frontend model plus a shared
/// [`KernelCache`] entry holding the optimized IR module and the
/// executable kernel — repeated [`Compiled::kernel`] /
/// [`Compiled::simulation`] calls (and clones of this value) all share
/// one compilation instead of re-lowering per call.
#[derive(Debug, Clone)]
pub struct Compiled {
    model: Model,
    kind: PipelineKind,
    entry: Arc<CompiledKernel>,
}

impl Compiled {
    /// The analyzed frontend model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The optimized IR module.
    pub fn module(&self) -> &Module {
        self.entry.module()
    }

    /// The pipeline configuration this model was compiled under.
    pub fn pipeline_kind(&self) -> PipelineKind {
        self.kind
    }

    /// The pass manager's execution report for the cold compile that
    /// produced this kernel: one entry per pipeline pass with wall time
    /// and counters (`report.timing_table()` renders it like
    /// `mlir-opt -mlir-timing`). Cache hits reuse the entry, so the
    /// report always describes the compile that actually ran.
    pub fn pass_report(&self) -> &RunReport {
        self.entry.pass_report()
    }

    /// The MLIR-style textual IR (parseable by [`limpet_ir::parse_module`]).
    pub fn ir_text(&self) -> String {
        limpet_ir::print_module(self.entry.module())
    }

    /// The executable kernel bound to this model's storage shape.
    ///
    /// A cheap clone of the cached compilation (programs and LUTs live
    /// behind `Arc`), so repeated calls share one compilation.
    pub fn kernel(&self) -> limpet_vm::Kernel {
        self.entry.kernel().clone()
    }

    /// Creates a ready-to-run simulation over `n_cells` cells, reusing
    /// this compilation (no re-lowering).
    pub fn simulation(&self, n_cells: usize, dt: f64) -> Simulation {
        let wl = Workload {
            n_cells,
            steps: 0,
            dt,
        };
        Simulation::with_kernel(self.kernel(), self.entry.layout(), &wl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
Vm; .external(); .lookup(-100, 100, 0.1);
Iion; .external();
diff_x = (1.0 / (1.0 + exp(-Vm / 10.0)) - x) / 4.0;
Iion = 0.2 * x * (Vm + 80.0);
";

    #[test]
    fn compile_all_isas() {
        for isa in [Isa::Scalar, Isa::Sse, Isa::Avx2, Isa::Avx512] {
            let c = Compiler::new().isa(isa).compile("m", SRC).unwrap();
            let expected_width = match isa {
                Isa::Scalar => None,
                Isa::Sse => Some(2),
                Isa::Avx2 => Some(4),
                Isa::Avx512 => Some(8),
            };
            assert_eq!(c.module().attrs.i64_of("vector_width"), expected_width);
        }
    }

    #[test]
    fn ir_text_round_trips() {
        let c = Compiler::new().compile("m", SRC).unwrap();
        let text = c.ir_text();
        let reparsed = limpet_ir::parse_module(&text).unwrap();
        assert_eq!(limpet_ir::print_module(&reparsed), text);
    }

    #[test]
    fn frontend_errors_surface() {
        let err = Compiler::new().compile("m", "diff_x = undefined_var;");
        assert!(matches!(err, Err(CompileError::Frontend(_))));
    }

    #[test]
    fn builder_options_change_module() {
        let with = Compiler::new().compile("m", SRC).unwrap();
        let without = Compiler::new().without_lut().compile("m", SRC).unwrap();
        assert!(with.ir_text().contains("lut.col"));
        assert!(!without.ir_text().contains("lut.col"));
        let aos = Compiler::new()
            .without_layout_transform()
            .compile("m", SRC)
            .unwrap();
        assert_eq!(aos.module().attrs.str_of("layout"), Some("aos"));
    }

    #[test]
    fn simulation_runs() {
        let c = Compiler::new().compile("m", SRC).unwrap();
        let mut sim = c.simulation(64, 0.01);
        sim.run(50);
        assert!(sim.vm(0).is_finite());
        assert!(sim.state_of(0, "x").unwrap().is_finite());
    }

    #[test]
    fn facade_shares_the_global_kernel_cache() {
        let c1 = Compiler::new().compile("m", SRC).unwrap();
        let c2 = Compiler::new().compile("m", SRC).unwrap();
        // Two independent compiles of the same source land on the same
        // cache entry, hence the same bytecode compilation.
        assert!(c1.kernel().shares_compilation(&c2.kernel()));
        // And harness simulations for the equivalent configuration too.
        let model = limpet_easyml::compile_model("m", SRC).unwrap();
        let sim = Simulation::new(&model, c1.pipeline_kind(), &Workload::default());
        assert!(sim.kernel().shares_compilation(&c1.kernel()));
    }

    #[test]
    fn pass_report_describes_the_cold_compile() {
        let c = Compiler::new().compile("m", SRC).unwrap();
        let report = c.pass_report();
        assert!(
            report.passes.iter().any(|p| p.name == "vectorize"),
            "limpetMLIR pipeline must record its vectorize pass"
        );
        assert_eq!(report.counter("vectorize", "kernels-vectorized"), Some(1));
        let table = c.pass_report().timing_table();
        assert!(
            table.contains("vectorize"),
            "timing table lists passes:\n{table}"
        );
    }

    #[test]
    fn kernel_is_memoized() {
        let c = Compiler::new().compile("m", SRC).unwrap();
        assert_eq!(
            c.pipeline_kind(),
            PipelineKind::LimpetMlir(VectorIsa::Avx512)
        );
        let a = c.kernel();
        let b = c.kernel();
        assert!(
            a.shares_compilation(&b),
            "repeated kernel() calls must share one compilation"
        );
        // Simulations reuse that same compilation too.
        let sim = c.simulation(8, 0.01);
        assert!(sim.kernel().shares_compilation(&a));
    }
}
