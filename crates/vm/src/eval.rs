//! Reference tree-walking evaluator for IR functions.
//!
//! Used to (1) precompute LUT columns by evaluating the `@lut_*` functions
//! over the tabulated range, and (2) serve as the semantic oracle in
//! differential tests of the bytecode engine: both must compute identical
//! results for one cell.

use limpet_ir::{Func, Module, OpKind, RegionId, ValueId};
use std::collections::HashMap;
use std::fmt;

/// A runtime value during evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// A float (scalar lane).
    F(f64),
    /// An integer or index.
    I(i64),
    /// A boolean.
    B(bool),
}

impl Val {
    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not a float.
    pub fn f(self) -> f64 {
        match self {
            Val::F(v) => v,
            other => panic!("expected float, got {other:?}"),
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not an integer.
    pub fn i(self) -> i64 {
        match self {
            Val::I(v) => v,
            other => panic!("expected int, got {other:?}"),
        }
    }

    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not a boolean.
    pub fn b(self) -> bool {
        match self {
            Val::B(v) => v,
            other => panic!("expected bool, got {other:?}"),
        }
    }
}

/// The environment an evaluated kernel runs against: one cell's data.
pub trait EvalContext {
    /// Reads a model parameter.
    fn param(&self, name: &str) -> f64;
    /// Reads a state variable of the current cell.
    fn get_state(&mut self, var: &str) -> f64;
    /// Writes a state variable of the current cell.
    fn set_state(&mut self, var: &str, v: f64);
    /// Reads an external variable of the current cell.
    fn get_ext(&mut self, var: &str) -> f64;
    /// Writes an external variable of the current cell.
    fn set_ext(&mut self, var: &str, v: f64);
    /// The integration time step.
    fn dt(&self) -> f64;
    /// The current simulation time.
    fn time(&self) -> f64;
    /// The current cell index.
    fn cell_index(&self) -> i64 {
        0
    }
    /// Whether a parent model is attached.
    fn has_parent(&self) -> bool {
        false
    }
    /// Reads a parent state variable; `fallback` when no parent.
    fn get_parent_state(&mut self, _var: &str, fallback: f64) -> f64 {
        fallback
    }
    /// Writes a parent state variable (no-op without parent).
    fn set_parent_state(&mut self, _var: &str, _v: f64) {}
    /// Interpolated lookup-table column read.
    fn lut_col(&mut self, table: &str, col: usize, key: f64) -> f64;
}

/// An evaluation error (malformed IR reaching the evaluator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.0)
    }
}

impl std::error::Error for EvalError {}

/// Evaluates function `name` of `module` on `args`, returning its results.
///
/// # Errors
///
/// Returns [`EvalError`] for missing functions or arity mismatches.
pub fn eval_func(
    module: &Module,
    name: &str,
    args: &[Val],
    ctx: &mut dyn EvalContext,
) -> Result<Vec<Val>, EvalError> {
    let func = module
        .func(name)
        .ok_or_else(|| EvalError(format!("no function @{name}")))?;
    if args.len() != func.args().len() {
        return Err(EvalError(format!(
            "@{name} takes {} args, got {}",
            func.args().len(),
            args.len()
        )));
    }
    let mut env: HashMap<ValueId, Val> = HashMap::new();
    for (&a, &v) in func.args().iter().zip(args) {
        env.insert(a, v);
    }
    let mut ev = Evaluator { func, ctx };
    Ok(ev.region(func.body(), &mut env))
}

struct Evaluator<'a> {
    func: &'a Func,
    ctx: &'a mut dyn EvalContext,
}

impl<'a> Evaluator<'a> {
    /// Executes a region; returns the terminator's operand values.
    fn region(&mut self, region: RegionId, env: &mut HashMap<ValueId, Val>) -> Vec<Val> {
        let ops = self.func.region(region).ops.clone();
        for op_id in ops {
            let op = self.func.op(op_id).clone();
            if op.kind.is_terminator() {
                return op.operands.iter().map(|o| env[o]).collect();
            }
            match op.kind.clone() {
                OpKind::If => {
                    let cond = env[&op.operands[0]].b();
                    let taken = op.regions[if cond { 0 } else { 1 }];
                    let yields = self.region(taken, env);
                    for (r, v) in op.results.iter().zip(yields) {
                        env.insert(*r, v);
                    }
                }
                OpKind::For => {
                    let lb = env[&op.operands[0]].i();
                    let ub = env[&op.operands[1]].i();
                    let step = env[&op.operands[2]].i().max(1);
                    let mut iters: Vec<Val> = op.operands[3..].iter().map(|o| env[o]).collect();
                    let body = op.regions[0];
                    let args = self.func.region(body).args.clone();
                    let mut iv = lb;
                    while iv < ub {
                        env.insert(args[0], Val::I(iv));
                        for (a, v) in args[1..].iter().zip(&iters) {
                            env.insert(*a, *v);
                        }
                        iters = self.region(body, env);
                        iv += step;
                    }
                    for (r, v) in op.results.iter().zip(iters) {
                        env.insert(*r, v);
                    }
                }
                kind => {
                    let vals: Vec<Val> = op.operands.iter().map(|o| env[o]).collect();
                    if let Some(v) = self.eval_simple(&kind, &op.attrs, &vals) {
                        if let Some(&r) = op.results.first() {
                            env.insert(r, v);
                        }
                    }
                }
            }
        }
        Vec::new()
    }

    fn eval_simple(&mut self, kind: &OpKind, attrs: &limpet_ir::Attrs, v: &[Val]) -> Option<Val> {
        Some(match kind {
            OpKind::ConstantF(c) => Val::F(*c),
            OpKind::ConstantInt(c) => Val::I(*c),
            OpKind::ConstantBool(c) => Val::B(*c),
            OpKind::AddF => Val::F(v[0].f() + v[1].f()),
            OpKind::SubF => Val::F(v[0].f() - v[1].f()),
            OpKind::MulF => Val::F(v[0].f() * v[1].f()),
            OpKind::DivF => Val::F(v[0].f() / v[1].f()),
            OpKind::RemF => Val::F(v[0].f() % v[1].f()),
            OpKind::NegF => Val::F(-v[0].f()),
            OpKind::MinF => Val::F(v[0].f().min(v[1].f())),
            OpKind::MaxF => Val::F(v[0].f().max(v[1].f())),
            OpKind::Fma => Val::F(v[0].f() * v[1].f() + v[2].f()),
            OpKind::AddI => Val::I(v[0].i() + v[1].i()),
            OpKind::SubI => Val::I(v[0].i() - v[1].i()),
            OpKind::MulI => Val::I(v[0].i() * v[1].i()),
            OpKind::CmpF(p) => Val::B(p.apply(v[0].f(), v[1].f())),
            OpKind::CmpI(p) => Val::B(p.apply(v[0].i(), v[1].i())),
            OpKind::AndI => Val::B(v[0].b() && v[1].b()),
            OpKind::OrI => Val::B(v[0].b() || v[1].b()),
            OpKind::XorI => Val::B(v[0].b() ^ v[1].b()),
            OpKind::Select => {
                if v[0].b() {
                    v[1]
                } else {
                    v[2]
                }
            }
            OpKind::SIToFP => Val::F(v[0].i() as f64),
            OpKind::IndexCast => v[0],
            OpKind::Math(f) => {
                let b = if f.arity() == 2 { v[1].f() } else { 0.0 };
                Val::F(f.eval(v[0].f(), b))
            }
            OpKind::Broadcast => v[0],
            OpKind::Param => Val::F(self.ctx.param(attrs.str_of("name").unwrap_or(""))),
            OpKind::GetState => Val::F(self.ctx.get_state(attrs.str_of("var").unwrap_or(""))),
            OpKind::SetState => {
                self.ctx
                    .set_state(attrs.str_of("var").unwrap_or(""), v[0].f());
                return None;
            }
            OpKind::GetExt => Val::F(self.ctx.get_ext(attrs.str_of("var").unwrap_or(""))),
            OpKind::SetExt => {
                self.ctx
                    .set_ext(attrs.str_of("var").unwrap_or(""), v[0].f());
                return None;
            }
            OpKind::HasParent => Val::B(self.ctx.has_parent()),
            OpKind::GetParentState => Val::F(
                self.ctx
                    .get_parent_state(attrs.str_of("var").unwrap_or(""), v[0].f()),
            ),
            OpKind::SetParentState => {
                self.ctx
                    .set_parent_state(attrs.str_of("var").unwrap_or(""), v[0].f());
                return None;
            }
            OpKind::Dt => Val::F(self.ctx.dt()),
            OpKind::Time => Val::F(self.ctx.time()),
            OpKind::CellIndex => Val::I(self.ctx.cell_index()),
            OpKind::LutCol => Val::F(self.ctx.lut_col(
                attrs.str_of("table").unwrap_or(""),
                attrs.i64_of("col").unwrap_or(0) as usize,
                v[0].f(),
            )),
            OpKind::If | OpKind::For | OpKind::Yield | OpKind::Return => {
                unreachable!("handled structurally")
            }
        })
    }
}

/// A context with no cell data: parameters only. Suitable for evaluating
/// `@lut_*` column functions.
#[derive(Debug, Clone, Default)]
pub struct ParamOnlyContext {
    /// Parameter values by name.
    pub params: HashMap<String, f64>,
}

impl EvalContext for ParamOnlyContext {
    fn param(&self, name: &str) -> f64 {
        *self.params.get(name).unwrap_or(&0.0)
    }
    fn get_state(&mut self, var: &str) -> f64 {
        panic!("LUT column function must not read state {var:?}")
    }
    fn set_state(&mut self, var: &str, _v: f64) {
        panic!("LUT column function must not write state {var:?}")
    }
    fn get_ext(&mut self, var: &str) -> f64 {
        panic!("LUT column function must not read external {var:?}")
    }
    fn set_ext(&mut self, var: &str, _v: f64) {
        panic!("LUT column function must not write external {var:?}")
    }
    fn dt(&self) -> f64 {
        0.0
    }
    fn time(&self) -> f64 {
        0.0
    }
    fn lut_col(&mut self, table: &str, _col: usize, _key: f64) -> f64 {
        panic!("LUT column function must not read table {table:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_ir::{Builder, Func as IrFunc, Module, Type};

    #[test]
    fn evaluates_arithmetic_function() {
        let mut m = Module::new("t");
        let mut f = IrFunc::new("f", &[Type::F64], &[Type::F64]);
        let arg = f.args()[0];
        let mut b = Builder::new(&mut f);
        let two = b.const_f(2.0);
        let d = b.mulf(arg, two);
        let e = b.exp(d);
        b.ret(&[e]);
        m.add_func(f);
        let mut ctx = ParamOnlyContext::default();
        let r = eval_func(&m, "f", &[Val::F(1.0)], &mut ctx).unwrap();
        assert!((r[0].f() - 2.0f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn evaluates_if_and_for() {
        let mut m = Module::new("t");
        let mut f = IrFunc::new("f", &[Type::F64], &[Type::F64]);
        let arg = f.args()[0];
        let mut b = Builder::new(&mut f);
        let zero = b.const_f(0.0);
        let pos = b.cmpf(limpet_ir::CmpFPred::Ogt, arg, zero);
        let sign = b.if_op(
            pos,
            &[Type::F64],
            |b| {
                let v = b.const_f(1.0);
                b.yield_(&[v]);
            },
            |b| {
                let v = b.const_f(-1.0);
                b.yield_(&[v]);
            },
        );
        // Multiply sign by 2, four times, in a loop: sign * 16.
        let lb = b.const_index(0);
        let ub = b.const_index(4);
        let st = b.const_index(1);
        let r = b.for_op(lb, ub, st, &[sign[0]], |b, _iv, iters| {
            let two = b.const_f(2.0);
            let next = b.mulf(iters[0], two);
            b.yield_(&[next]);
        });
        b.ret(&[r[0]]);
        m.add_func(f);
        let mut ctx = ParamOnlyContext::default();
        assert_eq!(
            eval_func(&m, "f", &[Val::F(3.0)], &mut ctx).unwrap()[0].f(),
            16.0
        );
        assert_eq!(
            eval_func(&m, "f", &[Val::F(-3.0)], &mut ctx).unwrap()[0].f(),
            -16.0
        );
    }

    #[test]
    fn params_read_from_context() {
        let mut m = Module::new("t");
        let mut f = IrFunc::new("f", &[], &[Type::F64]);
        let mut b = Builder::new(&mut f);
        let p = b.param("Cm");
        b.ret(&[p]);
        m.add_func(f);
        let mut ctx = ParamOnlyContext::default();
        ctx.params.insert("Cm".into(), 200.0);
        assert_eq!(eval_func(&m, "f", &[], &mut ctx).unwrap()[0].f(), 200.0);
    }

    #[test]
    fn missing_function_is_error() {
        let m = Module::new("t");
        let mut ctx = ParamOnlyContext::default();
        assert!(eval_func(&m, "nope", &[], &mut ctx).is_err());
    }
}
