//! The register bytecode and its compiler from IR.
//!
//! The bytecode plays the role of the machine code a real MLIR → LLVM
//! pipeline would emit: a flat instruction list over three register files
//! (`W`-lane floats, `W`-lane booleans, scalar integers). Structured
//! control flow compiles to conditional jumps — which only uniform
//! (lane-invariant) conditions may feed, exactly the constraint that makes
//! the vectorizer if-convert varying `scf.if` into selects.

use limpet_ir::{CmpFPred, CmpIPred, Func, MathFn, Module, OpKind, RegionId, Type, ValueId};
use std::collections::HashMap;
use std::fmt;

/// Binary float operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum FBin {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
}

/// Binary boolean operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BBin {
    And,
    Or,
    Xor,
}

/// Binary integer operations (uniform registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IBin {
    Add,
    Sub,
    Mul,
}

/// One bytecode instruction. Register operands index the float (`f`),
/// boolean (`b`), or integer (`i`) register file as indicated per field.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Instr {
    /// `f[dst] = splat(v)`
    ConstF { dst: u16, v: f64 },
    /// `i[dst] = v`
    ConstI { dst: u16, v: i64 },
    /// `b[dst] = splat(v)`
    ConstB { dst: u16, v: bool },
    /// `f[dst] = f[src]`
    MovF { dst: u16, src: u16 },
    /// `b[dst] = b[src]`
    MovB { dst: u16, src: u16 },
    /// `i[dst] = i[src]`
    MovI { dst: u16, src: u16 },
    /// `f[dst] = splat(params[idx])`
    LoadParam { dst: u16, idx: u16 },
    /// `f[dst] = splat(dt)`
    LoadDt { dst: u16 },
    /// `f[dst] = splat(t)`
    LoadTime { dst: u16 },
    /// `i[dst] = cell0 (base index of the chunk)`
    CellIndex { dst: u16 },
    /// `f[dst][lane] = state[cell0+lane][var]`
    LoadState { dst: u16, var: u16 },
    /// `state[cell0+lane][var] = f[src][lane]`
    StoreState { src: u16, var: u16 },
    /// `f[dst][lane] = ext[var][cell0+lane]`
    LoadExt { dst: u16, var: u16 },
    /// `ext[var][cell0+lane] = f[src][lane]`
    StoreExt { src: u16, var: u16 },
    /// `b[dst] = splat(parent attached?)`
    HasParent { dst: u16 },
    /// `f[dst] = parent ? parent_state[var] : f[fallback]`
    LoadParentState { dst: u16, var: u16, fallback: u16 },
    /// `parent_state[var] = f[src] (no-op without parent)`
    StoreParentState { src: u16, var: u16 },
    /// `f[dst] = f[a] ⊕ f[b]`
    BinF { op: FBin, dst: u16, a: u16, b: u16 },
    /// `f[dst] = f[a] ⊕ splat(k)` — constant right operand, one register
    /// read fewer than [`Instr::BinF`] (optimizer-only; the compiler never
    /// emits it).
    BinFK { op: FBin, dst: u16, a: u16, k: f64 },
    /// `f[dst] = splat(k) ⊕ f[a]` — constant left operand, for
    /// non-commutative ops like `1.0 - x` (optimizer-only).
    BinKF { op: FBin, dst: u16, k: f64, a: u16 },
    /// `f[dst][lane] = state[cell0+lane][var] ⊕ f[b][lane]` — fused
    /// load-op (optimizer-only).
    LoadStateOp {
        op: FBin,
        dst: u16,
        var: u16,
        b: u16,
    },
    /// `f[dst][lane] = ext[var][cell0+lane] ⊕ f[b][lane]` — fused
    /// load-op (optimizer-only).
    LoadExtOp {
        op: FBin,
        dst: u16,
        var: u16,
        b: u16,
    },
    /// `f[dst] = -f[a]`
    NegF { dst: u16, a: u16 },
    /// `f[dst] = f[a]*f[b] + f[c]`
    FmaF { dst: u16, a: u16, b: u16, c: u16 },
    /// `f[dst] = fn(f[a])`
    Math1 { f: MathFn, dst: u16, a: u16 },
    /// `f[dst] = fn(f[a], f[b])`
    Math2 { f: MathFn, dst: u16, a: u16, b: u16 },
    /// `b[dst] = f[a] cmp f[b]`
    CmpF {
        pred: CmpFPred,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// `b[dst] = splat(i[a] cmp i[b])`
    CmpI {
        pred: CmpIPred,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// `b[dst] = b[a] ⊕ b[b]`
    BinB { op: BBin, dst: u16, a: u16, b: u16 },
    /// `f[dst] = b[cond] ? f[a] : f[b] (per lane)`
    SelectF { dst: u16, cond: u16, a: u16, b: u16 },
    /// `b[dst] = b[cond] ? b[a] : b[b] (per lane)`
    SelectB { dst: u16, cond: u16, a: u16, b: u16 },
    /// `f[dst] = splat(i[a] as f64)`
    SIToFP { dst: u16, a: u16 },
    /// `i[dst] = i[a] ⊕ i[b]`
    BinI { op: IBin, dst: u16, a: u16, b: u16 },
    /// `f[dst][lane] = interp(luts[table], col, f[key][lane]) — vectorized.`
    LutVec {
        table: u16,
        col: u16,
        dst: u16,
        key: u16,
    },
    /// Same semantics through one opaque call per lane (baseline path).
    LutScalar {
        table: u16,
        col: u16,
        dst: u16,
        key: u16,
    },
    /// Catmull-Rom cubic interpolation (the paper's future-work spline
    /// variant): four-row stencil, third-order accurate.
    LutCubic {
        table: u16,
        col: u16,
        dst: u16,
        key: u16,
    },
    /// Unconditional jump to instruction index.
    Jump { target: u32 },
    /// `Jump when lane 0 of b[cond] is false (uniform conditions only).`
    JumpIfNot { cond: u16, target: u32 },
    /// End of kernel.
    Ret,
}

/// A compilation error (unsupported or malformed IR).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError(pub String);

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytecode compilation error: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

/// Register classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    F,
    B,
    I,
}

/// The compiled program plus register-file sizes and symbol tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Instructions; entry at index 0, ends with [`Instr::Ret`].
    pub instrs: Vec<Instr>,
    /// Float registers used.
    pub n_fregs: usize,
    /// Boolean registers used.
    pub n_bregs: usize,
    /// Integer registers used.
    pub n_iregs: usize,
    /// Distinct state variable names, indexed by `var` fields.
    pub state_vars: Vec<String>,
    /// Distinct external variable names, indexed by `var` fields.
    pub ext_vars: Vec<String>,
    /// Distinct parameter names, indexed by `idx` fields.
    pub params: Vec<String>,
    /// Distinct LUT table names, indexed by `table` fields.
    pub lut_tables: Vec<String>,
    /// Distinct parent state names, indexed by parent `var` fields.
    pub parent_vars: Vec<String>,
}

impl Program {
    /// Disassembles the program into a human-readable listing, one
    /// instruction per line with resolved symbol names.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let state = |i: u16| {
            self.state_vars
                .get(i as usize)
                .map(String::as_str)
                .unwrap_or("?")
        };
        let ext = |i: u16| {
            self.ext_vars
                .get(i as usize)
                .map(String::as_str)
                .unwrap_or("?")
        };
        for (pc, instr) in self.instrs.iter().enumerate() {
            write!(out, "{pc:4}: ").unwrap();
            match instr {
                Instr::ConstF { dst, v } => writeln!(out, "f{dst} = const {v}"),
                Instr::ConstI { dst, v } => writeln!(out, "i{dst} = const {v}"),
                Instr::ConstB { dst, v } => writeln!(out, "b{dst} = const {v}"),
                Instr::MovF { dst, src } => writeln!(out, "f{dst} = f{src}"),
                Instr::MovB { dst, src } => writeln!(out, "b{dst} = b{src}"),
                Instr::MovI { dst, src } => writeln!(out, "i{dst} = i{src}"),
                Instr::LoadParam { dst, idx } => writeln!(
                    out,
                    "f{dst} = param {}",
                    self.params
                        .get(*idx as usize)
                        .map(String::as_str)
                        .unwrap_or("?")
                ),
                Instr::LoadDt { dst } => writeln!(out, "f{dst} = dt"),
                Instr::LoadTime { dst } => writeln!(out, "f{dst} = t"),
                Instr::CellIndex { dst } => writeln!(out, "i{dst} = cell_index"),
                Instr::LoadState { dst, var } => {
                    writeln!(out, "f{dst} = load state.{}", state(*var))
                }
                Instr::StoreState { src, var } => {
                    writeln!(out, "store state.{} = f{src}", state(*var))
                }
                Instr::LoadExt { dst, var } => writeln!(out, "f{dst} = load ext.{}", ext(*var)),
                Instr::StoreExt { src, var } => writeln!(out, "store ext.{} = f{src}", ext(*var)),
                Instr::HasParent { dst } => writeln!(out, "b{dst} = has_parent"),
                Instr::LoadParentState { dst, var, fallback } => writeln!(
                    out,
                    "f{dst} = load parent.{} (fallback f{fallback})",
                    self.parent_vars
                        .get(*var as usize)
                        .map(String::as_str)
                        .unwrap_or("?")
                ),
                Instr::StoreParentState { src, var } => writeln!(
                    out,
                    "store parent.{} = f{src}",
                    self.parent_vars
                        .get(*var as usize)
                        .map(String::as_str)
                        .unwrap_or("?")
                ),
                Instr::BinF { op, dst, a, b } => {
                    writeln!(out, "f{dst} = {op:?}(f{a}, f{b})")
                }
                Instr::BinFK { op, dst, a, k } => {
                    writeln!(out, "f{dst} = {op:?}(f{a}, const {k})")
                }
                Instr::BinKF { op, dst, k, a } => {
                    writeln!(out, "f{dst} = {op:?}(const {k}, f{a})")
                }
                Instr::LoadStateOp { op, dst, var, b } => {
                    writeln!(out, "f{dst} = {op:?}(load state.{}, f{b})", state(*var))
                }
                Instr::LoadExtOp { op, dst, var, b } => {
                    writeln!(out, "f{dst} = {op:?}(load ext.{}, f{b})", ext(*var))
                }
                Instr::NegF { dst, a } => writeln!(out, "f{dst} = -f{a}"),
                Instr::FmaF { dst, a, b, c } => {
                    writeln!(out, "f{dst} = fma(f{a}, f{b}, f{c})")
                }
                Instr::Math1 { f, dst, a } => writeln!(out, "f{dst} = {}(f{a})", f.name()),
                Instr::Math2 { f, dst, a, b } => {
                    writeln!(out, "f{dst} = {}(f{a}, f{b})", f.name())
                }
                Instr::CmpF { pred, dst, a, b } => {
                    writeln!(out, "b{dst} = cmpf {} f{a}, f{b}", pred.name())
                }
                Instr::CmpI { pred, dst, a, b } => {
                    writeln!(out, "b{dst} = cmpi {} i{a}, i{b}", pred.name())
                }
                Instr::BinB { op, dst, a, b } => {
                    writeln!(out, "b{dst} = {op:?}(b{a}, b{b})")
                }
                Instr::SelectF { dst, cond, a, b } => {
                    writeln!(out, "f{dst} = b{cond} ? f{a} : f{b}")
                }
                Instr::SelectB { dst, cond, a, b } => {
                    writeln!(out, "b{dst} = b{cond} ? b{a} : b{b}")
                }
                Instr::SIToFP { dst, a } => writeln!(out, "f{dst} = (double)i{a}"),
                Instr::BinI { op, dst, a, b } => {
                    writeln!(out, "i{dst} = {op:?}(i{a}, i{b})")
                }
                Instr::LutVec {
                    table,
                    col,
                    dst,
                    key,
                } => writeln!(
                    out,
                    "f{dst} = lut_vec {}[{col}](f{key})",
                    self.lut_tables
                        .get(*table as usize)
                        .map(String::as_str)
                        .unwrap_or("?")
                ),
                Instr::LutScalar {
                    table,
                    col,
                    dst,
                    key,
                } => writeln!(
                    out,
                    "f{dst} = lut_scalar {}[{col}](f{key})",
                    self.lut_tables
                        .get(*table as usize)
                        .map(String::as_str)
                        .unwrap_or("?")
                ),
                Instr::LutCubic {
                    table,
                    col,
                    dst,
                    key,
                } => writeln!(
                    out,
                    "f{dst} = lut_cubic {}[{col}](f{key})",
                    self.lut_tables
                        .get(*table as usize)
                        .map(String::as_str)
                        .unwrap_or("?")
                ),
                Instr::Jump { target } => writeln!(out, "jump -> {target}"),
                Instr::JumpIfNot { cond, target } => {
                    writeln!(out, "jump_if_not b{cond} -> {target}")
                }
                Instr::Ret => writeln!(out, "ret"),
            }
            .unwrap();
        }
        out
    }
}

struct Compiler<'a> {
    func: &'a Func,
    instrs: Vec<Instr>,
    regs: HashMap<ValueId, (Class, u16)>,
    n: [u16; 3],
    state_vars: Vec<String>,
    ext_vars: Vec<String>,
    params: Vec<String>,
    lut_tables: Vec<String>,
    parent_vars: Vec<String>,
    /// Preferred state/ext orderings (so indices match storage layout).
    state_order: &'a [String],
    ext_order: &'a [String],
    param_order: &'a [String],
}

/// Compiles the `compute` function of a module to bytecode.
///
/// `state_order`, `ext_order`, and `param_order` pin the variable indices
/// to the storage layout the harness allocates; variables the kernel
/// touches must appear there.
///
/// # Errors
///
/// Returns [`CompileError`] for IR the bytecode cannot express — most
/// importantly an `scf.if` whose condition is a multi-lane value (the
/// vectorizer must have if-converted those).
pub fn compile_program(
    module: &Module,
    state_order: &[String],
    ext_order: &[String],
    param_order: &[String],
) -> Result<Program, CompileError> {
    let func = module
        .func("compute")
        .ok_or_else(|| CompileError("module has no @compute".into()))?;
    let mut c = Compiler {
        func,
        instrs: Vec::new(),
        regs: HashMap::new(),
        n: [0, 0, 0],
        state_vars: state_order.to_vec(),
        ext_vars: ext_order.to_vec(),
        params: param_order.to_vec(),
        lut_tables: module.luts.iter().map(|l| l.name.clone()).collect(),
        parent_vars: Vec::new(),
        state_order,
        ext_order,
        param_order,
    };
    c.emit_region(func.body())?;
    c.instrs.push(Instr::Ret);
    Ok(Program {
        instrs: c.instrs,
        n_fregs: c.n[0] as usize,
        n_bregs: c.n[1] as usize,
        n_iregs: c.n[2] as usize,
        state_vars: c.state_vars,
        ext_vars: c.ext_vars,
        params: c.params,
        lut_tables: c.lut_tables,
        parent_vars: c.parent_vars,
    })
}

impl<'a> Compiler<'a> {
    fn class_of(&self, v: ValueId) -> Class {
        match self.func.value_type(v) {
            t if t.is_bool_like() => Class::B,
            Type::Scalar(s) if s.is_integer_like() => Class::I,
            _ => Class::F,
        }
    }

    fn alloc(&mut self, class: Class) -> u16 {
        let slot = match class {
            Class::F => 0,
            Class::B => 1,
            Class::I => 2,
        };
        let r = self.n[slot];
        self.n[slot] += 1;
        r
    }

    fn reg(&mut self, v: ValueId) -> u16 {
        if let Some(&(_, r)) = self.regs.get(&v) {
            return r;
        }
        let class = self.class_of(v);
        let r = self.alloc(class);
        self.regs.insert(v, (class, r));
        r
    }

    fn var_index(list: &mut Vec<String>, ordered: &[String], name: &str) -> u16 {
        if let Some(i) = list.iter().position(|n| n == name) {
            return i as u16;
        }
        // Not pre-registered (shouldn't happen when orders are complete);
        // append to keep compilation total.
        let _ = ordered;
        list.push(name.to_owned());
        (list.len() - 1) as u16
    }

    fn attr_var(&self, op: limpet_ir::OpId, key: &str) -> Result<String, CompileError> {
        self.func
            .op(op)
            .attrs
            .str_of(key)
            .map(str::to_owned)
            .ok_or_else(|| CompileError(format!("missing {key} attribute")))
    }

    fn emit_region(&mut self, region: RegionId) -> Result<(), CompileError> {
        let ops = self.func.region(region).ops.clone();
        for op_id in ops {
            self.emit_op(op_id)?;
        }
        Ok(())
    }

    fn emit_op(&mut self, op_id: limpet_ir::OpId) -> Result<(), CompileError> {
        let op = self.func.op(op_id).clone();
        let kind = op.kind.clone();
        match kind {
            OpKind::ConstantF(v) => {
                let dst = self.reg(op.result());
                self.instrs.push(Instr::ConstF { dst, v });
            }
            OpKind::ConstantInt(v) => {
                let dst = self.reg(op.result());
                self.instrs.push(Instr::ConstI { dst, v });
            }
            OpKind::ConstantBool(v) => {
                let dst = self.reg(op.result());
                self.instrs.push(Instr::ConstB { dst, v });
            }
            OpKind::AddF
            | OpKind::SubF
            | OpKind::MulF
            | OpKind::DivF
            | OpKind::RemF
            | OpKind::MinF
            | OpKind::MaxF => {
                let a = self.reg(op.operands[0]);
                let b = self.reg(op.operands[1]);
                let dst = self.reg(op.result());
                let fop = match kind {
                    OpKind::AddF => FBin::Add,
                    OpKind::SubF => FBin::Sub,
                    OpKind::MulF => FBin::Mul,
                    OpKind::DivF => FBin::Div,
                    OpKind::RemF => FBin::Rem,
                    OpKind::MinF => FBin::Min,
                    _ => FBin::Max,
                };
                self.instrs.push(Instr::BinF { op: fop, dst, a, b });
            }
            OpKind::NegF => {
                let a = self.reg(op.operands[0]);
                let dst = self.reg(op.result());
                self.instrs.push(Instr::NegF { dst, a });
            }
            OpKind::Fma => {
                let a = self.reg(op.operands[0]);
                let b = self.reg(op.operands[1]);
                let c = self.reg(op.operands[2]);
                let dst = self.reg(op.result());
                self.instrs.push(Instr::FmaF { dst, a, b, c });
            }
            OpKind::AddI | OpKind::SubI | OpKind::MulI => {
                let a = self.reg(op.operands[0]);
                let b = self.reg(op.operands[1]);
                let dst = self.reg(op.result());
                let iop = match kind {
                    OpKind::AddI => IBin::Add,
                    OpKind::SubI => IBin::Sub,
                    _ => IBin::Mul,
                };
                self.instrs.push(Instr::BinI { op: iop, dst, a, b });
            }
            OpKind::CmpF(pred) => {
                let a = self.reg(op.operands[0]);
                let b = self.reg(op.operands[1]);
                let dst = self.reg(op.result());
                self.instrs.push(Instr::CmpF { pred, dst, a, b });
            }
            OpKind::CmpI(pred) => {
                let a = self.reg(op.operands[0]);
                let b = self.reg(op.operands[1]);
                let dst = self.reg(op.result());
                self.instrs.push(Instr::CmpI { pred, dst, a, b });
            }
            OpKind::AndI | OpKind::OrI | OpKind::XorI => {
                let a = self.reg(op.operands[0]);
                let b = self.reg(op.operands[1]);
                let dst = self.reg(op.result());
                let bop = match kind {
                    OpKind::AndI => BBin::And,
                    OpKind::OrI => BBin::Or,
                    _ => BBin::Xor,
                };
                self.instrs.push(Instr::BinB { op: bop, dst, a, b });
            }
            OpKind::Select => {
                let cond = self.reg(op.operands[0]);
                let a = self.reg(op.operands[1]);
                let b = self.reg(op.operands[2]);
                let dst = self.reg(op.result());
                match self.class_of(op.result()) {
                    Class::B => self.instrs.push(Instr::SelectB { dst, cond, a, b }),
                    _ => self.instrs.push(Instr::SelectF { dst, cond, a, b }),
                }
            }
            OpKind::SIToFP => {
                let a = self.reg(op.operands[0]);
                let dst = self.reg(op.result());
                self.instrs.push(Instr::SIToFP { dst, a });
            }
            OpKind::IndexCast => {
                let a = self.reg(op.operands[0]);
                let dst = self.reg(op.result());
                self.instrs.push(Instr::MovI { dst, src: a });
            }
            OpKind::Math(f) => {
                let dst = self.reg(op.result());
                if f.arity() == 1 {
                    let a = self.reg(op.operands[0]);
                    self.instrs.push(Instr::Math1 { f, dst, a });
                } else {
                    let a = self.reg(op.operands[0]);
                    let b = self.reg(op.operands[1]);
                    self.instrs.push(Instr::Math2 { f, dst, a, b });
                }
            }
            OpKind::Broadcast => {
                let a = self.reg(op.operands[0]);
                let dst = self.reg(op.result());
                match self.class_of(op.result()) {
                    Class::B => self.instrs.push(Instr::MovB { dst, src: a }),
                    _ => self.instrs.push(Instr::MovF { dst, src: a }),
                }
            }
            OpKind::Param => {
                let name = self.attr_var(op_id, "name")?;
                let idx = Self::var_index(&mut self.params, self.param_order, &name);
                let dst = self.reg(op.result());
                self.instrs.push(Instr::LoadParam { dst, idx });
            }
            OpKind::Dt => {
                let dst = self.reg(op.result());
                self.instrs.push(Instr::LoadDt { dst });
            }
            OpKind::Time => {
                let dst = self.reg(op.result());
                self.instrs.push(Instr::LoadTime { dst });
            }
            OpKind::CellIndex => {
                let dst = self.reg(op.result());
                self.instrs.push(Instr::CellIndex { dst });
            }
            OpKind::GetState => {
                let name = self.attr_var(op_id, "var")?;
                let var = Self::var_index(&mut self.state_vars, self.state_order, &name);
                let dst = self.reg(op.result());
                self.instrs.push(Instr::LoadState { dst, var });
            }
            OpKind::SetState => {
                let name = self.attr_var(op_id, "var")?;
                let var = Self::var_index(&mut self.state_vars, self.state_order, &name);
                let src = self.reg(op.operands[0]);
                self.instrs.push(Instr::StoreState { src, var });
            }
            OpKind::GetExt => {
                let name = self.attr_var(op_id, "var")?;
                let var = Self::var_index(&mut self.ext_vars, self.ext_order, &name);
                let dst = self.reg(op.result());
                self.instrs.push(Instr::LoadExt { dst, var });
            }
            OpKind::SetExt => {
                let name = self.attr_var(op_id, "var")?;
                let var = Self::var_index(&mut self.ext_vars, self.ext_order, &name);
                let src = self.reg(op.operands[0]);
                self.instrs.push(Instr::StoreExt { src, var });
            }
            OpKind::HasParent => {
                let dst = self.reg(op.result());
                self.instrs.push(Instr::HasParent { dst });
            }
            OpKind::GetParentState => {
                let name = self.attr_var(op_id, "var")?;
                let var = Self::var_index(&mut self.parent_vars, &[], &name);
                let fallback = self.reg(op.operands[0]);
                let dst = self.reg(op.result());
                self.instrs
                    .push(Instr::LoadParentState { dst, var, fallback });
            }
            OpKind::SetParentState => {
                let name = self.attr_var(op_id, "var")?;
                let var = Self::var_index(&mut self.parent_vars, &[], &name);
                let src = self.reg(op.operands[0]);
                self.instrs.push(Instr::StoreParentState { src, var });
            }
            OpKind::LutCol => {
                let table_name = self.attr_var(op_id, "table")?;
                let table = self
                    .lut_tables
                    .iter()
                    .position(|t| *t == table_name)
                    .ok_or_else(|| CompileError(format!("unknown lut table {table_name}")))?
                    as u16;
                let col = self
                    .func
                    .op(op_id)
                    .attrs
                    .i64_of("col")
                    .ok_or_else(|| CompileError("lut.col missing col".into()))?
                    as u16;
                let scalar = self
                    .func
                    .op(op_id)
                    .attrs
                    .get("scalar_interp")
                    .and_then(|a| a.as_bool())
                    == Some(true);
                let cubic = self.func.op(op_id).attrs.str_of("interp") == Some("cubic");
                let key = self.reg(op.operands[0]);
                let dst = self.reg(op.result());
                self.instrs.push(if scalar {
                    Instr::LutScalar {
                        table,
                        col,
                        dst,
                        key,
                    }
                } else if cubic {
                    Instr::LutCubic {
                        table,
                        col,
                        dst,
                        key,
                    }
                } else {
                    Instr::LutVec {
                        table,
                        col,
                        dst,
                        key,
                    }
                });
            }
            OpKind::If => {
                let cond_val = op.operands[0];
                if self.func.value_type(cond_val).lanes() != 1 {
                    return Err(CompileError(
                        "scf.if with a multi-lane condition reached the bytecode \
                         compiler; the vectorizer should have if-converted it"
                            .into(),
                    ));
                }
                let cond = self.reg(cond_val);
                // Result registers.
                let result_regs: Vec<u16> = op.results.iter().map(|&r| self.reg(r)).collect();
                let jump_to_else = self.instrs.len();
                self.instrs.push(Instr::JumpIfNot { cond, target: 0 });
                // then
                self.emit_branch(op.regions[0], &result_regs, &op.results)?;
                let jump_to_end = self.instrs.len();
                self.instrs.push(Instr::Jump { target: 0 });
                let else_start = self.instrs.len() as u32;
                self.emit_branch(op.regions[1], &result_regs, &op.results)?;
                let end = self.instrs.len() as u32;
                self.instrs[jump_to_else] = Instr::JumpIfNot {
                    cond,
                    target: else_start,
                };
                self.instrs[jump_to_end] = Instr::Jump { target: end };
            }
            OpKind::For => {
                let lb = self.reg(op.operands[0]);
                let ub = self.reg(op.operands[1]);
                let step = self.reg(op.operands[2]);
                let body = op.regions[0];
                let args = self.func.region(body).args.clone();
                // Induction register aliases the region's first argument.
                let iv = self.reg(args[0]);
                self.instrs.push(Instr::MovI { dst: iv, src: lb });
                // Iteration registers alias both the region args and the
                // loop results (copied through temps at the back edge).
                for (arg, init) in args[1..].iter().zip(&op.operands[3..]) {
                    let init_reg = self.reg(*init);
                    let arg_reg = self.reg(*arg);
                    self.push_mov(self.class_of(*arg), arg_reg, init_reg);
                }
                let loop_start = self.instrs.len() as u32;
                let cond = self.alloc(Class::B);
                self.instrs.push(Instr::CmpI {
                    pred: CmpIPred::Slt,
                    dst: cond,
                    a: iv,
                    b: ub,
                });
                let exit_jump = self.instrs.len();
                self.instrs.push(Instr::JumpIfNot { cond, target: 0 });
                // Body.
                let yields = self.emit_region_yields(body)?;
                // Copy yields to iteration registers through temporaries
                // (a yield may read a register about to be overwritten).
                let mut temps = Vec::with_capacity(yields.len());
                for &y in &yields {
                    let yr = self.reg(y);
                    let class = self.class_of(y);
                    let t = self.alloc(class);
                    self.push_mov(class, t, yr);
                    temps.push((class, t));
                }
                for ((class, t), arg) in temps.into_iter().zip(&args[1..]) {
                    let arg_reg = self.reg(*arg);
                    self.push_mov(class, arg_reg, t);
                }
                self.instrs.push(Instr::BinI {
                    op: IBin::Add,
                    dst: iv,
                    a: iv,
                    b: step,
                });
                self.instrs.push(Instr::Jump { target: loop_start });
                let end = self.instrs.len() as u32;
                self.instrs[exit_jump] = Instr::JumpIfNot { cond, target: end };
                // Results alias the iteration registers.
                for (res, arg) in op.results.iter().zip(&args[1..]) {
                    let arg_reg = self.reg(*arg);
                    let res_reg = self.reg(*res);
                    self.push_mov(self.class_of(*res), res_reg, arg_reg);
                }
            }
            OpKind::Yield => return Err(CompileError("scf.yield outside a handled region".into())),
            OpKind::Return => {}
        }
        Ok(())
    }

    fn push_mov(&mut self, class: Class, dst: u16, src: u16) {
        if dst == src {
            return;
        }
        match class {
            Class::F => self.instrs.push(Instr::MovF { dst, src }),
            Class::B => self.instrs.push(Instr::MovB { dst, src }),
            Class::I => self.instrs.push(Instr::MovI { dst, src }),
        }
    }

    /// Emits a branch region: its ops, then moves of its yield operands
    /// into the if's result registers.
    fn emit_branch(
        &mut self,
        region: RegionId,
        result_regs: &[u16],
        results: &[ValueId],
    ) -> Result<(), CompileError> {
        let yields = self.emit_region_yields(region)?;
        for ((&y, &dst), &res) in yields.iter().zip(result_regs).zip(results) {
            let src = self.reg(y);
            self.push_mov(self.class_of(res), dst, src);
        }
        Ok(())
    }

    /// Emits a region's ops (excluding the terminator) and returns the
    /// terminator's operands.
    fn emit_region_yields(&mut self, region: RegionId) -> Result<Vec<ValueId>, CompileError> {
        let ops = self.func.region(region).ops.clone();
        for (i, op_id) in ops.iter().enumerate() {
            let op = self.func.op(*op_id);
            if op.kind.is_terminator() {
                if i + 1 != ops.len() {
                    return Err(CompileError("terminator not last in region".into()));
                }
                return Ok(op.operands.clone());
            }
            self.emit_op(*op_id)?;
        }
        Ok(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_ir::{Builder, Module, Type};

    fn compile(build: impl FnOnce(&mut Builder<'_>)) -> Program {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        build(&mut b);
        m.add_func(f);
        compile_program(
            &m,
            &["x".into(), "y".into()],
            &["Vm".into()],
            &["Cm".into()],
        )
        .unwrap()
    }

    #[test]
    fn straight_line_compiles() {
        let p = compile(|b| {
            let x = b.get_state("x");
            let two = b.const_f(2.0);
            let y = b.mulf(x, two);
            b.set_state("y", y);
            b.ret(&[]);
        });
        assert_eq!(p.instrs.last(), Some(&Instr::Ret));
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::LoadState { var: 0, .. })));
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::StoreState { var: 1, .. })));
        assert_eq!(p.n_fregs, 3);
    }

    #[test]
    fn state_indices_follow_given_order() {
        let p = compile(|b| {
            let y = b.get_state("y");
            b.set_state("x", y);
            b.ret(&[]);
        });
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::LoadState { var: 1, .. })));
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::StoreState { var: 0, .. })));
        assert_eq!(p.state_vars, vec!["x", "y"]);
    }

    #[test]
    fn if_compiles_to_jumps() {
        let p = compile(|b| {
            let x = b.get_state("x");
            let z = b.const_f(0.0);
            let c = b.cmpf(limpet_ir::CmpFPred::Ogt, x, z);
            let r = b.if_op(
                c,
                &[Type::F64],
                |b| {
                    let v = b.const_f(1.0);
                    b.yield_(&[v]);
                },
                |b| {
                    let v = b.const_f(2.0);
                    b.yield_(&[v]);
                },
            );
            b.set_state("x", r[0]);
            b.ret(&[]);
        });
        let jumps = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Jump { .. } | Instr::JumpIfNot { .. }))
            .count();
        assert_eq!(jumps, 2);
        // Targets are in range.
        for i in &p.instrs {
            match i {
                Instr::Jump { target } | Instr::JumpIfNot { target, .. } => {
                    assert!((*target as usize) <= p.instrs.len());
                }
                _ => {}
            }
        }
    }

    #[test]
    fn vector_if_condition_is_rejected() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        {
            let body = f.body();
            let c = f.push_op(
                body,
                limpet_ir::OpKind::ConstantBool(true),
                vec![],
                &[Type::vector(4, limpet_ir::ScalarType::I1)],
                limpet_ir::Attrs::new(),
                vec![],
            );
            let cv = f.op(c).result();
            let then_r = f.new_region(&[]);
            let else_r = f.new_region(&[]);
            f.push_op(
                then_r,
                limpet_ir::OpKind::Yield,
                vec![],
                &[],
                limpet_ir::Attrs::new(),
                vec![],
            );
            f.push_op(
                else_r,
                limpet_ir::OpKind::Yield,
                vec![],
                &[],
                limpet_ir::Attrs::new(),
                vec![],
            );
            f.push_op(
                body,
                limpet_ir::OpKind::If,
                vec![cv],
                &[],
                limpet_ir::Attrs::new(),
                vec![then_r, else_r],
            );
            f.push_op(
                body,
                limpet_ir::OpKind::Return,
                vec![],
                &[],
                limpet_ir::Attrs::new(),
                vec![],
            );
        }
        m.add_func(f);
        let err = compile_program(&m, &[], &[], &[]).unwrap_err();
        assert!(err.0.contains("if-converted"));
    }

    #[test]
    fn for_loop_compiles_with_back_edge() {
        let p = compile(|b| {
            let lb = b.const_index(0);
            let ub = b.const_index(3);
            let st = b.const_index(1);
            let x0 = b.get_state("x");
            let r = b.for_op(lb, ub, st, &[x0], |b, _iv, iters| {
                let k = b.const_f(0.5);
                let n = b.mulf(iters[0], k);
                b.yield_(&[n]);
            });
            b.set_state("x", r[0]);
            b.ret(&[]);
        });
        // Contains a backward jump.
        let has_back_edge = p.instrs.iter().enumerate().any(|(i, ins)| match ins {
            Instr::Jump { target } => (*target as usize) < i,
            _ => false,
        });
        assert!(has_back_edge);
    }

    #[test]
    fn disassembly_is_readable() {
        let p = compile(|b| {
            let x = b.get_state("x");
            let two = b.const_f(2.0);
            let y = b.mulf(x, two);
            let e = b.exp(y);
            b.set_state("y", e);
            b.ret(&[]);
        });
        let d = p.disassemble();
        assert!(d.contains("load state.x"), "{d}");
        assert!(d.contains("Mul"), "{d}");
        assert!(d.contains("exp("), "{d}");
        assert!(d.contains("store state.y"), "{d}");
        assert!(d.trim_end().ends_with("ret"), "{d}");
        assert_eq!(d.lines().count(), p.instrs.len());
    }

    #[test]
    fn lut_scalar_flag_selects_instruction() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let k = b.get_ext("Vm");
        let v = b.lut_col("Vm", 0, k);
        b.set_state("x", v);
        b.ret(&[]);
        m.add_func(f);
        m.luts.push(limpet_ir::LutSpec {
            name: "Vm".into(),
            lo: 0.0,
            hi: 1.0,
            step: 0.1,
            func: "lut_Vm".into(),
            cols: vec!["c0".into()],
        });
        let p = compile_program(&m, &["x".into()], &["Vm".into()], &[]).unwrap();
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::LutVec { .. })));

        // Mark scalar and recompile.
        let f = m.func_mut("compute").unwrap();
        let targets: Vec<_> = f
            .walk_ops()
            .into_iter()
            .filter(|&(_, _, op)| f.op(op).kind == OpKind::LutCol)
            .map(|(_, _, op)| op)
            .collect();
        for t in targets {
            f.op_mut(t).attrs.set("scalar_interp", true);
        }
        let p2 = compile_program(&m, &["x".into()], &["Vm".into()], &[]).unwrap();
        assert!(p2
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::LutScalar { .. })));
    }
}
