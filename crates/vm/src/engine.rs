//! The execution engine: a `W`-lane register virtual machine.
//!
//! Each bytecode instruction processes `W` cells in a tight lane loop the
//! Rust compiler auto-vectorizes, so a kernel compiled at width 8
//! ("AVX-512") amortizes per-instruction dispatch over eight cells while
//! the baseline width-1 kernel pays it per cell — reproducing the
//! mechanism behind the paper's speedups. Uniform work (parameters, `dt`,
//! loop counters) costs the same at any width, which is why small models
//! gain less, as in the paper's Fig. 2.
//!
//! Math calls use [`crate::vmath`] block kernels at `W > 1` (the SVML
//! stand-in) and plain `std` scalar calls at `W == 1` (the unvectorized
//! libm of the baseline).

use crate::bytecode::{compile_program, BBin, CompileError, FBin, IBin, Instr, Program};
use crate::eval::{eval_func, ParamOnlyContext, Val};
use crate::lut::LutData;
use crate::state::{CellStates, ExtArrays};
use limpet_ir::{MathFn, Module};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Static model facts the kernel needs to bind storage: names, order, and
/// initial values of state variables, external variables, and parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelInfo {
    /// State variable names in storage order.
    pub state_names: Vec<String>,
    /// Initial state values (same order).
    pub state_inits: Vec<f64>,
    /// External variable names in storage order.
    pub ext_names: Vec<String>,
    /// Initial external values (same order).
    pub ext_inits: Vec<f64>,
    /// Parameter `(name, value)` pairs.
    pub params: Vec<(String, f64)>,
}

/// Per-step simulation context.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimContext {
    /// Integration time step (ms).
    pub dt: f64,
    /// Current simulation time (ms).
    pub t: f64,
}

/// Dynamic operation counts for the roofline model (paper §4.5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Profile {
    /// Floating-point operations (transcendental calls weighted).
    pub flops: u64,
    /// Bytes read from state/external/LUT memory.
    pub bytes_read: u64,
    /// Bytes written to state/external memory.
    pub bytes_written: u64,
    /// Math-library call count (per lane).
    pub math_calls: u64,
    /// Executed instruction count.
    pub instrs: u64,
}

impl Profile {
    /// Operational intensity in Flops/Byte.
    pub fn intensity(&self) -> f64 {
        self.flops as f64 / (self.bytes_read + self.bytes_written).max(1) as f64
    }

    /// Accumulates another profile.
    pub fn add(&mut self, other: &Profile) {
        self.flops += other.flops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.math_calls += other.math_calls;
        self.instrs += other.instrs;
    }
}

/// Access to an attached parent model's state (multimodel support).
#[derive(Debug)]
pub struct ParentView<'a> {
    /// The parent model's cell states (same cell count).
    pub states: &'a mut CellStates,
    /// Maps the kernel's parent-variable slots to state indices in
    /// `states`.
    pub var_map: Vec<usize>,
}

/// A compiled, executable ionic-model kernel.
///
/// # Examples
///
/// ```
/// use limpet_vm::{Kernel, ModelInfo, SimContext, CellStates, ExtArrays, StateLayout};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = limpet_easyml::compile_model("decay", "diff_x = -x;")?;
/// let lowered = limpet_codegen::pipeline::baseline(&model);
/// let info = ModelInfo {
///     state_names: vec!["x".into()],
///     state_inits: vec![1.0],
///     ..Default::default()
/// };
/// let kernel = Kernel::from_module(&lowered.module, &info)?;
/// let mut state = CellStates::new(8, &[1.0], StateLayout::Aos);
/// let mut ext = ExtArrays::new(8, &[]);
/// let ctx = SimContext { dt: 0.01, t: 0.0 };
/// kernel.run_step(&mut state, &mut ext, None, ctx);
/// assert!((state.get(0, 0) - 0.99).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
/// All heap-allocated parts (program, parameter snapshot, lookup tables,
/// model facts) sit behind [`Arc`], so `Clone` is a handful of refcount
/// bumps: clones share one compiled program and one set of LUT buffers.
/// This is what lets a kernel cache hand the same compilation to many
/// simulations (and many threads) without re-lowering or re-tabulating.
#[derive(Debug, Clone)]
pub struct Kernel {
    name: Arc<str>,
    program: Arc<Program>,
    width: usize,
    param_values: Arc<[f64]>,
    luts: Arc<[LutData]>,
    info: Arc<ModelInfo>,
    /// Full-population steps executed through this compilation, shared by
    /// every clone (relaxed increments — a promotion heuristic, not an
    /// exact count under contention).
    steps: Arc<AtomicU64>,
}

impl Kernel {
    /// Compiles a lowered module against the given model facts,
    /// precomputing all lookup tables.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the module cannot be expressed in
    /// bytecode or a LUT function fails to evaluate.
    pub fn from_module(module: &Module, info: &ModelInfo) -> Result<Kernel, CompileError> {
        Kernel::from_module_opt(module, info, crate::optimize::bytecode_opt_enabled())
            .map(|(kernel, _)| kernel)
    }

    /// Like [`Kernel::from_module`] but with explicit control over the
    /// bytecode optimizer (ignoring the process-global toggle), also
    /// returning the optimizer's counters.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Kernel::from_module`].
    pub fn from_module_opt(
        module: &Module,
        info: &ModelInfo,
        optimize: bool,
    ) -> Result<(Kernel, crate::optimize::OptStats), CompileError> {
        let width = module.attrs.i64_of("vector_width").unwrap_or(1) as usize;
        if !matches!(width, 1 | 2 | 4 | 8) {
            return Err(CompileError(format!("unsupported vector width {width}")));
        }
        let param_names: Vec<String> = info.params.iter().map(|(n, _)| n.clone()).collect();
        let mut program =
            compile_program(module, &info.state_names, &info.ext_names, &param_names)?;
        // The kernel must only touch variables the storage binding covers;
        // extra names would index out of bounds at runtime.
        if program.state_vars.len() > info.state_names.len() {
            let unknown = &program.state_vars[info.state_names.len()..];
            return Err(CompileError(format!(
                "kernel references state variable(s) {unknown:?} not in the model binding"
            )));
        }
        if program.ext_vars.len() > info.ext_names.len() {
            let unknown = &program.ext_vars[info.ext_names.len()..];
            return Err(CompileError(format!(
                "kernel references external variable(s) {unknown:?} not in the model binding"
            )));
        }
        let stats = if optimize {
            crate::optimize::optimize_program(&mut program)
        } else {
            crate::optimize::OptStats::default()
        };
        let param_map: HashMap<&str, f64> =
            info.params.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let param_values: Vec<f64> = program
            .params
            .iter()
            .map(|n| *param_map.get(n.as_str()).unwrap_or(&0.0))
            .collect();

        // Precompute lookup tables by evaluating the @lut_* functions.
        let mut ctx = ParamOnlyContext {
            params: info.params.iter().cloned().collect(),
        };
        let mut luts = Vec::with_capacity(module.luts.len());
        for spec in &module.luts {
            let cols = spec.cols.len().max(1);
            let mut error = None;
            let table = LutData::build(
                spec.lo,
                spec.hi,
                spec.step,
                cols,
                |key, out| match eval_func(module, &spec.func, &[Val::F(key)], &mut ctx) {
                    Ok(vals) => {
                        for (o, v) in out.iter_mut().zip(vals) {
                            *o = v.f();
                        }
                    }
                    Err(e) => error = Some(e),
                },
            );
            if let Some(e) = error {
                return Err(CompileError(format!(
                    "failed to evaluate @{}: {e}",
                    spec.func
                )));
            }
            luts.push(table);
        }

        Ok((
            Kernel {
                name: module.name().into(),
                program: Arc::new(program),
                width,
                param_values: param_values.into(),
                luts: luts.into(),
                info: Arc::new(info.clone()),
                steps: Arc::new(AtomicU64::new(0)),
            },
            stats,
        ))
    }

    /// Compiles the optimized and the unoptimized kernel of one module
    /// in a single call, sharing the lookup-table tabulation and
    /// parameter binding between them (tabulation evaluates the `@lut_*`
    /// functions over thousands of keys — the expensive half of kernel
    /// construction, and identical whichever way the toggle points).
    /// Returns `(optimized, its stats, unoptimized)` — the pair
    /// differential opt-on/off comparisons and ablation benchmarks need.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Kernel::from_module`].
    pub fn from_module_both(
        module: &Module,
        info: &ModelInfo,
    ) -> Result<(Kernel, crate::optimize::OptStats, Kernel), CompileError> {
        let (raw, _) = Kernel::from_module_opt(module, info, false)?;
        let mut program = (*raw.program).clone();
        let stats = crate::optimize::optimize_program(&mut program);
        let opt = Kernel {
            program: Arc::new(program),
            steps: Arc::new(AtomicU64::new(0)),
            ..raw.clone()
        };
        Ok((opt, stats, raw))
    }

    /// Reassembles an executable kernel from persisted parts — the
    /// disk-cache load path. Performs the same binding validation as
    /// [`Kernel::from_module`] (the program's symbol tables must match
    /// the model facts exactly, since `compile_program` seeds them from
    /// the same orders), and recomputes the parameter snapshot from
    /// `info` with the identical expression, so a reconstructed kernel
    /// computes bit-identical trajectories.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when `width` is unsupported or the
    /// program's state/external/LUT bindings disagree with `info` — the
    /// signature of a stale or mismatched cache entry.
    pub fn from_parts(
        name: &str,
        program: Program,
        width: usize,
        info: &ModelInfo,
        luts: Vec<LutData>,
    ) -> Result<Kernel, CompileError> {
        if !matches!(width, 1 | 2 | 4 | 8) {
            return Err(CompileError(format!("unsupported vector width {width}")));
        }
        if program.state_vars != info.state_names {
            return Err(CompileError(format!(
                "persisted state binding {:?} does not match the model's {:?}",
                program.state_vars, info.state_names
            )));
        }
        if program.ext_vars != info.ext_names {
            return Err(CompileError(format!(
                "persisted external binding {:?} does not match the model's {:?}",
                program.ext_vars, info.ext_names
            )));
        }
        if program.lut_tables.len() != luts.len() {
            return Err(CompileError(format!(
                "persisted kernel references {} lut table(s) but {} were provided",
                program.lut_tables.len(),
                luts.len()
            )));
        }
        let param_map: HashMap<&str, f64> =
            info.params.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let param_values: Vec<f64> = program
            .params
            .iter()
            .map(|n| *param_map.get(n.as_str()).unwrap_or(&0.0))
            .collect();
        Ok(Kernel {
            name: name.into(),
            program: Arc::new(program),
            width,
            param_values: param_values.into(),
            luts: luts.into(),
            info: Arc::new(info.clone()),
            steps: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Whether two kernels share the same underlying compilation (the
    /// same `Arc`'d program), i.e. one is a cheap clone of the other.
    pub fn shares_compilation(&self, other: &Kernel) -> bool {
        Arc::ptr_eq(&self.program, &other.program)
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The lane count this kernel was compiled at.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The model facts the kernel was compiled against.
    pub fn info(&self) -> &ModelInfo {
        &self.info
    }

    /// The compiled program (for inspection and instruction statistics).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The precomputed lookup tables, in program table order (what
    /// [`Kernel::from_parts`] takes back to reassemble the kernel).
    pub fn luts(&self) -> &[LutData] {
        &self.luts
    }

    /// Total LUT memory in bytes.
    pub fn lut_bytes(&self) -> usize {
        self.luts.iter().map(LutData::bytes).sum()
    }

    /// The parameter value snapshot, in program parameter order.
    pub fn param_values(&self) -> &[f64] {
        &self.param_values
    }

    /// Full-population steps executed through this compilation (summed
    /// over every clone — the kernel cache hands the same compilation to
    /// many simulations, and promotion heuristics want the total heat).
    pub fn executed_steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Raises the executed-step counter to at least `floor`. Used when a
    /// checkpoint restores a kernel's pre-crash heat so promotion
    /// heuristics resume where they left off; `fetch_max` keeps the
    /// restore idempotent and never double-counts a warm process.
    pub fn restore_executed_steps(&self, floor: u64) {
        self.steps.fetch_max(floor, Ordering::Relaxed);
    }

    /// Allocates state storage for `n_cells` with the given layout.
    pub fn new_states(&self, n_cells: usize, layout: crate::StateLayout) -> CellStates {
        CellStates::new(n_cells, &self.info.state_inits, layout)
    }

    /// Allocates external arrays for `n_cells`.
    pub fn new_ext(&self, n_cells: usize) -> ExtArrays {
        ExtArrays::new(n_cells, &self.info.ext_inits)
    }

    /// Runs one compute step over all cells.
    pub fn run_step(
        &self,
        state: &mut CellStates,
        ext: &mut ExtArrays,
        parent: Option<&mut ParentView<'_>>,
        ctx: SimContext,
    ) {
        self.steps.fetch_add(1, Ordering::Relaxed);
        let n = state.padded_cells();
        self.run_range(state, ext, parent, ctx, 0, n);
    }

    /// Runs one compute step over cells `[lo, hi)` (both multiples of the
    /// kernel width; used by the threaded driver to partition cells).
    ///
    /// # Panics
    ///
    /// Panics if `lo`/`hi` are not chunk-aligned.
    pub fn run_range(
        &self,
        state: &mut CellStates,
        ext: &mut ExtArrays,
        mut parent: Option<&mut ParentView<'_>>,
        ctx: SimContext,
        lo: usize,
        hi: usize,
    ) {
        assert!(
            lo.is_multiple_of(self.width) && hi.is_multiple_of(self.width),
            "unaligned range"
        );
        let mut prof = Profile::default();
        let mut regs = RegFile::new(&self.program, self.width);
        match self.width {
            1 => self.run_loop::<1, false>(
                &mut regs,
                state,
                ext,
                &mut parent,
                ctx,
                lo,
                hi,
                &mut prof,
            ),
            2 => self.run_loop::<2, false>(
                &mut regs,
                state,
                ext,
                &mut parent,
                ctx,
                lo,
                hi,
                &mut prof,
            ),
            4 => self.run_loop::<4, false>(
                &mut regs,
                state,
                ext,
                &mut parent,
                ctx,
                lo,
                hi,
                &mut prof,
            ),
            8 => self.run_loop::<8, false>(
                &mut regs,
                state,
                ext,
                &mut parent,
                ctx,
                lo,
                hi,
                &mut prof,
            ),
            _ => unreachable!(),
        }
    }

    /// Runs one step over all cells while counting operations.
    pub fn run_step_profiled(
        &self,
        state: &mut CellStates,
        ext: &mut ExtArrays,
        parent: Option<&mut ParentView<'_>>,
        ctx: SimContext,
    ) -> Profile {
        let mut prof = Profile::default();
        let mut regs = RegFile::new(&self.program, self.width);
        let n = state.padded_cells();
        let mut parent = parent;
        match self.width {
            1 => self.run_loop::<1, true>(&mut regs, state, ext, &mut parent, ctx, 0, n, &mut prof),
            2 => self.run_loop::<2, true>(&mut regs, state, ext, &mut parent, ctx, 0, n, &mut prof),
            4 => self.run_loop::<4, true>(&mut regs, state, ext, &mut parent, ctx, 0, n, &mut prof),
            8 => self.run_loop::<8, true>(&mut regs, state, ext, &mut parent, ctx, 0, n, &mut prof),
            _ => unreachable!(),
        }
        prof
    }

    #[allow(clippy::too_many_arguments)]
    fn run_loop<const W: usize, const COUNT: bool>(
        &self,
        regs: &mut RegFile,
        state: &mut CellStates,
        ext: &mut ExtArrays,
        parent: &mut Option<&mut ParentView<'_>>,
        ctx: SimContext,
        lo: usize,
        hi: usize,
        prof: &mut Profile,
    ) {
        let mut cell0 = lo;
        while cell0 < hi {
            self.exec_chunk::<W, COUNT>(regs, cell0, state, ext, parent, ctx, prof);
            cell0 += W;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_chunk<const W: usize, const COUNT: bool>(
        &self,
        regs: &mut RegFile,
        cell0: usize,
        state: &mut CellStates,
        ext: &mut ExtArrays,
        parent: &mut Option<&mut ParentView<'_>>,
        ctx: SimContext,
        prof: &mut Profile,
    ) {
        let f = &mut regs.f;
        let bbuf = &mut regs.b;
        let ibuf = &mut regs.i;
        let instrs = &self.program.instrs;
        let mut pc = 0usize;

        macro_rules! fb {
            ($r:expr) => {{
                let base = $r as usize * W;
                let mut out = [0.0f64; W];
                out.copy_from_slice(&f[base..base + W]);
                out
            }};
        }
        macro_rules! fw {
            ($r:expr, $v:expr) => {{
                let base = $r as usize * W;
                f[base..base + W].copy_from_slice(&$v);
            }};
        }
        macro_rules! bb {
            ($r:expr) => {{
                let base = $r as usize * W;
                let mut out = [false; W];
                out.copy_from_slice(&bbuf[base..base + W]);
                out
            }};
        }
        macro_rules! bw {
            ($r:expr, $v:expr) => {{
                let base = $r as usize * W;
                bbuf[base..base + W].copy_from_slice(&$v);
            }};
        }

        loop {
            if COUNT {
                prof.instrs += 1;
            }
            match &instrs[pc] {
                Instr::ConstF { dst, v } => fw!(*dst, [*v; W]),
                Instr::ConstI { dst, v } => ibuf[*dst as usize] = *v,
                Instr::ConstB { dst, v } => bw!(*dst, [*v; W]),
                Instr::MovF { dst, src } => {
                    let v = fb!(*src);
                    fw!(*dst, v);
                }
                Instr::MovB { dst, src } => {
                    let v = bb!(*src);
                    bw!(*dst, v);
                }
                Instr::MovI { dst, src } => ibuf[*dst as usize] = ibuf[*src as usize],
                Instr::LoadParam { dst, idx } => {
                    fw!(*dst, [self.param_values[*idx as usize]; W])
                }
                Instr::LoadDt { dst } => fw!(*dst, [ctx.dt; W]),
                Instr::LoadTime { dst } => fw!(*dst, [ctx.t; W]),
                Instr::CellIndex { dst } => ibuf[*dst as usize] = cell0 as i64,
                Instr::LoadState { dst, var } => {
                    let base = *dst as usize * W;
                    state.load_block(cell0, *var as usize, &mut f[base..base + W]);
                    if COUNT {
                        prof.bytes_read += 8 * W as u64;
                    }
                }
                Instr::StoreState { src, var } => {
                    let v = fb!(*src);
                    state.store_block(cell0, *var as usize, &v);
                    if COUNT {
                        prof.bytes_written += 8 * W as u64;
                    }
                }
                Instr::LoadExt { dst, var } => {
                    let base = *dst as usize * W;
                    ext.load_block(cell0, *var as usize, &mut f[base..base + W]);
                    if COUNT {
                        prof.bytes_read += 8 * W as u64;
                    }
                }
                Instr::StoreExt { src, var } => {
                    let v = fb!(*src);
                    ext.store_block(cell0, *var as usize, &v);
                    if COUNT {
                        prof.bytes_written += 8 * W as u64;
                    }
                }
                Instr::HasParent { dst } => bw!(*dst, [parent.is_some(); W]),
                Instr::LoadParentState { dst, var, fallback } => {
                    match parent {
                        Some(p) => {
                            let base = *dst as usize * W;
                            let pv = p.var_map[*var as usize];
                            p.states.load_block(cell0, pv, &mut f[base..base + W]);
                        }
                        None => {
                            let v = fb!(*fallback);
                            fw!(*dst, v);
                        }
                    }
                    if COUNT {
                        prof.bytes_read += 8 * W as u64;
                    }
                }
                Instr::StoreParentState { src, var } => {
                    if let Some(p) = parent {
                        let v = fb!(*src);
                        let pv = p.var_map[*var as usize];
                        p.states.store_block(cell0, pv, &v);
                        if COUNT {
                            prof.bytes_written += 8 * W as u64;
                        }
                    }
                }
                Instr::BinF { op, dst, a, b } => {
                    let av = fb!(*a);
                    let bv = fb!(*b);
                    fw!(*dst, fbin_block::<W>(*op, &av, &bv));
                    if COUNT {
                        prof.flops += W as u64;
                    }
                }
                Instr::BinFK { op, dst, a, k } => {
                    let av = fb!(*a);
                    fw!(*dst, fbin_block::<W>(*op, &av, &[*k; W]));
                    if COUNT {
                        prof.flops += W as u64;
                    }
                }
                Instr::BinKF { op, dst, k, a } => {
                    let av = fb!(*a);
                    fw!(*dst, fbin_block::<W>(*op, &[*k; W], &av));
                    if COUNT {
                        prof.flops += W as u64;
                    }
                }
                Instr::LoadStateOp { op, dst, var, b } => {
                    let mut lv = [0.0f64; W];
                    state.load_block(cell0, *var as usize, &mut lv);
                    let bv = fb!(*b);
                    fw!(*dst, fbin_block::<W>(*op, &lv, &bv));
                    if COUNT {
                        prof.bytes_read += 8 * W as u64;
                        prof.flops += W as u64;
                    }
                }
                Instr::LoadExtOp { op, dst, var, b } => {
                    let mut lv = [0.0f64; W];
                    ext.load_block(cell0, *var as usize, &mut lv);
                    let bv = fb!(*b);
                    fw!(*dst, fbin_block::<W>(*op, &lv, &bv));
                    if COUNT {
                        prof.bytes_read += 8 * W as u64;
                        prof.flops += W as u64;
                    }
                }
                Instr::NegF { dst, a } => {
                    let mut av = fb!(*a);
                    for v in av.iter_mut() {
                        *v = -*v;
                    }
                    fw!(*dst, av);
                    if COUNT {
                        prof.flops += W as u64;
                    }
                }
                Instr::FmaF { dst, a, b, c } => {
                    let av = fb!(*a);
                    let bv = fb!(*b);
                    let cv = fb!(*c);
                    let mut out = [0.0f64; W];
                    for i in 0..W {
                        out[i] = av[i] * bv[i] + cv[i];
                    }
                    fw!(*dst, out);
                    if COUNT {
                        prof.flops += 2 * W as u64;
                    }
                }
                Instr::Math1 { f: mf, dst, a } => {
                    let mut v = fb!(*a);
                    apply_math1::<W>(*mf, &mut v);
                    fw!(*dst, v);
                    if COUNT {
                        prof.flops += math_flops(*mf) * W as u64;
                        prof.math_calls += W as u64;
                    }
                }
                Instr::Math2 { f: mf, dst, a, b } => {
                    let mut av = fb!(*a);
                    let bv = fb!(*b);
                    apply_math2::<W>(*mf, &mut av, &bv);
                    fw!(*dst, av);
                    if COUNT {
                        prof.flops += math_flops(*mf) * W as u64;
                        prof.math_calls += W as u64;
                    }
                }
                Instr::CmpF { pred, dst, a, b } => {
                    let av = fb!(*a);
                    let bv = fb!(*b);
                    let mut out = [false; W];
                    for i in 0..W {
                        out[i] = pred.apply(av[i], bv[i]);
                    }
                    bw!(*dst, out);
                    if COUNT {
                        prof.flops += W as u64;
                    }
                }
                Instr::CmpI { pred, dst, a, b } => {
                    let r = pred.apply(ibuf[*a as usize], ibuf[*b as usize]);
                    bw!(*dst, [r; W]);
                }
                Instr::BinB { op, dst, a, b } => {
                    let av = bb!(*a);
                    let bv = bb!(*b);
                    let mut out = [false; W];
                    match op {
                        BBin::And => {
                            for i in 0..W {
                                out[i] = av[i] && bv[i];
                            }
                        }
                        BBin::Or => {
                            for i in 0..W {
                                out[i] = av[i] || bv[i];
                            }
                        }
                        BBin::Xor => {
                            for i in 0..W {
                                out[i] = av[i] ^ bv[i];
                            }
                        }
                    }
                    bw!(*dst, out);
                }
                Instr::SelectF { dst, cond, a, b } => {
                    let cv = bb!(*cond);
                    let av = fb!(*a);
                    let bv = fb!(*b);
                    let mut out = [0.0f64; W];
                    for i in 0..W {
                        out[i] = if cv[i] { av[i] } else { bv[i] };
                    }
                    fw!(*dst, out);
                    if COUNT {
                        prof.flops += W as u64;
                    }
                }
                Instr::SelectB { dst, cond, a, b } => {
                    let cv = bb!(*cond);
                    let av = bb!(*a);
                    let bv = bb!(*b);
                    let mut out = [false; W];
                    for i in 0..W {
                        out[i] = if cv[i] { av[i] } else { bv[i] };
                    }
                    bw!(*dst, out);
                }
                Instr::SIToFP { dst, a } => {
                    fw!(*dst, [ibuf[*a as usize] as f64; W]);
                }
                Instr::BinI { op, dst, a, b } => {
                    let (av, bv) = (ibuf[*a as usize], ibuf[*b as usize]);
                    ibuf[*dst as usize] = match op {
                        IBin::Add => av.wrapping_add(bv),
                        IBin::Sub => av.wrapping_sub(bv),
                        IBin::Mul => av.wrapping_mul(bv),
                    };
                }
                Instr::LutVec {
                    table,
                    col,
                    dst,
                    key,
                } => {
                    let keys = fb!(*key);
                    let mut out = [0.0f64; W];
                    self.luts[*table as usize].interp_block(&keys, *col as usize, &mut out);
                    fw!(*dst, out);
                    if COUNT {
                        prof.bytes_read += 16 * W as u64;
                        prof.flops += 5 * W as u64;
                    }
                }
                Instr::LutScalar {
                    table,
                    col,
                    dst,
                    key,
                } => {
                    let keys = fb!(*key);
                    let mut out = [0.0f64; W];
                    self.luts[*table as usize].interp_scalar_calls(&keys, *col as usize, &mut out);
                    fw!(*dst, out);
                    if COUNT {
                        prof.bytes_read += 16 * W as u64;
                        prof.flops += 5 * W as u64;
                    }
                }
                Instr::LutCubic {
                    table,
                    col,
                    dst,
                    key,
                } => {
                    let keys = fb!(*key);
                    let mut out = [0.0f64; W];
                    self.luts[*table as usize].interp_block_cubic(&keys, *col as usize, &mut out);
                    fw!(*dst, out);
                    if COUNT {
                        prof.bytes_read += 32 * W as u64;
                        prof.flops += 14 * W as u64;
                    }
                }
                Instr::Jump { target } => {
                    pc = *target as usize;
                    continue;
                }
                Instr::JumpIfNot { cond, target } => {
                    if !bbuf[*cond as usize * W] {
                        pc = *target as usize;
                        continue;
                    }
                }
                Instr::Ret => return,
            }
            pc += 1;
        }
    }
}

/// Per-invocation register storage.
#[derive(Debug)]
struct RegFile {
    f: Vec<f64>,
    b: Vec<bool>,
    i: Vec<i64>,
}

impl RegFile {
    fn new(p: &Program, width: usize) -> RegFile {
        RegFile {
            f: vec![0.0; p.n_fregs.max(1) * width],
            b: vec![false; p.n_bregs.max(1) * width],
            i: vec![0; p.n_iregs.max(1)],
        }
    }
}

/// Elementwise float binop over one `W`-lane block. Shared by the plain,
/// constant-operand, and load-op dispatch arms so every form computes
/// bit-identical results; the `op` match is loop-invariant and hoisted,
/// leaving the per-lane loops free to vectorize.
#[inline(always)]
fn fbin_block<const W: usize>(op: FBin, a: &[f64; W], b: &[f64; W]) -> [f64; W] {
    let mut out = [0.0f64; W];
    match op {
        FBin::Add => {
            for i in 0..W {
                out[i] = a[i] + b[i];
            }
        }
        FBin::Sub => {
            for i in 0..W {
                out[i] = a[i] - b[i];
            }
        }
        FBin::Mul => {
            for i in 0..W {
                out[i] = a[i] * b[i];
            }
        }
        FBin::Div => {
            for i in 0..W {
                out[i] = a[i] / b[i];
            }
        }
        FBin::Rem => {
            for i in 0..W {
                out[i] = a[i] % b[i];
            }
        }
        FBin::Min => {
            for i in 0..W {
                out[i] = a[i].min(b[i]);
            }
        }
        FBin::Max => {
            for i in 0..W {
                out[i] = a[i].max(b[i]);
            }
        }
    }
    out
}

/// Applies a unary math function to a lane block: `std` per lane at
/// width 1 (baseline libm), block kernels otherwise (SVML stand-in).
#[inline]
fn apply_math1<const W: usize>(f: MathFn, v: &mut [f64; W]) {
    if W == 1 {
        v[0] = f.eval(v[0], 0.0);
        return;
    }
    match f {
        MathFn::Exp => crate::vmath::exp_block(v),
        MathFn::Expm1 => crate::vmath::expm1_block(v),
        MathFn::Log => crate::vmath::log_block(v),
        MathFn::Log1p => crate::vmath::log1p_block(v),
        MathFn::Log10 => crate::vmath::log10_block(v),
        MathFn::Log2 => crate::vmath::log2_block(v),
        MathFn::Sqrt => crate::vmath::sqrt_block(v),
        MathFn::Cbrt => crate::vmath::cbrt_block(v),
        MathFn::Sin => crate::vmath::sin_block(v),
        MathFn::Cos => crate::vmath::cos_block(v),
        MathFn::Tan => crate::vmath::tan_block(v),
        MathFn::Asin => crate::vmath::asin_block(v),
        MathFn::Acos => crate::vmath::acos_block(v),
        MathFn::Atan => crate::vmath::atan_block(v),
        MathFn::Sinh => crate::vmath::sinh_block(v),
        MathFn::Cosh => crate::vmath::cosh_block(v),
        MathFn::Tanh => crate::vmath::tanh_block(v),
        MathFn::Abs => crate::vmath::abs_block(v),
        MathFn::Floor => crate::vmath::floor_block(v),
        MathFn::Ceil => crate::vmath::ceil_block(v),
        MathFn::Round => crate::vmath::round_block(v),
        MathFn::Pow | MathFn::Atan2 | MathFn::CopySign => unreachable!("binary"),
    }
}

/// Applies a binary math function (result in `a`).
#[inline]
fn apply_math2<const W: usize>(f: MathFn, a: &mut [f64; W], b: &[f64; W]) {
    if W == 1 {
        a[0] = f.eval(a[0], b[0]);
        return;
    }
    match f {
        MathFn::Pow => crate::vmath::pow_block(a, b),
        MathFn::Atan2 => crate::vmath::atan2_block(a, b),
        MathFn::CopySign => crate::vmath::copysign_block(a, b),
        _ => unreachable!("unary"),
    }
}

/// Flop weight per math call for the roofline counts (transcendentals cost
/// a polynomial's worth of arithmetic, cheap functions one op).
fn math_flops(f: MathFn) -> u64 {
    match f {
        MathFn::Abs | MathFn::Floor | MathFn::Ceil | MathFn::Round | MathFn::CopySign => 1,
        MathFn::Sqrt => 4,
        MathFn::Pow => 40,
        _ => 20,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StateLayout;
    use limpet_ir::{Builder, Func, Module};

    /// Compiles a hand-built module into a kernel with states x, y.
    fn kernel(width: Option<u32>, build: impl FnOnce(&mut Builder<'_>)) -> Kernel {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        build(&mut b);
        m.add_func(f);
        if let Some(w) = width {
            m.attrs.set("vector_width", w as i64);
        }
        let info = ModelInfo {
            state_names: vec!["x".into(), "y".into()],
            state_inits: vec![1.0, 2.0],
            ext_names: vec!["Vm".into()],
            ext_inits: vec![-85.0],
            params: vec![("Cm".into(), 200.0)],
        };
        Kernel::from_module(&m, &info).unwrap()
    }

    #[test]
    fn decay_step_updates_state() {
        // x <- x + dt * (-x)
        let k = kernel(None, |b| {
            let x = b.get_state("x");
            let d = b.negf(x);
            let dt = b.dt();
            let upd = b.mulf(d, dt);
            let new = b.addf(x, upd);
            b.set_state("x", new);
            b.ret(&[]);
        });
        let mut st = k.new_states(10, StateLayout::Aos);
        let mut ext = k.new_ext(10);
        k.run_step(&mut st, &mut ext, None, SimContext { dt: 0.1, t: 0.0 });
        for cell in 0..10 {
            assert!((st.get(cell, 0) - 0.9).abs() < 1e-15);
            assert_eq!(st.get(cell, 1), 2.0); // untouched
        }
    }

    #[test]
    fn widths_agree_with_scalar() {
        // A kernel with branch-free mixed math.
        let build = |b: &mut Builder<'_>| {
            let x = b.get_state("x");
            let vm = b.get_ext("Vm");
            let p = b.param("Cm");
            let e = b.exp(x);
            let l = {
                let absx = b.math1(limpet_ir::MathFn::Abs, vm);
                let one = b.const_f(1.0);
                let xp1 = b.addf(absx, one);
                b.log(xp1)
            };
            let s = b.addf(e, l);
            let scaled = b.divf(s, p);
            b.set_state("y", scaled);
            b.ret(&[]);
        };
        let mut results: Vec<Vec<f64>> = Vec::new();
        for width in [None, Some(2), Some(4), Some(8)] {
            let k = kernel(width, build);
            let mut st = k.new_states(16, StateLayout::Aos);
            for cell in 0..16 {
                st.set(cell, 0, 0.1 * cell as f64);
            }
            let mut ext = k.new_ext(16);
            for cell in 0..16 {
                ext.set(cell, 0, -85.0 + cell as f64);
            }
            k.run_step(&mut st, &mut ext, None, SimContext { dt: 0.01, t: 0.0 });
            results.push((0..16).map(|c| st.get(c, 1)).collect());
        }
        for w in 1..results.len() {
            for (c, (got, want)) in results[w].iter().zip(&results[0]).enumerate() {
                let rel = (got - want).abs() / want.abs().max(1e-300);
                assert!(rel < 1e-11, "width idx {w} cell {c}: {got} vs {want}");
            }
        }
    }

    #[test]
    fn scalar_if_takes_correct_branch() {
        let k = kernel(None, |b| {
            let p = b.param("Cm");
            let hundred = b.const_f(100.0);
            let c = b.cmpf(limpet_ir::CmpFPred::Ogt, p, hundred); // 200 > 100
            let r = b.if_op(
                c,
                &[limpet_ir::Type::F64],
                |b| {
                    let v = b.const_f(7.0);
                    b.yield_(&[v]);
                },
                |b| {
                    let v = b.const_f(9.0);
                    b.yield_(&[v]);
                },
            );
            b.set_state("x", r[0]);
            b.ret(&[]);
        });
        let mut st = k.new_states(8, StateLayout::Aos);
        let mut ext = k.new_ext(8);
        k.run_step(&mut st, &mut ext, None, SimContext { dt: 0.1, t: 0.0 });
        assert_eq!(st.get(0, 0), 7.0);
    }

    #[test]
    fn for_loop_iterates() {
        // x <- x * 2^4 via a loop.
        let k = kernel(None, |b| {
            let x = b.get_state("x");
            let lb = b.const_index(0);
            let ub = b.const_index(4);
            let stp = b.const_index(1);
            let r = b.for_op(lb, ub, stp, &[x], |b, _iv, iters| {
                let two = b.const_f(2.0);
                let n = b.mulf(iters[0], two);
                b.yield_(&[n]);
            });
            b.set_state("x", r[0]);
            b.ret(&[]);
        });
        let mut st = k.new_states(8, StateLayout::Aos);
        let mut ext = k.new_ext(8);
        k.run_step(&mut st, &mut ext, None, SimContext { dt: 0.1, t: 0.0 });
        assert_eq!(st.get(0, 0), 16.0);
    }

    #[test]
    fn aos_and_aosoa_produce_identical_results() {
        let build = |b: &mut Builder<'_>| {
            let x = b.get_state("x");
            let y = b.get_state("y");
            let s = b.addf(x, y);
            let e = b.exp(s);
            b.set_state("x", e);
            b.ret(&[]);
        };
        let k = kernel(Some(8), build);
        let mut a = k.new_states(24, StateLayout::Aos);
        let mut b_ = k.new_states(24, StateLayout::AoSoA { block: 8 });
        for cell in 0..24 {
            a.set(cell, 0, cell as f64 * 0.01);
            b_.set(cell, 0, cell as f64 * 0.01);
        }
        let mut ext1 = k.new_ext(24);
        let mut ext2 = k.new_ext(24);
        let ctx = SimContext { dt: 0.1, t: 0.0 };
        k.run_step(&mut a, &mut ext1, None, ctx);
        k.run_step(&mut b_, &mut ext2, None, ctx);
        for cell in 0..24 {
            assert_eq!(a.get(cell, 0), b_.get(cell, 0), "cell {cell}");
        }
    }

    #[test]
    fn parent_view_reads_parent_state() {
        let k = kernel(None, |b| {
            let fb = b.const_f(-1.0);
            let v = b.get_parent_state("Vp", fb);
            b.set_state("x", v);
            b.ret(&[]);
        });
        let mut st = k.new_states(8, StateLayout::Aos);
        let mut ext = k.new_ext(8);
        let ctx = SimContext { dt: 0.1, t: 0.0 };

        // Without a parent: fallback.
        k.run_step(&mut st, &mut ext, None, ctx);
        assert_eq!(st.get(0, 0), -1.0);

        // With a parent: its state value.
        let mut pstates = CellStates::new(8, &[42.0], StateLayout::Aos);
        let mut pv = ParentView {
            states: &mut pstates,
            var_map: vec![0],
        };
        k.run_step(&mut st, &mut ext, Some(&mut pv), ctx);
        assert_eq!(st.get(0, 0), 42.0);
    }

    #[test]
    fn profile_counts_plausible() {
        let k = kernel(None, |b| {
            let x = b.get_state("x");
            let e = b.exp(x);
            b.set_state("x", e);
            b.ret(&[]);
        });
        let mut st = k.new_states(8, StateLayout::Aos);
        let mut ext = k.new_ext(8);
        let p = k.run_step_profiled(&mut st, &mut ext, None, SimContext { dt: 0.1, t: 0.0 });
        assert_eq!(p.bytes_read, 8 * 8);
        assert_eq!(p.bytes_written, 8 * 8);
        assert_eq!(p.math_calls, 8);
        assert!(p.flops >= 8 * 20);
        assert!(p.intensity() > 0.0);
    }

    #[test]
    fn run_range_partitions_cells() {
        let k = kernel(None, |b| {
            let x = b.get_state("x");
            let one = b.const_f(1.0);
            let n = b.addf(x, one);
            b.set_state("x", n);
            b.ret(&[]);
        });
        let mut st = k.new_states(16, StateLayout::Aos);
        let mut ext = k.new_ext(16);
        let ctx = SimContext { dt: 0.1, t: 0.0 };
        // Only the first half.
        k.run_range(&mut st, &mut ext, None, ctx, 0, 8);
        assert_eq!(st.get(0, 0), 2.0);
        assert_eq!(st.get(8, 0), 1.0);
    }

    #[test]
    fn from_module_both_matches_separate_compiles() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let x = b.get_state("x");
        let y = b.get_state("y");
        let p = b.mulf(x, y);
        let s = b.addf(p, x);
        b.set_state("x", s);
        b.ret(&[]);
        m.add_func(f);
        let info = ModelInfo {
            state_names: vec!["x".into(), "y".into()],
            state_inits: vec![1.0, 2.0],
            ext_names: vec![],
            ext_inits: vec![],
            params: vec![],
        };
        let (opt, stats, raw) = Kernel::from_module_both(&m, &info).unwrap();
        let (opt2, stats2) = Kernel::from_module_opt(&m, &info, true).unwrap();
        let (raw2, _) = Kernel::from_module_opt(&m, &info, false).unwrap();
        assert_eq!(*opt.program, *opt2.program);
        assert_eq!(*raw.program, *raw2.program);
        assert_eq!(stats, stats2);
        // Greedy fusion turns `load y` + `mul` into a load-op here.
        assert!(
            stats.changed() && stats.instrs_after < stats.instrs_before,
            "{stats:?}"
        );
        // The pair shares one LUT tabulation, not one program.
        assert!(Arc::ptr_eq(&opt.luts, &raw.luts));
        assert!(!opt.shares_compilation(&raw));
    }
}
