//! # limpet-vm
//!
//! The execution substrate of limpet-rs: a bytecode compiler and `W`-lane
//! register virtual machine that plays the role of the LLVM JIT + CPU SIMD
//! units in the original limpetMLIR system.
//!
//! * [`Kernel`] compiles a lowered IR module ([`limpet_ir::Module`]) into
//!   flat bytecode and executes it over cell populations.
//! * The lane count (1, 2, 4, 8) emulates scalar, SSE, AVX2, and AVX-512
//!   execution: one instruction dispatch covers `W` cells, and the `W`-lane
//!   inner loops auto-vectorize.
//! * [`CellStates`] provides the AoS / AoSoA data layouts of paper §3.4.1;
//!   [`ExtArrays`] the external-variable arrays of Listing 2.
//! * [`LutData`] implements lookup-table interpolation with both the
//!   vectorized path (paper §3.4.2) and the baseline scalar-call path.
//! * [`vmath`] is the Intel SVML stand-in: block math kernels.
//! * [`Profile`] counts flops and bytes for the roofline model (paper §4.5).
//!
//! # Examples
//!
//! Compile and run one forward-Euler step of a decay model:
//!
//! ```
//! use limpet_vm::{Kernel, ModelInfo, SimContext, StateLayout};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = limpet_easyml::compile_model("decay", "diff_x = -x;")?;
//! let lowered = limpet_codegen::pipeline::baseline(&model);
//! let info = ModelInfo {
//!     state_names: vec!["x".into()],
//!     state_inits: vec![1.0],
//!     ..Default::default()
//! };
//! let kernel = Kernel::from_module(&lowered.module, &info)?;
//! let mut state = kernel.new_states(100, StateLayout::Aos);
//! let mut ext = kernel.new_ext(100);
//! kernel.run_step(&mut state, &mut ext, None, SimContext { dt: 0.01, t: 0.0 });
//! assert!((state.get(0, 0) - 0.99).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bytecode;
mod engine;
mod eval;
mod lut;
mod optimize;
mod serialize;
mod state;
// rustfmt's width-fitting is superlinear on this file as a whole (minutes of
// CPU on 500 lines, though any subset formats instantly); skip it so
// `cargo fmt --check` terminates.
#[rustfmt::skip]
pub mod vmath;

pub use bytecode::{compile_program, BBin, CompileError, FBin, IBin, Instr, Program};
pub use engine::{Kernel, ModelInfo, ParentView, Profile, SimContext};
pub use eval::{eval_func, EvalContext, EvalError, ParamOnlyContext, Val};
pub use lut::LutData;
pub use optimize::{bytecode_opt_enabled, optimize_program, set_bytecode_opt, OptStats};
pub use serialize::{
    deserialize_luts, deserialize_program, serialize_luts, serialize_program,
    BYTECODE_FORMAT_VERSION,
};
pub use state::{CellStates, ExtArrays, StateLayout};
