//! Vectorized math kernels — the stand-in for Intel's SVML.
//!
//! The paper links the generated code against `libsvml` so that calls like
//! `exp` on vector operands stay vectorized (§4, footnote 2; §A.8). This
//! module provides the same capability: block functions over `W` lanes
//! implemented with branch-free polynomial range reduction, so the Rust
//! compiler can auto-vectorize the lane loop. Functions without a
//! polynomial implementation fall back to per-lane `std` calls (as SVML
//! itself does for rarely-used functions).
//!
//! Accuracy target is ~1e-12 relative over the ranges ionic models use;
//! the test suite checks each kernel against `std` on dense grids.

#![allow(clippy::needless_range_loop)] // index loops vectorize predictably here

/// Computes `e^x` per lane.
///
/// Range-reduces `x = k·ln2 + r` with `|r| ≤ ln2/2` and evaluates a
/// degree-11 Taylor polynomial for `e^r`, reconstructing with exponent
/// arithmetic. Overflow saturates to `inf`, underflow to `0`.
#[inline]
pub fn exp_block(x: &mut [f64]) {
    const LOG2E: f64 = std::f64::consts::LOG2_E;
    const LN2_HI: f64 = 6.931_471_803_691_238e-1;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    for v in x.iter_mut() {
        let xi = *v;
        // Saturate outside the representable range.
        if xi > 709.782_712_893_384 {
            *v = f64::INFINITY;
            continue;
        }
        if xi < -745.133_219_101_941_1 {
            *v = 0.0;
            continue;
        }
        if xi.is_nan() {
            *v = f64::NAN;
            continue;
        }
        let k = (xi * LOG2E).round();
        let r = (xi - k * LN2_HI) - k * LN2_LO;
        // e^r by Horner, degree 11 (|r| <= 0.3466 ⇒ error < 1e-16).
        let p = 1.0
            + r * (1.0
                + r * (0.5
                    + r * (1.0 / 6.0
                        + r * (1.0 / 24.0
                            + r * (1.0 / 120.0
                                + r * (1.0 / 720.0
                                    + r * (1.0 / 5040.0
                                        + r * (1.0 / 40320.0
                                            + r * (1.0 / 362880.0
                                                + r * (1.0 / 3628800.0
                                                    + r * (1.0 / 39916800.0)))))))))));
        // 2^k via exponent bits; |k| < 1100 so split into two halves to
        // stay in the normal range during reconstruction.
        let k = k as i64;
        let (k1, k2) = (k / 2, k - k / 2);
        let two_k1 = f64::from_bits((((k1 + 1023) as u64) << 52).min(0x7FE0_0000_0000_0000));
        let two_k2 = f64::from_bits((((k2 + 1023) as u64) << 52).min(0x7FE0_0000_0000_0000));
        *v = p * two_k1 * two_k2;
    }
}

/// Computes `ln(x)` per lane.
///
/// Reduces `x = m·2^e` with `m ∈ [√½, √2)` and evaluates the `atanh`
/// series in `s = (m−1)/(m+1)`. Non-positive inputs produce `NaN`/`-inf`
/// like `std`.
#[inline]
pub fn log_block(x: &mut [f64]) {
    const LN2: f64 = std::f64::consts::LN_2;
    for v in x.iter_mut() {
        let xi = *v;
        if xi < 0.0 || xi.is_nan() {
            *v = f64::NAN;
            continue;
        }
        if xi == 0.0 {
            *v = f64::NEG_INFINITY;
            continue;
        }
        if xi.is_infinite() {
            continue;
        }
        let bits = xi.to_bits();
        let mut e = ((bits >> 52) & 0x7FF) as i64 - 1023;
        let mut m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
        // Subnormals: renormalize.
        if (bits >> 52) & 0x7FF == 0 {
            let n = xi * 9_007_199_254_740_992.0; // 2^53
            let nb = n.to_bits();
            e = ((nb >> 52) & 0x7FF) as i64 - 1023 - 53;
            m = f64::from_bits((nb & 0x000F_FFFF_FFFF_FFFF) | 0x3FF0_0000_0000_0000);
        }
        if m > std::f64::consts::SQRT_2 {
            m *= 0.5;
            e += 1;
        }
        let s = (m - 1.0) / (m + 1.0);
        let s2 = s * s;
        // ln(m) = 2 s (1 + s²/3 + s⁴/5 + …): degree 13 is ample for
        // |s| ≤ 0.1716.
        let p = 1.0
            + s2 * (1.0 / 3.0
                + s2 * (1.0 / 5.0
                    + s2 * (1.0 / 7.0
                        + s2 * (1.0 / 9.0
                            + s2 * (1.0 / 11.0
                                + s2 * (1.0 / 13.0 + s2 * (1.0 / 15.0 + s2 / 17.0)))))));
        *v = 2.0 * s * p + e as f64 * LN2;
    }
}

/// Computes `tanh(x)` per lane via `1 − 2/(e^{2x}+1)`.
#[inline]
pub fn tanh_block(x: &mut [f64]) {
    let mut t = [0.0f64; 64];
    let n = x.len();
    let t = &mut t[..n];
    for i in 0..n {
        t[i] = 2.0 * x[i];
    }
    exp_block(t);
    for i in 0..n {
        x[i] = if x[i].is_nan() {
            f64::NAN
        } else {
            1.0 - 2.0 / (t[i] + 1.0)
        };
    }
}

/// Computes `sinh(x)` per lane via `(e^x − e^{−x})/2`.
#[inline]
pub fn sinh_block(x: &mut [f64]) {
    let n = x.len();
    let mut ep = [0.0f64; 64];
    let ep = &mut ep[..n];
    ep.copy_from_slice(x);
    exp_block(ep);
    for i in 0..n {
        x[i] = 0.5 * (ep[i] - 1.0 / ep[i]);
    }
}

/// Computes `cosh(x)` per lane via `(e^x + e^{−x})/2`.
#[inline]
pub fn cosh_block(x: &mut [f64]) {
    let n = x.len();
    let mut ep = [0.0f64; 64];
    let ep = &mut ep[..n];
    ep.copy_from_slice(x);
    exp_block(ep);
    for i in 0..n {
        x[i] = 0.5 * (ep[i] + 1.0 / ep[i]);
    }
}

/// Computes `e^x − 1` per lane (via `exp`; adequate for ionic-model use
/// where `expm1` appears in rate formulas away from 0).
#[inline]
pub fn expm1_block(x: &mut [f64]) {
    let n = x.len();
    let mut small = [false; 64];
    let small = &mut small[..n];
    let mut orig = [0.0f64; 64];
    let orig = &mut orig[..n];
    orig.copy_from_slice(x);
    for i in 0..n {
        small[i] = x[i].abs() < 1e-5;
    }
    exp_block(x);
    for i in 0..n {
        x[i] = if small[i] {
            // Series for tiny arguments keeps relative accuracy.
            orig[i] * (1.0 + orig[i] * (0.5 + orig[i] / 6.0))
        } else {
            x[i] - 1.0
        };
    }
}

/// Computes `ln(1+x)` per lane.
#[inline]
pub fn log1p_block(x: &mut [f64]) {
    let n = x.len();
    for i in 0..n {
        // Small arguments: series; otherwise delegate to log.
        if x[i].abs() < 1e-5 {
            let v = x[i];
            x[i] = v * (1.0 - v * (0.5 - v / 3.0));
        } else {
            let mut one = [1.0 + x[i]];
            log_block(&mut one);
            x[i] = one[0];
        }
    }
}

/// Computes `log10(x)` per lane.
#[inline]
pub fn log10_block(x: &mut [f64]) {
    log_block(x);
    for v in x.iter_mut() {
        *v *= std::f64::consts::LOG10_E;
    }
}

/// Computes `log2(x)` per lane.
#[inline]
pub fn log2_block(x: &mut [f64]) {
    log_block(x);
    for v in x.iter_mut() {
        *v *= std::f64::consts::LOG2_E;
    }
}

/// Computes `x^y` per lane via `exp(y·ln x)`, with the usual edge cases
/// (`x ≤ 0` delegates to `std`).
#[inline]
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(x > 0)` deliberately catches NaN
pub fn pow_block(x: &mut [f64], y: &[f64]) {
    let n = x.len();
    let mut lx = [0.0f64; 64];
    let lx = &mut lx[..n];
    lx.copy_from_slice(x);
    let mut any_special = false;
    for i in 0..n {
        if !(x[i] > 0.0) {
            any_special = true;
        }
    }
    log_block(lx);
    for i in 0..n {
        lx[i] *= y[i];
    }
    exp_block(lx);
    for i in 0..n {
        x[i] = if any_special && !(x[i] > 0.0) {
            x[i].powf(y[i])
        } else {
            lx[i]
        };
    }
}

/// Computes `sqrt(x)` per lane (hardware instruction; `std` is already
/// vector-friendly here).
#[inline]
pub fn sqrt_block(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = v.sqrt();
    }
}

/// Computes `sin(x)` per lane with Cody–Waite reduction to `[−π/4, π/4]`
/// and sin/cos minimax polynomials. Falls back to `std` for |x| ≥ 2^20.
#[inline]
pub fn sin_block(x: &mut [f64]) {
    sincos_block(x, false);
}

/// Computes `cos(x)` per lane (see [`sin_block`]).
#[inline]
pub fn cos_block(x: &mut [f64]) {
    sincos_block(x, true);
}

#[inline]
fn sincos_block(x: &mut [f64], want_cos: bool) {
    const FRAC_2_PI: f64 = std::f64::consts::FRAC_2_PI;
    // fdlibm-style split of pi/2 for Cody-Waite reduction.
    const PIO2_HI: f64 = 1.570_796_326_734_125_6;
    const PIO2_LO: f64 = 6.077_100_506_506_192e-11;
    const PIO2_LO2: f64 = 2.022_266_248_795_950_7e-21;
    for v in x.iter_mut() {
        let xi = *v;
        if !xi.is_finite() {
            *v = f64::NAN;
            continue;
        }
        if xi.abs() >= 1_048_576.0 {
            *v = if want_cos { xi.cos() } else { xi.sin() };
            continue;
        }
        let q = (xi * FRAC_2_PI).round();
        let r = ((xi - q * PIO2_HI) - q * PIO2_LO) - q * PIO2_LO2;
        let quadrant = ((q as i64 % 4) + 4) % 4;
        let r2 = r * r;
        let sin_r = r
            * (1.0
                + r2 * (-1.0 / 6.0
                    + r2 * (1.0 / 120.0
                        + r2 * (-1.0 / 5040.0
                            + r2 * (1.0 / 362880.0
                                + r2 * (-1.0 / 39916800.0 + r2 * (1.0 / 6227020800.0)))))));
        let cos_r = 1.0
            + r2 * (-0.5
                + r2 * (1.0 / 24.0
                    + r2 * (-1.0 / 720.0
                        + r2 * (1.0 / 40320.0
                            + r2 * (-1.0 / 3628800.0 + r2 * (1.0 / 479001600.0))))));
        let eff = if want_cos { quadrant + 1 } else { quadrant } % 4;
        *v = match eff {
            0 => sin_r,
            1 => cos_r,
            2 => -sin_r,
            _ => -cos_r,
        };
    }
}

/// Computes `tan(x)` per lane as `sin/cos`.
#[inline]
pub fn tan_block(x: &mut [f64]) {
    let n = x.len();
    let mut c = [0.0f64; 64];
    let c = &mut c[..n];
    c.copy_from_slice(x);
    sin_block(x);
    cos_block(c);
    for i in 0..n {
        x[i] /= c[i];
    }
}

macro_rules! scalar_fallback {
    ($(#[$doc:meta])* $name:ident, $method:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name(x: &mut [f64]) {
            for v in x.iter_mut() {
                *v = v.$method();
            }
        }
    };
}

scalar_fallback!(
    /// Per-lane `asin` (scalar `std` fallback, as SVML does for rare calls).
    asin_block, asin);
scalar_fallback!(
    /// Per-lane `acos` (scalar fallback).
    acos_block, acos);
scalar_fallback!(
    /// Per-lane `atan` (scalar fallback).
    atan_block, atan);
scalar_fallback!(
    /// Per-lane `cbrt` (scalar fallback).
    cbrt_block, cbrt);
scalar_fallback!(
    /// Per-lane `floor`.
    floor_block, floor);
scalar_fallback!(
    /// Per-lane `ceil`.
    ceil_block, ceil);
scalar_fallback!(
    /// Per-lane `round`.
    round_block, round);
scalar_fallback!(
    /// Per-lane `abs`.
    abs_block, abs);

/// Per-lane `atan2(y, x)` (scalar fallback).
#[inline]
pub fn atan2_block(y: &mut [f64], x: &[f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = yi.atan2(*xi);
    }
}

/// Per-lane `copysign`.
#[inline]
pub fn copysign_block(a: &mut [f64], b: &[f64]) {
    for (ai, bi) in a.iter_mut().zip(b) {
        *ai = ai.copysign(*bi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_grid(f: fn(&mut [f64]), reference: fn(f64) -> f64, lo: f64, hi: f64, tol: f64) {
        let n = 4001;
        for chunk_start in 0..(n / 8) {
            let mut xs = [0.0f64; 8];
            for (i, x) in xs.iter_mut().enumerate() {
                let k = chunk_start * 8 + i;
                *x = lo + (hi - lo) * (k as f64) / (n as f64 - 1.0);
            }
            let inputs = xs;
            f(&mut xs);
            for (x, &input) in xs.iter().zip(&inputs) {
                let want = reference(input);
                let got = *x;
                let denom = want.abs().max(1e-300);
                let rel = (got - want).abs() / denom;
                assert!(
                    rel < tol || (got - want).abs() < 1e-300,
                    "f({input}) = {got}, want {want} (rel {rel:.3e})"
                );
            }
        }
    }

    #[test]
    fn exp_matches_std() {
        check_grid(exp_block, f64::exp, -700.0, 700.0, 1e-12);
        check_grid(exp_block, f64::exp, -1.0, 1.0, 1e-14);
    }

    #[test]
    fn exp_edge_cases() {
        let mut v = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            800.0,
            -800.0,
        ];
        exp_block(&mut v);
        assert!(v[0].is_nan());
        assert_eq!(v[1], f64::INFINITY);
        assert_eq!(v[2], 0.0);
        assert_eq!(v[3], 1.0);
        assert_eq!(v[4], f64::INFINITY);
        assert_eq!(v[5], 0.0);
    }

    #[test]
    fn log_matches_std() {
        check_grid(log_block, f64::ln, 1e-8, 10.0, 1e-12);
        check_grid(log_block, f64::ln, 10.0, 1e6, 1e-13);
    }

    #[test]
    fn log_edge_cases() {
        let mut v = [0.0, -1.0, f64::INFINITY, 1.0];
        log_block(&mut v);
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert!(v[1].is_nan());
        assert_eq!(v[2], f64::INFINITY);
        assert_eq!(v[3], 0.0);
    }

    #[test]
    fn tanh_matches_std() {
        check_grid(tanh_block, f64::tanh, -20.0, 20.0, 1e-12);
    }

    #[test]
    fn sinh_cosh_match_std() {
        check_grid(sinh_block, f64::sinh, -20.0, 20.0, 1e-11);
        check_grid(cosh_block, f64::cosh, -20.0, 20.0, 1e-12);
    }

    #[test]
    fn expm1_log1p_match_std() {
        check_grid(expm1_block, f64::exp_m1, -5.0, 5.0, 1e-11);
        check_grid(expm1_block, f64::exp_m1, -1e-6, 1e-6, 1e-10);
        check_grid(log1p_block, f64::ln_1p, -0.9, 10.0, 1e-11);
    }

    #[test]
    fn log10_log2_match_std() {
        check_grid(log10_block, f64::log10, 1e-6, 1e6, 1e-12);
        check_grid(log2_block, f64::log2, 1e-6, 1e6, 1e-12);
    }

    #[test]
    fn trig_matches_std() {
        check_grid(sin_block, f64::sin, -100.0, 100.0, 1e-10);
        check_grid(cos_block, f64::cos, -100.0, 100.0, 1e-10);
        check_grid(tan_block, f64::tan, -1.5, 1.5, 1e-9);
    }

    #[test]
    fn pow_matches_std() {
        for base in [0.5, 1.0, 2.0, 10.0, 123.456] {
            for expo in [-3.0, -0.5, 0.0, 0.5, 1.0, 2.5, 7.0] {
                let mut x = [base; 4];
                let y = [expo; 4];
                pow_block(&mut x, &y);
                let want = base.powf(expo);
                let rel = (x[0] - want).abs() / want.abs().max(1e-300);
                assert!(rel < 1e-11, "pow({base},{expo}) = {}, want {want}", x[0]);
            }
        }
        // Negative base edge case delegates to std.
        let mut x = [-2.0];
        pow_block(&mut x, &[2.0]);
        assert_eq!(x[0], 4.0);
    }

    #[test]
    fn block_functions_handle_any_len_up_to_64() {
        for n in [1usize, 2, 3, 7, 8, 16, 64] {
            let mut v = vec![0.5; n];
            tanh_block(&mut v);
            assert!((v[0] - 0.5f64.tanh()).abs() < 1e-12);
        }
    }
}
