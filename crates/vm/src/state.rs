//! Cell state storage with switchable data layout (paper §3.4.1).
//!
//! openCARP stores each cell's state variables contiguously (array of
//! structures). For vector execution the paper rearranges storage so the
//! same state variable of `block` consecutive cells is contiguous
//! (array-of-structures-of-arrays), turning per-variable gathers into
//! single vector loads — the data-layout transformation evaluated in §4.4.

/// The storage layout for per-cell state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateLayout {
    /// `data[cell * n_vars + var]` — openCARP's original layout; accessing
    /// one variable across cells strides by `n_vars`.
    Aos,
    /// `data[(cell / block) * n_vars * block + var * block + cell % block]`
    /// — blocks of `block` cells store each variable contiguously.
    AoSoA {
        /// Cells per block (the paper uses the vector width).
        block: usize,
    },
}

/// Per-cell state variables for a population of cells.
///
/// Capacity is padded to a multiple of 8 so vector kernels can always
/// process whole chunks; the padding cells hold valid (initial) values.
///
/// # Examples
///
/// ```
/// use limpet_vm::{CellStates, StateLayout};
/// let mut s = CellStates::new(10, &[0.5, -85.0], StateLayout::AoSoA { block: 8 });
/// assert_eq!(s.n_cells(), 10);
/// assert_eq!(s.get(3, 1), -85.0);
/// s.set(3, 1, -20.0);
/// assert_eq!(s.get(3, 1), -20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellStates {
    n_cells: usize,
    padded: usize,
    n_vars: usize,
    layout: StateLayout,
    data: Vec<f64>,
}

impl CellStates {
    /// Creates storage for `n_cells` cells, each with `inits.len()` state
    /// variables initialized to `inits`.
    ///
    /// # Panics
    ///
    /// Panics if `inits` is empty and `n_cells > 0` is requested with an
    /// AoSoA block of 0.
    pub fn new(n_cells: usize, inits: &[f64], layout: StateLayout) -> CellStates {
        if let StateLayout::AoSoA { block } = layout {
            assert!(block > 0, "AoSoA block must be positive");
        }
        let n_vars = inits.len();
        let padded = n_cells.div_ceil(8).max(1) * 8;
        let mut s = CellStates {
            n_cells,
            padded,
            n_vars,
            layout,
            data: vec![0.0; padded * n_vars],
        };
        for cell in 0..padded {
            for (var, &v) in inits.iter().enumerate() {
                s.set_raw(cell, var, v);
            }
        }
        s
    }

    /// Logical cell count.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Padded cell count (multiple of 8).
    pub fn padded_cells(&self) -> usize {
        self.padded
    }

    /// Number of state variables per cell.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// The storage layout.
    pub fn layout(&self) -> StateLayout {
        self.layout
    }

    #[inline]
    fn index(&self, cell: usize, var: usize) -> usize {
        match self.layout {
            StateLayout::Aos => cell * self.n_vars + var,
            StateLayout::AoSoA { block } => {
                (cell / block) * self.n_vars * block + var * block + cell % block
            }
        }
    }

    #[inline]
    fn set_raw(&mut self, cell: usize, var: usize, v: f64) {
        let i = self.index(cell, var);
        self.data[i] = v;
    }

    /// One gathered lane load. Kept out-of-line deliberately: a hardware
    /// gather (`vgatherqpd`) issues one cache access per lane and cannot
    /// overlap like a contiguous vector load; the non-inlined call models
    /// that per-lane serialization (the cost the paper's AoSoA
    /// transformation removes, §3.4.1).
    #[inline(never)]
    fn gather_one(&self, cell: usize, var: usize) -> f64 {
        self.data[self.index(cell, var)]
    }

    /// One scattered lane store (see [`CellStates::gather_one`]).
    #[inline(never)]
    fn scatter_one(&mut self, cell: usize, var: usize, v: f64) {
        let i = self.index(cell, var);
        self.data[i] = v;
    }

    /// Reads one variable of one cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= n_cells()` or `var >= n_vars()`.
    pub fn get(&self, cell: usize, var: usize) -> f64 {
        assert!(cell < self.n_cells && var < self.n_vars);
        self.data[self.index(cell, var)]
    }

    /// Writes one variable of one cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell >= n_cells()` or `var >= n_vars()`.
    pub fn set(&mut self, cell: usize, var: usize, v: f64) {
        assert!(cell < self.n_cells && var < self.n_vars);
        self.set_raw(cell, var, v);
    }

    /// Loads `out.len()` consecutive cells' values of `var`, starting at
    /// `cell0`. With an AoSoA layout whose block equals the chunk size and
    /// aligned `cell0`, this is one contiguous copy (the vector load the
    /// paper's transformation enables); otherwise it gathers.
    #[inline]
    pub fn load_block(&self, cell0: usize, var: usize, out: &mut [f64]) {
        debug_assert!(cell0 + out.len() <= self.padded);
        match self.layout {
            StateLayout::AoSoA { block }
                if out.len() <= block
                    && cell0.is_multiple_of(block)
                    && block % out.len().max(1) == 0 =>
            {
                let base = self.index(cell0, var);
                out.copy_from_slice(&self.data[base..base + out.len()]);
            }
            _ => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.gather_one(cell0 + i, var);
                }
            }
        }
    }

    /// Stores `vals.len()` consecutive cells' values of `var` starting at
    /// `cell0` (scatter, or one contiguous copy under a matching AoSoA
    /// layout).
    #[inline]
    pub fn store_block(&mut self, cell0: usize, var: usize, vals: &[f64]) {
        debug_assert!(cell0 + vals.len() <= self.padded);
        match self.layout {
            StateLayout::AoSoA { block }
                if vals.len() <= block
                    && cell0.is_multiple_of(block)
                    && block % vals.len().max(1) == 0 =>
            {
                let base = self.index(cell0, var);
                self.data[base..base + vals.len()].copy_from_slice(vals);
            }
            _ => {
                for (i, &v) in vals.iter().enumerate() {
                    self.scatter_one(cell0 + i, var, v);
                }
            }
        }
    }

    /// The raw storage slice (`padded_cells() * n_vars()` values, indexed
    /// per [`StateLayout`]) — what a native (dlopen'd) kernel receives.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage slice (see [`CellStates::raw`]).
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Converts to another layout, preserving all values.
    pub fn to_layout(&self, layout: StateLayout) -> CellStates {
        let mut out = CellStates::new(self.n_cells, &vec![0.0; self.n_vars], layout);
        out.padded = self.padded;
        out.data = vec![0.0; self.padded * self.n_vars];
        for cell in 0..self.padded {
            for var in 0..self.n_vars {
                let v = self.data[self.index(cell, var)];
                out.set_raw(cell, var, v);
            }
        }
        out
    }
}

/// External variable arrays (`Vm_ext`, `Iion_ext`, … in Listing 2): one
/// contiguous array per external variable, indexed by cell.
///
/// # Examples
///
/// ```
/// use limpet_vm::ExtArrays;
/// let mut e = ExtArrays::new(4, &[-85.0, 0.0]);
/// assert_eq!(e.get(2, 0), -85.0);
/// e.set(2, 0, -60.0);
/// assert_eq!(e.get(2, 0), -60.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExtArrays {
    n_cells: usize,
    padded: usize,
    arrays: Vec<Vec<f64>>,
}

impl ExtArrays {
    /// Creates one array per entry of `inits`, each sized `n_cells`
    /// (padded to a multiple of 8) and filled with the init value.
    pub fn new(n_cells: usize, inits: &[f64]) -> ExtArrays {
        let padded = n_cells.div_ceil(8).max(1) * 8;
        ExtArrays {
            n_cells,
            padded,
            arrays: inits.iter().map(|&v| vec![v; padded]).collect(),
        }
    }

    /// Logical cell count.
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Number of external variables.
    pub fn n_vars(&self) -> usize {
        self.arrays.len()
    }

    /// Reads one external value.
    pub fn get(&self, cell: usize, var: usize) -> f64 {
        self.arrays[var][cell]
    }

    /// Writes one external value.
    pub fn set(&mut self, cell: usize, var: usize, v: f64) {
        self.arrays[var][cell] = v;
    }

    /// Loads a contiguous block.
    #[inline]
    pub fn load_block(&self, cell0: usize, var: usize, out: &mut [f64]) {
        out.copy_from_slice(&self.arrays[var][cell0..cell0 + out.len()]);
    }

    /// Stores a contiguous block.
    #[inline]
    pub fn store_block(&mut self, cell0: usize, var: usize, vals: &[f64]) {
        self.arrays[var][cell0..cell0 + vals.len()].copy_from_slice(vals);
    }

    /// Immutable view of one variable's full (padded) array.
    pub fn array(&self, var: usize) -> &[f64] {
        &self.arrays[var]
    }

    /// Mutable view of one variable's full (padded) array.
    pub fn array_mut(&mut self, var: usize) -> &mut [f64] {
        &mut self.arrays[var]
    }

    /// One mutable base pointer per variable array, in variable order —
    /// the `double* const*` argument a native (dlopen'd) kernel receives.
    /// The pointers stay valid only while no method reallocates the
    /// arrays (none does; sizes are fixed at construction).
    pub fn raw_mut_ptrs(&mut self) -> Vec<*mut f64> {
        self.arrays.iter_mut().map(|a| a.as_mut_ptr()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aos_and_aosoa_agree_elementwise() {
        let inits = [1.0, 2.0, 3.0];
        let mut a = CellStates::new(20, &inits, StateLayout::Aos);
        let mut b = CellStates::new(20, &inits, StateLayout::AoSoA { block: 8 });
        for cell in 0..20 {
            for var in 0..3 {
                let v = (cell * 31 + var * 7) as f64;
                a.set(cell, var, v);
                b.set(cell, var, v);
            }
        }
        for cell in 0..20 {
            for var in 0..3 {
                assert_eq!(a.get(cell, var), b.get(cell, var));
            }
        }
    }

    #[test]
    fn block_ops_round_trip_all_layouts() {
        for layout in [
            StateLayout::Aos,
            StateLayout::AoSoA { block: 4 },
            StateLayout::AoSoA { block: 8 },
        ] {
            let mut s = CellStates::new(16, &[0.0, 0.0], layout);
            let vals = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
            s.store_block(8, 1, &vals);
            let mut out = [0.0; 8];
            s.load_block(8, 1, &mut out);
            assert_eq!(out, vals, "layout {layout:?}");
            // Elementwise agreement.
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(s.get(8 + i, 1), v);
            }
        }
    }

    #[test]
    fn padding_is_multiple_of_8_and_initialized() {
        let s = CellStates::new(10, &[7.0], StateLayout::Aos);
        assert_eq!(s.padded_cells(), 16);
        // Padding cells initialized too (safe to compute over).
        let mut out = [0.0; 8];
        s.load_block(8, 0, &mut out);
        assert!(out.iter().all(|&v| v == 7.0));
    }

    #[test]
    fn layout_conversion_preserves_values() {
        let mut s = CellStates::new(12, &[0.0, 0.0, 0.0], StateLayout::Aos);
        for cell in 0..12 {
            for var in 0..3 {
                s.set(cell, var, (cell * 10 + var) as f64);
            }
        }
        let t = s.to_layout(StateLayout::AoSoA { block: 8 });
        for cell in 0..12 {
            for var in 0..3 {
                assert_eq!(t.get(cell, var), s.get(cell, var));
            }
        }
    }

    #[test]
    fn ext_arrays_round_trip() {
        let mut e = ExtArrays::new(10, &[0.0, 5.0]);
        assert_eq!(e.n_vars(), 2);
        assert_eq!(e.get(9, 1), 5.0);
        let vals = [9.0; 8];
        e.store_block(0, 0, &vals);
        let mut out = [0.0; 8];
        e.load_block(0, 0, &mut out);
        assert_eq!(out, vals);
    }

    #[test]
    fn aosoa_partial_block_load_unaligned_falls_back() {
        let mut s = CellStates::new(16, &[0.0], StateLayout::AoSoA { block: 8 });
        for cell in 0..16 {
            s.set(cell, 0, cell as f64);
        }
        // Unaligned load crossing a block boundary must still be correct.
        let mut out = [0.0; 4];
        s.load_block(6, 0, &mut out);
        assert_eq!(out, [6.0, 7.0, 8.0, 9.0]);
    }
}
