//! Lookup-table storage and interpolation (paper §3.4.2).
//!
//! A table holds `rows × cols` precomputed values over `[lo, hi]` at step
//! `step`. Runtime reads interpolate linearly between adjacent rows.
//! Two interpolation paths exist:
//!
//! * [`LutData::interp_block`] — the paper's vectorized
//!   `LUT_interpRow_n_elements_vec`: index computation, clamping, and the
//!   two-point blend run as branch-free lane loops;
//! * [`LutData::interp_scalar_calls`] — the original openCARP scalar
//!   `LUT_interpRow`, modeled as one non-inlined call per lane (this is
//!   the code the paper found general compilers could not vectorize).

/// One precomputed lookup table.
///
/// # Examples
///
/// ```
/// use limpet_vm::LutData;
/// // Tabulate f(x) = 2x over [0, 10], one column.
/// let data = LutData::build(0.0, 10.0, 1.0, 1, |x, out| out[0] = 2.0 * x);
/// let mut keys = [2.5];
/// let mut out = [0.0];
/// data.interp_block(&keys, 0, &mut out);
/// assert!((out[0] - 5.0).abs() < 1e-12);
/// # let _ = &mut keys;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LutData {
    lo: f64,
    hi: f64,
    step: f64,
    inv_step: f64,
    rows: usize,
    cols: usize,
    /// Row-major: `data[row * cols + col]`.
    data: Vec<f64>,
}

impl LutData {
    /// Builds a table by evaluating `fill(key, row)` for every tabulated
    /// key. `fill` writes one value per column into its output slice.
    ///
    /// # Panics
    ///
    /// Panics if `step <= 0`, `hi <= lo`, or `cols == 0`.
    pub fn build(
        lo: f64,
        hi: f64,
        step: f64,
        cols: usize,
        mut fill: impl FnMut(f64, &mut [f64]),
    ) -> LutData {
        assert!(step > 0.0 && hi > lo, "empty lookup range");
        assert!(cols > 0, "lookup table needs at least one column");
        let rows = ((hi - lo) / step).floor() as usize + 2;
        let mut data = vec![0.0; rows * cols];
        for row in 0..rows {
            let key = lo + row as f64 * step;
            fill(key, &mut data[row * cols..(row + 1) * cols]);
        }
        LutData {
            lo,
            hi,
            step,
            inv_step: 1.0 / step,
            rows,
            cols,
            data,
        }
    }

    /// Reassembles a table from persisted parts — the disk-cache load
    /// path. `rows` is derived from `data.len() / cols` and must agree
    /// with what [`LutData::build`] would compute for `(lo, hi, step)`,
    /// so a stale or corrupted payload is rejected instead of silently
    /// interpolating over the wrong grid. `inv_step` is recomputed as
    /// `1.0 / step`, the same expression `build` uses, so a reassembled
    /// table interpolates bit-identically.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (non-positive
    /// step, empty range, data length not matching the grid).
    pub fn from_raw(
        lo: f64,
        hi: f64,
        step: f64,
        cols: usize,
        data: Vec<f64>,
    ) -> Result<LutData, String> {
        let range_ok =
            lo.is_finite() && hi.is_finite() && step.is_finite() && step > 0.0 && hi > lo;
        if !range_ok {
            return Err(format!("lut range [{lo}, {hi}] step {step} is invalid"));
        }
        if cols == 0 {
            return Err("lut has zero columns".to_string());
        }
        if !data.len().is_multiple_of(cols) {
            return Err(format!(
                "lut data length {} is not a multiple of {cols} columns",
                data.len()
            ));
        }
        let rows = data.len() / cols;
        let expect = ((hi - lo) / step).floor() as usize + 2;
        if rows != expect {
            return Err(format!(
                "lut has {rows} rows but the range [{lo}, {hi}] at step {step} needs {expect}"
            ));
        }
        Ok(LutData {
            lo,
            hi,
            step,
            inv_step: 1.0 / step,
            rows,
            cols,
            data,
        })
    }

    /// Lower bound of the tabulated range.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the tabulated range.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Tabulation step.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The raw row-major payload (`data[row * cols + col]`).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Memory footprint of the table payload in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    #[inline]
    fn row_frac(&self, key: f64) -> (usize, f64) {
        let t = (key - self.lo) * self.inv_step;
        // Clamp into the table (openCARP clamps out-of-range keys too).
        let t = t.clamp(0.0, (self.rows - 2) as f64);
        let i = t as usize;
        (i, t - i as f64)
    }

    /// Vectorized interpolation: for each lane `keys[i]`, writes the
    /// interpolated value of `col` into `out[i]`. Branch-free per lane.
    #[inline]
    pub fn interp_block(&self, keys: &[f64], col: usize, out: &mut [f64]) {
        debug_assert!(col < self.cols);
        let cols = self.cols;
        let maxi = (self.rows - 2) as f64;
        for (o, &k) in out.iter_mut().zip(keys) {
            let t = ((k - self.lo) * self.inv_step).clamp(0.0, maxi);
            let i = t as usize;
            let frac = t - i as f64;
            let a = self.data[i * cols + col];
            let b = self.data[(i + 1) * cols + col];
            *o = a + (b - a) * frac;
        }
    }

    /// Vectorized Catmull–Rom cubic interpolation — the spline variant the
    /// paper lists as future work (§7): third-order accurate, so a table
    /// with a 4x coarser step matches linear interpolation's accuracy at a
    /// quarter of the memory (at the cost of reading four rows per key).
    ///
    /// Edge intervals fall back to linear interpolation (no outer
    /// neighbours to form the stencil).
    #[inline]
    pub fn interp_block_cubic(&self, keys: &[f64], col: usize, out: &mut [f64]) {
        debug_assert!(col < self.cols);
        let cols = self.cols;
        let maxi = (self.rows - 2) as f64;
        for (o, &k) in out.iter_mut().zip(keys) {
            let t = ((k - self.lo) * self.inv_step).clamp(0.0, maxi);
            let i = t as usize;
            let frac = t - i as f64;
            if i == 0 || i + 2 >= self.rows {
                let a = self.data[i * cols + col];
                let b = self.data[(i + 1) * cols + col];
                *o = a + (b - a) * frac;
                continue;
            }
            let p0 = self.data[(i - 1) * cols + col];
            let p1 = self.data[i * cols + col];
            let p2 = self.data[(i + 1) * cols + col];
            let p3 = self.data[(i + 2) * cols + col];
            // Catmull-Rom basis.
            let f2 = frac * frac;
            let f3 = f2 * frac;
            *o = 0.5
                * ((2.0 * p1)
                    + (-p0 + p2) * frac
                    + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * f2
                    + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * f3);
        }
    }

    /// Scalar-call interpolation: same results as [`Self::interp_block`],
    /// but through one opaque (non-inlinable) call per lane, reproducing
    /// the function-call structure of openCARP's `LUT_interpRow` that
    /// blocks auto-vectorization.
    #[inline]
    pub fn interp_scalar_calls(&self, keys: &[f64], col: usize, out: &mut [f64]) {
        for (o, &k) in out.iter_mut().zip(keys) {
            *o = self.interp_one(k, col);
        }
    }

    /// One scalar interpolation (the per-call body of the baseline path).
    #[inline(never)]
    pub fn interp_one(&self, key: f64, col: usize) -> f64 {
        let (i, frac) = self.row_frac(key);
        let a = self.data[i * self.cols + col];
        let b = self.data[(i + 1) * self.cols + col];
        a + (b - a) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LutData {
        // Two columns: exp(x/10) and x².
        LutData::build(-100.0, 100.0, 0.05, 2, |x, out| {
            out[0] = (x / 10.0).exp();
            out[1] = x * x;
        })
    }

    #[test]
    fn rows_match_paper_listing() {
        // Paper Listing 1 uses lookup(-100, 100, 0.05): 4002 rows.
        let t = table();
        assert_eq!(t.rows(), 4002);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.bytes(), 4002 * 2 * 8);
    }

    #[test]
    fn interpolation_is_accurate() {
        let t = table();
        let keys = [-99.97, -50.02, 0.013, 42.42, 99.99, 0.0, 77.7, -1.0];
        let mut out = [0.0; 8];
        t.interp_block(&keys, 0, &mut out);
        for (k, o) in keys.iter().zip(&out) {
            let want = (k / 10.0).exp();
            let rel = (o - want).abs() / want;
            // Linear interpolation at step 0.05: error ~ (step²/8)·f''.
            assert!(rel < 1e-4, "key {k}: got {o}, want {want}");
        }
    }

    #[test]
    fn exact_at_grid_points() {
        let t = table();
        let keys = [-100.0, -50.0, 0.0, 50.0];
        let mut out = [0.0; 4];
        t.interp_block(&keys, 1, &mut out);
        for (k, o) in keys.iter().zip(&out) {
            assert!((o - k * k).abs() < 1e-9, "key {k}");
        }
    }

    #[test]
    fn out_of_range_keys_clamp() {
        let t = table();
        let keys = [-1e9, 1e9, f64::NEG_INFINITY];
        let mut out = [0.0; 3];
        t.interp_block(&keys, 1, &mut out);
        assert!((out[0] - 10_000.0).abs() < 10.0); // ≈ (−100)²
        assert!((out[1] - 10_000.0).abs() < 10.0);
        assert!(out[2].is_finite());
    }

    #[test]
    fn scalar_and_vector_paths_agree() {
        let t = table();
        let keys: Vec<f64> = (0..64).map(|i| -90.0 + i as f64 * 2.7).collect();
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        t.interp_block(&keys, 0, &mut a);
        t.interp_scalar_calls(&keys, 0, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty lookup range")]
    fn bad_range_panics() {
        let _ = LutData::build(1.0, 0.0, 0.1, 1, |_, _| {});
    }

    #[test]
    fn cubic_is_exact_at_grid_points() {
        let t = table();
        let keys = [-50.0, 0.0, 50.0];
        let mut out = [0.0; 3];
        t.interp_block_cubic(&keys, 1, &mut out);
        for (k, o) in keys.iter().zip(&out) {
            assert!((o - k * k).abs() < 1e-9, "key {k}: {o}");
        }
    }

    #[test]
    fn cubic_beats_linear_on_smooth_functions() {
        // Coarse table of exp(x/10): cubic at step 1.0 should beat linear
        // at the same step by orders of magnitude.
        let t = LutData::build(-50.0, 50.0, 1.0, 1, |x, out| out[0] = (x / 10.0).exp());
        let keys: Vec<f64> = (0..97).map(|i| -47.5 + i as f64).collect();
        let mut lin = vec![0.0; keys.len()];
        let mut cub = vec![0.0; keys.len()];
        t.interp_block(&keys, 0, &mut lin);
        t.interp_block_cubic(&keys, 0, &mut cub);
        let (mut err_lin, mut err_cub) = (0.0f64, 0.0f64);
        for ((k, l), c) in keys.iter().zip(&lin).zip(&cub) {
            let want = (k / 10.0).exp();
            err_lin = err_lin.max((l - want).abs() / want);
            err_cub = err_cub.max((c - want).abs() / want);
        }
        assert!(
            err_cub < err_lin / 20.0,
            "cubic {err_cub:.3e} not much better than linear {err_lin:.3e}"
        );
    }

    #[test]
    fn cubic_clamps_out_of_range() {
        let t = table();
        let keys = [-1e6, 1e6];
        let mut out = [0.0; 2];
        t.interp_block_cubic(&keys, 0, &mut out);
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
