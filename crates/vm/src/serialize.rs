//! Machine-readable textual serialization of compiled bytecode.
//!
//! The on-disk kernel cache (harness layer) persists compiled kernels as
//! text: the IR module goes through `limpet_ir::print_module`, and the two
//! bytecode programs plus the tabulated lookup tables go through this
//! module. The format is line-oriented and diffable, but exact: every
//! `f64` is written as the hex of its IEEE-754 bit pattern, so a
//! deserialized kernel computes bit-identical trajectories.
//!
//! The format carries a version stamp ([`BYTECODE_FORMAT_VERSION`]);
//! readers reject any other version, so a stale cache entry degrades to a
//! recompile instead of misinterpreting fields. Deserialization never
//! panics on malformed input — every structural defect comes back as an
//! `Err` describing the offending line.

use crate::bytecode::{BBin, FBin, IBin, Instr, Program};
use crate::lut::LutData;
use limpet_ir::{CmpFPred, CmpIPred, MathFn};
use std::fmt::Write as _;

/// Version stamp of the textual bytecode/LUT format. Bump on any change
/// to the serialized shape; readers reject mismatched stamps so old cache
/// entries are recompiled rather than misread.
pub const BYTECODE_FORMAT_VERSION: u32 = 1;

impl FBin {
    /// Stable lowercase mnemonic used by the bytecode serializer.
    pub fn as_str(self) -> &'static str {
        match self {
            FBin::Add => "add",
            FBin::Sub => "sub",
            FBin::Mul => "mul",
            FBin::Div => "div",
            FBin::Rem => "rem",
            FBin::Min => "min",
            FBin::Max => "max",
        }
    }

    /// Parses a [`FBin::as_str`] mnemonic.
    pub fn parse(s: &str) -> Option<FBin> {
        [
            FBin::Add,
            FBin::Sub,
            FBin::Mul,
            FBin::Div,
            FBin::Rem,
            FBin::Min,
            FBin::Max,
        ]
        .into_iter()
        .find(|op| op.as_str() == s)
    }
}

impl BBin {
    /// Stable lowercase mnemonic used by the bytecode serializer.
    pub fn as_str(self) -> &'static str {
        match self {
            BBin::And => "and",
            BBin::Or => "or",
            BBin::Xor => "xor",
        }
    }

    /// Parses a [`BBin::as_str`] mnemonic.
    pub fn parse(s: &str) -> Option<BBin> {
        [BBin::And, BBin::Or, BBin::Xor]
            .into_iter()
            .find(|op| op.as_str() == s)
    }
}

impl IBin {
    /// Stable lowercase mnemonic used by the bytecode serializer.
    pub fn as_str(self) -> &'static str {
        match self {
            IBin::Add => "add",
            IBin::Sub => "sub",
            IBin::Mul => "mul",
        }
    }

    /// Parses an [`IBin::as_str`] mnemonic.
    pub fn parse(s: &str) -> Option<IBin> {
        [IBin::Add, IBin::Sub, IBin::Mul]
            .into_iter()
            .find(|op| op.as_str() == s)
    }
}

/// An `f64` as the 16 hex digits of its bit pattern (exact round-trip,
/// NaN payloads included).
fn fbits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn write_symbols(out: &mut String, key: &str, names: &[String]) {
    write!(out, "{key} {}", names.len()).unwrap();
    for n in names {
        debug_assert!(
            !n.is_empty() && !n.chars().any(char::is_whitespace),
            "symbol '{n}' is not serializable"
        );
        write!(out, " {n}").unwrap();
    }
    out.push('\n');
}

/// Serializes a compiled program to the versioned textual format.
pub fn serialize_program(p: &Program) -> String {
    let mut out = String::new();
    writeln!(out, "program v{BYTECODE_FORMAT_VERSION}").unwrap();
    writeln!(out, "regs {} {} {}", p.n_fregs, p.n_bregs, p.n_iregs).unwrap();
    write_symbols(&mut out, "state", &p.state_vars);
    write_symbols(&mut out, "ext", &p.ext_vars);
    write_symbols(&mut out, "params", &p.params);
    write_symbols(&mut out, "luts", &p.lut_tables);
    write_symbols(&mut out, "parents", &p.parent_vars);
    writeln!(out, "instrs {}", p.instrs.len()).unwrap();
    for instr in &p.instrs {
        write_instr(&mut out, instr);
    }
    out
}

fn write_instr(out: &mut String, instr: &Instr) {
    match instr {
        Instr::ConstF { dst, v } => writeln!(out, "constf {dst} {}", fbits(*v)),
        Instr::ConstI { dst, v } => writeln!(out, "consti {dst} {v}"),
        Instr::ConstB { dst, v } => writeln!(out, "constb {dst} {}", u8::from(*v)),
        Instr::MovF { dst, src } => writeln!(out, "movf {dst} {src}"),
        Instr::MovB { dst, src } => writeln!(out, "movb {dst} {src}"),
        Instr::MovI { dst, src } => writeln!(out, "movi {dst} {src}"),
        Instr::LoadParam { dst, idx } => writeln!(out, "loadparam {dst} {idx}"),
        Instr::LoadDt { dst } => writeln!(out, "loaddt {dst}"),
        Instr::LoadTime { dst } => writeln!(out, "loadtime {dst}"),
        Instr::CellIndex { dst } => writeln!(out, "cellindex {dst}"),
        Instr::LoadState { dst, var } => writeln!(out, "loadstate {dst} {var}"),
        Instr::StoreState { src, var } => writeln!(out, "storestate {src} {var}"),
        Instr::LoadExt { dst, var } => writeln!(out, "loadext {dst} {var}"),
        Instr::StoreExt { src, var } => writeln!(out, "storeext {src} {var}"),
        Instr::HasParent { dst } => writeln!(out, "hasparent {dst}"),
        Instr::LoadParentState { dst, var, fallback } => {
            writeln!(out, "loadparentstate {dst} {var} {fallback}")
        }
        Instr::StoreParentState { src, var } => writeln!(out, "storeparentstate {src} {var}"),
        Instr::BinF { op, dst, a, b } => writeln!(out, "binf {} {dst} {a} {b}", op.as_str()),
        Instr::BinFK { op, dst, a, k } => {
            writeln!(out, "binfk {} {dst} {a} {}", op.as_str(), fbits(*k))
        }
        Instr::BinKF { op, dst, k, a } => {
            writeln!(out, "binkf {} {dst} {} {a}", op.as_str(), fbits(*k))
        }
        Instr::LoadStateOp { op, dst, var, b } => {
            writeln!(out, "loadstateop {} {dst} {var} {b}", op.as_str())
        }
        Instr::LoadExtOp { op, dst, var, b } => {
            writeln!(out, "loadextop {} {dst} {var} {b}", op.as_str())
        }
        Instr::NegF { dst, a } => writeln!(out, "negf {dst} {a}"),
        Instr::FmaF { dst, a, b, c } => writeln!(out, "fmaf {dst} {a} {b} {c}"),
        Instr::Math1 { f, dst, a } => writeln!(out, "math1 {} {dst} {a}", f.name()),
        Instr::Math2 { f, dst, a, b } => writeln!(out, "math2 {} {dst} {a} {b}", f.name()),
        Instr::CmpF { pred, dst, a, b } => writeln!(out, "cmpf {} {dst} {a} {b}", pred.name()),
        Instr::CmpI { pred, dst, a, b } => writeln!(out, "cmpi {} {dst} {a} {b}", pred.name()),
        Instr::BinB { op, dst, a, b } => writeln!(out, "binb {} {dst} {a} {b}", op.as_str()),
        Instr::SelectF { dst, cond, a, b } => writeln!(out, "selectf {dst} {cond} {a} {b}"),
        Instr::SelectB { dst, cond, a, b } => writeln!(out, "selectb {dst} {cond} {a} {b}"),
        Instr::SIToFP { dst, a } => writeln!(out, "sitofp {dst} {a}"),
        Instr::BinI { op, dst, a, b } => writeln!(out, "bini {} {dst} {a} {b}", op.as_str()),
        Instr::LutVec {
            table,
            col,
            dst,
            key,
        } => writeln!(out, "lutvec {table} {col} {dst} {key}"),
        Instr::LutScalar {
            table,
            col,
            dst,
            key,
        } => writeln!(out, "lutscalar {table} {col} {dst} {key}"),
        Instr::LutCubic {
            table,
            col,
            dst,
            key,
        } => writeln!(out, "lutcubic {table} {col} {dst} {key}"),
        Instr::Jump { target } => writeln!(out, "jump {target}"),
        Instr::JumpIfNot { cond, target } => writeln!(out, "jumpifnot {cond} {target}"),
        Instr::Ret => writeln!(out, "ret"),
    }
    .unwrap();
}

/// Whitespace-separated fields of one line, with positional error context.
struct Fields<'a> {
    it: std::str::SplitWhitespace<'a>,
    line_no: usize,
}

impl<'a> Fields<'a> {
    fn of(line: &'a str, line_no: usize) -> Fields<'a> {
        Fields {
            it: line.split_whitespace(),
            line_no,
        }
    }

    fn next(&mut self) -> Result<&'a str, String> {
        self.it
            .next()
            .ok_or_else(|| format!("line {}: missing field", self.line_no))
    }

    fn u16(&mut self) -> Result<u16, String> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| format!("line {}: bad u16 '{t}'", self.line_no))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| format!("line {}: bad u32 '{t}'", self.line_no))
    }

    fn usize(&mut self) -> Result<usize, String> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| format!("line {}: bad count '{t}'", self.line_no))
    }

    fn i64(&mut self) -> Result<i64, String> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| format!("line {}: bad i64 '{t}'", self.line_no))
    }

    fn f64(&mut self) -> Result<f64, String> {
        let t = self.next()?;
        u64::from_str_radix(t, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("line {}: bad f64 bits '{t}'", self.line_no))
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.next()? {
            "0" => Ok(false),
            "1" => Ok(true),
            t => Err(format!("line {}: bad bool '{t}'", self.line_no)),
        }
    }

    fn fbin(&mut self) -> Result<FBin, String> {
        let t = self.next()?;
        FBin::parse(t).ok_or_else(|| format!("line {}: bad float op '{t}'", self.line_no))
    }

    fn bbin(&mut self) -> Result<BBin, String> {
        let t = self.next()?;
        BBin::parse(t).ok_or_else(|| format!("line {}: bad bool op '{t}'", self.line_no))
    }

    fn ibin(&mut self) -> Result<IBin, String> {
        let t = self.next()?;
        IBin::parse(t).ok_or_else(|| format!("line {}: bad int op '{t}'", self.line_no))
    }

    fn mathfn(&mut self) -> Result<MathFn, String> {
        let t = self.next()?;
        MathFn::parse(t).ok_or_else(|| format!("line {}: unknown math fn '{t}'", self.line_no))
    }

    fn cmpf(&mut self) -> Result<CmpFPred, String> {
        let t = self.next()?;
        CmpFPred::parse(t).ok_or_else(|| format!("line {}: bad cmpf pred '{t}'", self.line_no))
    }

    fn cmpi(&mut self) -> Result<CmpIPred, String> {
        let t = self.next()?;
        CmpIPred::parse(t).ok_or_else(|| format!("line {}: bad cmpi pred '{t}'", self.line_no))
    }

    fn done(mut self) -> Result<(), String> {
        match self.it.next() {
            Some(t) => Err(format!("line {}: trailing field '{t}'", self.line_no)),
            None => Ok(()),
        }
    }
}

/// Line iterator that skips blank lines and tracks 1-based line numbers.
struct LineCursor<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> LineCursor<'a> {
    fn of(text: &'a str) -> LineCursor<'a> {
        LineCursor {
            lines: text.lines().enumerate(),
        }
    }

    fn next(&mut self) -> Result<(usize, &'a str), String> {
        for (i, line) in self.lines.by_ref() {
            if !line.trim().is_empty() {
                return Ok((i + 1, line));
            }
        }
        Err("unexpected end of input".to_string())
    }
}

fn read_symbols(cur: &mut LineCursor<'_>, key: &str) -> Result<Vec<String>, String> {
    let (no, line) = cur.next()?;
    let mut f = Fields::of(line, no);
    let got = f.next()?;
    if got != key {
        return Err(format!("line {no}: expected '{key}' section, got '{got}'"));
    }
    let count = f.usize()?;
    let mut names = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        names.push(f.next()?.to_string());
    }
    f.done()?;
    Ok(names)
}

/// Deserializes a [`serialize_program`] payload.
///
/// # Errors
///
/// Returns a description of the first defect: version mismatch, missing
/// or malformed field, unknown mnemonic, or an out-of-range symbol or
/// jump index. Never panics on malformed input.
pub fn deserialize_program(text: &str) -> Result<Program, String> {
    let mut cur = LineCursor::of(text);
    let (no, header) = cur.next()?;
    let expect = format!("program v{BYTECODE_FORMAT_VERSION}");
    if header.trim() != expect {
        return Err(format!(
            "line {no}: unsupported bytecode format '{}' (expected '{expect}')",
            header.trim()
        ));
    }
    let (no, line) = cur.next()?;
    let mut f = Fields::of(line, no);
    if f.next()? != "regs" {
        return Err(format!("line {no}: expected 'regs' line"));
    }
    let (n_fregs, n_bregs, n_iregs) = (f.usize()?, f.usize()?, f.usize()?);
    f.done()?;
    let state_vars = read_symbols(&mut cur, "state")?;
    let ext_vars = read_symbols(&mut cur, "ext")?;
    let params = read_symbols(&mut cur, "params")?;
    let lut_tables = read_symbols(&mut cur, "luts")?;
    let parent_vars = read_symbols(&mut cur, "parents")?;
    let (no, line) = cur.next()?;
    let mut f = Fields::of(line, no);
    if f.next()? != "instrs" {
        return Err(format!("line {no}: expected 'instrs' line"));
    }
    let count = f.usize()?;
    f.done()?;
    let mut instrs = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let (no, line) = cur.next()?;
        instrs.push(read_instr(line, no)?);
    }
    let program = Program {
        instrs,
        n_fregs,
        n_bregs,
        n_iregs,
        state_vars,
        ext_vars,
        params,
        lut_tables,
        parent_vars,
    };
    validate(&program)?;
    Ok(program)
}

fn read_instr(line: &str, no: usize) -> Result<Instr, String> {
    let mut f = Fields::of(line, no);
    let mnemonic = f.next()?;
    let instr = match mnemonic {
        "constf" => Instr::ConstF {
            dst: f.u16()?,
            v: f.f64()?,
        },
        "consti" => Instr::ConstI {
            dst: f.u16()?,
            v: f.i64()?,
        },
        "constb" => Instr::ConstB {
            dst: f.u16()?,
            v: f.bool()?,
        },
        "movf" => Instr::MovF {
            dst: f.u16()?,
            src: f.u16()?,
        },
        "movb" => Instr::MovB {
            dst: f.u16()?,
            src: f.u16()?,
        },
        "movi" => Instr::MovI {
            dst: f.u16()?,
            src: f.u16()?,
        },
        "loadparam" => Instr::LoadParam {
            dst: f.u16()?,
            idx: f.u16()?,
        },
        "loaddt" => Instr::LoadDt { dst: f.u16()? },
        "loadtime" => Instr::LoadTime { dst: f.u16()? },
        "cellindex" => Instr::CellIndex { dst: f.u16()? },
        "loadstate" => Instr::LoadState {
            dst: f.u16()?,
            var: f.u16()?,
        },
        "storestate" => Instr::StoreState {
            src: f.u16()?,
            var: f.u16()?,
        },
        "loadext" => Instr::LoadExt {
            dst: f.u16()?,
            var: f.u16()?,
        },
        "storeext" => Instr::StoreExt {
            src: f.u16()?,
            var: f.u16()?,
        },
        "hasparent" => Instr::HasParent { dst: f.u16()? },
        "loadparentstate" => Instr::LoadParentState {
            dst: f.u16()?,
            var: f.u16()?,
            fallback: f.u16()?,
        },
        "storeparentstate" => Instr::StoreParentState {
            src: f.u16()?,
            var: f.u16()?,
        },
        "binf" => Instr::BinF {
            op: f.fbin()?,
            dst: f.u16()?,
            a: f.u16()?,
            b: f.u16()?,
        },
        "binfk" => Instr::BinFK {
            op: f.fbin()?,
            dst: f.u16()?,
            a: f.u16()?,
            k: f.f64()?,
        },
        "binkf" => {
            let op = f.fbin()?;
            let dst = f.u16()?;
            let k = f.f64()?;
            let a = f.u16()?;
            Instr::BinKF { op, dst, k, a }
        }
        "loadstateop" => Instr::LoadStateOp {
            op: f.fbin()?,
            dst: f.u16()?,
            var: f.u16()?,
            b: f.u16()?,
        },
        "loadextop" => Instr::LoadExtOp {
            op: f.fbin()?,
            dst: f.u16()?,
            var: f.u16()?,
            b: f.u16()?,
        },
        "negf" => Instr::NegF {
            dst: f.u16()?,
            a: f.u16()?,
        },
        "fmaf" => Instr::FmaF {
            dst: f.u16()?,
            a: f.u16()?,
            b: f.u16()?,
            c: f.u16()?,
        },
        "math1" => Instr::Math1 {
            f: f.mathfn()?,
            dst: f.u16()?,
            a: f.u16()?,
        },
        "math2" => Instr::Math2 {
            f: f.mathfn()?,
            dst: f.u16()?,
            a: f.u16()?,
            b: f.u16()?,
        },
        "cmpf" => Instr::CmpF {
            pred: f.cmpf()?,
            dst: f.u16()?,
            a: f.u16()?,
            b: f.u16()?,
        },
        "cmpi" => Instr::CmpI {
            pred: f.cmpi()?,
            dst: f.u16()?,
            a: f.u16()?,
            b: f.u16()?,
        },
        "binb" => Instr::BinB {
            op: f.bbin()?,
            dst: f.u16()?,
            a: f.u16()?,
            b: f.u16()?,
        },
        "selectf" => Instr::SelectF {
            dst: f.u16()?,
            cond: f.u16()?,
            a: f.u16()?,
            b: f.u16()?,
        },
        "selectb" => Instr::SelectB {
            dst: f.u16()?,
            cond: f.u16()?,
            a: f.u16()?,
            b: f.u16()?,
        },
        "sitofp" => Instr::SIToFP {
            dst: f.u16()?,
            a: f.u16()?,
        },
        "bini" => Instr::BinI {
            op: f.ibin()?,
            dst: f.u16()?,
            a: f.u16()?,
            b: f.u16()?,
        },
        "lutvec" => Instr::LutVec {
            table: f.u16()?,
            col: f.u16()?,
            dst: f.u16()?,
            key: f.u16()?,
        },
        "lutscalar" => Instr::LutScalar {
            table: f.u16()?,
            col: f.u16()?,
            dst: f.u16()?,
            key: f.u16()?,
        },
        "lutcubic" => Instr::LutCubic {
            table: f.u16()?,
            col: f.u16()?,
            dst: f.u16()?,
            key: f.u16()?,
        },
        "jump" => Instr::Jump { target: f.u32()? },
        "jumpifnot" => Instr::JumpIfNot {
            cond: f.u16()?,
            target: f.u32()?,
        },
        "ret" => Instr::Ret,
        other => return Err(format!("line {no}: unknown mnemonic '{other}'")),
    };
    f.done()?;
    Ok(instr)
}

/// Structural validation of a deserialized program: every symbol-indexed
/// field must point inside its symbol table and every jump target must
/// stay inside the instruction list (`==` length is the fall-off-the-end
/// exit the compiler emits for loop back edges).
fn validate(p: &Program) -> Result<(), String> {
    let in_table = |pc: usize, idx: u16, len: usize, what: &str| -> Result<(), String> {
        if (idx as usize) < len {
            Ok(())
        } else {
            Err(format!(
                "instr {pc}: {what} index {idx} out of range (table has {len})"
            ))
        }
    };
    for (pc, instr) in p.instrs.iter().enumerate() {
        match instr {
            Instr::LoadParam { idx, .. } => in_table(pc, *idx, p.params.len(), "param")?,
            Instr::LoadState { var, .. }
            | Instr::StoreState { var, .. }
            | Instr::LoadStateOp { var, .. } => {
                in_table(pc, *var, p.state_vars.len(), "state var")?
            }
            Instr::LoadExt { var, .. }
            | Instr::StoreExt { var, .. }
            | Instr::LoadExtOp { var, .. } => in_table(pc, *var, p.ext_vars.len(), "ext var")?,
            Instr::LoadParentState { var, .. } | Instr::StoreParentState { var, .. } => {
                in_table(pc, *var, p.parent_vars.len(), "parent var")?
            }
            Instr::LutVec { table, .. }
            | Instr::LutScalar { table, .. }
            | Instr::LutCubic { table, .. } => {
                in_table(pc, *table, p.lut_tables.len(), "lut table")?
            }
            Instr::Jump { target } | Instr::JumpIfNot { target, .. }
                if *target as usize > p.instrs.len() =>
            {
                return Err(format!(
                    "instr {pc}: jump target {target} out of range ({})",
                    p.instrs.len()
                ));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Serializes a kernel's tabulated lookup tables (in program order).
pub fn serialize_luts(luts: &[LutData]) -> String {
    let mut out = String::new();
    writeln!(out, "luts v{BYTECODE_FORMAT_VERSION} {}", luts.len()).unwrap();
    for lut in luts {
        writeln!(
            out,
            "lut {} {} {} {} {}",
            fbits(lut.lo()),
            fbits(lut.hi()),
            fbits(lut.step()),
            lut.rows(),
            lut.cols()
        )
        .unwrap();
        // Eight values per line keeps entries diffable without blowing
        // up the line count for 4000-row tables.
        for chunk in lut.data().chunks(8) {
            let mut line = String::with_capacity(chunk.len() * 17);
            for (i, v) in chunk.iter().enumerate() {
                if i > 0 {
                    line.push(' ');
                }
                line.push_str(&fbits(*v));
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Deserializes a [`serialize_luts`] payload.
///
/// # Errors
///
/// Returns a description of the first defect (version mismatch, malformed
/// header, short or inconsistent data). Never panics on malformed input.
pub fn deserialize_luts(text: &str) -> Result<Vec<LutData>, String> {
    let mut cur = LineCursor::of(text);
    let (no, header) = cur.next()?;
    let mut f = Fields::of(header, no);
    let expect = format!("v{BYTECODE_FORMAT_VERSION}");
    if f.next()? != "luts" {
        return Err(format!("line {no}: expected 'luts' header"));
    }
    if f.next()? != expect {
        return Err(format!("line {no}: unsupported lut format version"));
    }
    let count = f.usize()?;
    f.done()?;
    let mut luts = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let (no, line) = cur.next()?;
        let mut f = Fields::of(line, no);
        if f.next()? != "lut" {
            return Err(format!("line {no}: expected 'lut' header"));
        }
        let (lo, hi, step) = (f.f64()?, f.f64()?, f.f64()?);
        let (rows, cols) = (f.usize()?, f.usize()?);
        f.done()?;
        let need = rows
            .checked_mul(cols)
            .ok_or_else(|| format!("line {no}: lut dimensions overflow"))?;
        if need > (1 << 28) {
            return Err(format!("line {no}: lut implausibly large ({need} values)"));
        }
        let mut data = Vec::with_capacity(need);
        while data.len() < need {
            let (no, line) = cur.next()?;
            for tok in line.split_whitespace() {
                if data.len() == need {
                    return Err(format!("line {no}: trailing lut data"));
                }
                let bits = u64::from_str_radix(tok, 16)
                    .map_err(|_| format!("line {no}: bad f64 bits '{tok}'"))?;
                data.push(f64::from_bits(bits));
            }
        }
        luts.push(LutData::from_raw(lo, hi, step, cols, data)?);
    }
    Ok(luts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_program() -> Program {
        use limpet_ir::{CmpFPred, CmpIPred, MathFn};
        let instrs = vec![
            Instr::ConstF { dst: 0, v: -0.5 },
            Instr::ConstI { dst: 0, v: -3 },
            Instr::ConstB { dst: 0, v: true },
            Instr::MovF { dst: 1, src: 0 },
            Instr::MovB { dst: 1, src: 0 },
            Instr::MovI { dst: 1, src: 0 },
            Instr::LoadParam { dst: 2, idx: 0 },
            Instr::LoadDt { dst: 3 },
            Instr::LoadTime { dst: 4 },
            Instr::CellIndex { dst: 2 },
            Instr::LoadState { dst: 5, var: 0 },
            Instr::StoreState { src: 5, var: 1 },
            Instr::LoadExt { dst: 6, var: 0 },
            Instr::StoreExt { src: 6, var: 0 },
            Instr::HasParent { dst: 2 },
            Instr::LoadParentState {
                dst: 7,
                var: 0,
                fallback: 5,
            },
            Instr::StoreParentState { src: 7, var: 0 },
            Instr::BinF {
                op: FBin::Add,
                dst: 8,
                a: 0,
                b: 1,
            },
            Instr::BinFK {
                op: FBin::Mul,
                dst: 8,
                a: 8,
                k: 2.5,
            },
            Instr::BinKF {
                op: FBin::Sub,
                dst: 8,
                k: 1.0,
                a: 8,
            },
            Instr::LoadStateOp {
                op: FBin::Div,
                dst: 9,
                var: 0,
                b: 8,
            },
            Instr::LoadExtOp {
                op: FBin::Max,
                dst: 9,
                var: 0,
                b: 8,
            },
            Instr::NegF { dst: 9, a: 9 },
            Instr::FmaF {
                dst: 10,
                a: 8,
                b: 9,
                c: 0,
            },
            Instr::Math1 {
                f: MathFn::Exp,
                dst: 10,
                a: 10,
            },
            Instr::Math2 {
                f: MathFn::Pow,
                dst: 10,
                a: 10,
                b: 8,
            },
            Instr::CmpF {
                pred: CmpFPred::Ogt,
                dst: 3,
                a: 10,
                b: 8,
            },
            Instr::CmpI {
                pred: CmpIPred::Slt,
                dst: 4,
                a: 0,
                b: 1,
            },
            Instr::BinB {
                op: BBin::And,
                dst: 5,
                a: 3,
                b: 4,
            },
            Instr::SelectF {
                dst: 11,
                cond: 5,
                a: 10,
                b: 8,
            },
            Instr::SelectB {
                dst: 6,
                cond: 5,
                a: 3,
                b: 4,
            },
            Instr::SIToFP { dst: 11, a: 0 },
            Instr::BinI {
                op: IBin::Mul,
                dst: 3,
                a: 0,
                b: 1,
            },
            Instr::LutVec {
                table: 0,
                col: 0,
                dst: 12,
                key: 11,
            },
            Instr::LutScalar {
                table: 0,
                col: 1,
                dst: 12,
                key: 11,
            },
            Instr::LutCubic {
                table: 0,
                col: 0,
                dst: 12,
                key: 11,
            },
            Instr::Jump { target: 38 },
            Instr::JumpIfNot {
                cond: 5,
                target: 38,
            },
            Instr::Ret,
        ];
        Program {
            instrs,
            n_fregs: 13,
            n_bregs: 7,
            n_iregs: 5,
            state_vars: vec!["x".into(), "y".into()],
            ext_vars: vec!["Vm".into()],
            params: vec!["Cm".into()],
            lut_tables: vec!["Vm".into()],
            parent_vars: vec!["V".into()],
        }
    }

    #[test]
    fn every_instr_variant_round_trips() {
        let p = sample_program();
        let text = serialize_program(&p);
        let q = deserialize_program(&text).expect("round trip");
        assert_eq!(p, q);
    }

    #[test]
    fn f64_constants_round_trip_bit_exactly() {
        for v in [
            0.1,
            -0.0,
            f64::MIN_POSITIVE,
            1e300,
            std::f64::consts::PI,
            f64::INFINITY,
        ] {
            let p = Program {
                instrs: vec![Instr::ConstF { dst: 0, v }, Instr::Ret],
                n_fregs: 1,
                n_bregs: 0,
                n_iregs: 0,
                state_vars: vec![],
                ext_vars: vec![],
                params: vec![],
                lut_tables: vec![],
                parent_vars: vec![],
            };
            let q = deserialize_program(&serialize_program(&p)).unwrap();
            match q.instrs[0] {
                Instr::ConstF { v: got, .. } => assert_eq!(got.to_bits(), v.to_bits()),
                ref other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let p = sample_program();
        let text = serialize_program(&p).replacen("program v1", "program v999", 1);
        let err = deserialize_program(&text).unwrap_err();
        assert!(err.contains("unsupported bytecode format"), "{err}");
    }

    #[test]
    fn truncated_input_is_rejected_without_panic() {
        let text = serialize_program(&sample_program());
        for cut in [0, 10, text.len() / 2, text.len() - 2] {
            let _ = deserialize_program(&text[..cut]);
        }
        let half = &text[..text.len() / 2];
        assert!(deserialize_program(half).is_err());
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let mut p = sample_program();
        p.instrs.insert(0, Instr::LoadState { dst: 0, var: 99 });
        let err = deserialize_program(&serialize_program(&p)).unwrap_err();
        assert!(err.contains("state var index"), "{err}");

        let mut p = sample_program();
        p.instrs.insert(0, Instr::Jump { target: 9999 });
        let err = deserialize_program(&serialize_program(&p)).unwrap_err();
        assert!(err.contains("jump target"), "{err}");
    }

    #[test]
    fn luts_round_trip_bit_exactly() {
        let luts = vec![
            LutData::build(-100.0, 100.0, 0.5, 2, |x, out| {
                out[0] = (x / 10.0).exp();
                out[1] = x * x;
            }),
            LutData::build(0.0, 1.0, 0.1, 1, |x, out| out[0] = x.sin()),
        ];
        let text = serialize_luts(&luts);
        let back = deserialize_luts(&text).expect("round trip");
        assert_eq!(luts, back);
    }

    #[test]
    fn corrupted_lut_payload_is_rejected() {
        let luts = vec![LutData::build(0.0, 1.0, 0.1, 1, |x, out| out[0] = x)];
        let text = serialize_luts(&luts);
        // Flip the declared row count so the data length disagrees.
        let bad = text.replacen("lut ", "lutX ", 1);
        assert!(deserialize_luts(&bad).is_err());
        let bad = text.replacen(" 12 1", " 13 1", 1);
        assert!(deserialize_luts(&bad).is_err());
    }
}
