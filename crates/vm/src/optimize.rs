//! Post-compile bytecode optimizer.
//!
//! Runs between [`compile_program`](crate::compile_program) and kernel
//! construction, playing the role the LLVM backend plays for the paper's
//! MLIR pipeline: the IR-level passes decide *what* to compute, this
//! stage shaves the interpreter overhead of *how* — dispatches per step
//! and register-file footprint.
//!
//! Four rewrites run to a local fixpoint, then registers are renumbered:
//!
//! 1. **Copy propagation** (block-local): uses of a `Mov` destination are
//!    rewritten to read the source directly, turning branch/loop plumbing
//!    movs into dead code.
//! 2. **Superinstruction fusion** (peephole, adjacent pairs): `Mul`+`Add`
//!    becomes [`Instr::FmaF`]; a state/ext load feeding one float binop
//!    becomes [`Instr::LoadStateOp`]/[`Instr::LoadExtOp`]. Fusion halves
//!    the dispatch count of the pair and is bit-exact because the engine
//!    evaluates `FmaF` as a separate multiply and add.
//! 3. **Constant-operand fusion**: a register whose only definition is a
//!    [`Instr::ConstF`] is a compile-time constant everywhere (the input
//!    IR is verified SSA, so the definition dominates every use); binops
//!    reading it become [`Instr::BinFK`]/[`Instr::BinKF`] ("`AddK`",
//!    "`MulK`", ...) and binops with two constant operands fold to a
//!    `ConstF`.
//! 4. **Dead-code elimination** (use counts, to fixpoint): pure
//!    instructions whose destination register is never read are dropped —
//!    this is what actually deletes the movs and constants orphaned by
//!    rewrites 1–3.
//!
//! Finally **register compaction** renumbers each register file with a
//! linear-scan allocator over conservative live intervals (extended
//! across loop backedges), shrinking the per-chunk working set.
//!
//! The whole stage is toggleable — [`set_bytecode_opt`] — so ablations
//! (`--no-bytecode-opt`) are one flag, and it reports [`OptStats`]
//! counters that the harness surfaces as a synthetic pass in
//! `Compiled::pass_report()`.

use crate::bytecode::{FBin, Instr, Program};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-global toggle consulted by `Kernel::from_module` (default on).
static BYTECODE_OPT_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables the bytecode optimizer for subsequently compiled
/// kernels (the `--no-bytecode-opt` ablation flag).
pub fn set_bytecode_opt(enabled: bool) {
    BYTECODE_OPT_ENABLED.store(enabled, Ordering::SeqCst);
}

/// Whether the bytecode optimizer is currently enabled.
pub fn bytecode_opt_enabled() -> bool {
    BYTECODE_OPT_ENABLED.load(Ordering::SeqCst)
}

/// Counters reported by [`optimize_program`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// `Mov*` instructions deleted (after copy propagation made them dead).
    pub movs_removed: u64,
    /// `Mul`+`Add` pairs fused into `FmaF`.
    pub fused_fma: u64,
    /// Load+binop pairs fused into `LoadStateOp`/`LoadExtOp`.
    pub fused_loadop: u64,
    /// Binops rewritten to a constant-operand form (`BinFK`/`BinKF`).
    pub fused_const: u64,
    /// Binops with two constant operands folded to a `ConstF`.
    pub consts_folded: u64,
    /// Total instructions deleted (dead code, including the movs).
    pub instrs_removed: u64,
    /// Float registers freed by compaction.
    pub fregs_freed: u64,
    /// Boolean registers freed by compaction.
    pub bregs_freed: u64,
    /// Integer registers freed by compaction.
    pub iregs_freed: u64,
    /// Instruction count before optimization.
    pub instrs_before: u64,
    /// Instruction count after optimization.
    pub instrs_after: u64,
}

impl OptStats {
    /// Whether the optimizer changed the program at all.
    pub fn changed(&self) -> bool {
        self.instrs_before != self.instrs_after
            || self.fused_const > 0
            || self.fregs_freed > 0
            || self.bregs_freed > 0
            || self.iregs_freed > 0
    }

    /// The counters in pass-report form (stable names, first-use order).
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("movs-removed", self.movs_removed),
            ("fma-fused", self.fused_fma),
            ("loadop-fused", self.fused_loadop),
            ("const-fused", self.fused_const),
            ("consts-folded", self.consts_folded),
            ("instrs-removed", self.instrs_removed),
            ("fregs-freed", self.fregs_freed),
            ("bregs-freed", self.bregs_freed),
            ("iregs-freed", self.iregs_freed),
            ("instrs-before", self.instrs_before),
            ("instrs-after", self.instrs_after),
        ]
    }
}

/// Register classes (mirrors the private enum in `bytecode`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RegClass {
    F,
    B,
    I,
}

/// The register an instruction writes, if any.
fn def_of(instr: &Instr) -> Option<(RegClass, u16)> {
    use Instr::*;
    match instr {
        ConstF { dst, .. }
        | MovF { dst, .. }
        | LoadParam { dst, .. }
        | LoadDt { dst }
        | LoadTime { dst }
        | LoadState { dst, .. }
        | LoadExt { dst, .. }
        | LoadParentState { dst, .. }
        | BinF { dst, .. }
        | BinFK { dst, .. }
        | BinKF { dst, .. }
        | LoadStateOp { dst, .. }
        | LoadExtOp { dst, .. }
        | NegF { dst, .. }
        | FmaF { dst, .. }
        | Math1 { dst, .. }
        | Math2 { dst, .. }
        | SelectF { dst, .. }
        | SIToFP { dst, .. }
        | LutVec { dst, .. }
        | LutScalar { dst, .. }
        | LutCubic { dst, .. } => Some((RegClass::F, *dst)),
        ConstB { dst, .. }
        | MovB { dst, .. }
        | HasParent { dst }
        | CmpF { dst, .. }
        | CmpI { dst, .. }
        | BinB { dst, .. }
        | SelectB { dst, .. } => Some((RegClass::B, *dst)),
        ConstI { dst, .. } | MovI { dst, .. } | CellIndex { dst } | BinI { dst, .. } => {
            Some((RegClass::I, *dst))
        }
        StoreState { .. }
        | StoreExt { .. }
        | StoreParentState { .. }
        | Jump { .. }
        | JumpIfNot { .. }
        | Ret => None,
    }
}

/// Visits every register an instruction reads (mutably, for rewriting).
fn for_each_use_mut(instr: &mut Instr, mut f: impl FnMut(RegClass, &mut u16)) {
    use Instr::*;
    match instr {
        MovF { src, .. }
        | StoreState { src, .. }
        | StoreExt { src, .. }
        | StoreParentState { src, .. } => f(RegClass::F, src),
        LoadParentState { fallback, .. } => f(RegClass::F, fallback),
        BinF { a, b, .. } | Math2 { a, b, .. } | CmpF { a, b, .. } => {
            f(RegClass::F, a);
            f(RegClass::F, b);
        }
        BinFK { a, .. } | BinKF { a, .. } | NegF { a, .. } | Math1 { a, .. } => f(RegClass::F, a),
        LoadStateOp { b, .. } | LoadExtOp { b, .. } => f(RegClass::F, b),
        FmaF { a, b, c, .. } => {
            f(RegClass::F, a);
            f(RegClass::F, b);
            f(RegClass::F, c);
        }
        SelectF { cond, a, b, .. } => {
            f(RegClass::B, cond);
            f(RegClass::F, a);
            f(RegClass::F, b);
        }
        SelectB { cond, a, b, .. } => {
            f(RegClass::B, cond);
            f(RegClass::B, a);
            f(RegClass::B, b);
        }
        MovB { src, .. } => f(RegClass::B, src),
        BinB { a, b, .. } => {
            f(RegClass::B, a);
            f(RegClass::B, b);
        }
        JumpIfNot { cond, .. } => f(RegClass::B, cond),
        MovI { src, .. } => f(RegClass::I, src),
        SIToFP { a, .. } => f(RegClass::I, a),
        BinI { a, b, .. } | CmpI { a, b, .. } => {
            f(RegClass::I, a);
            f(RegClass::I, b);
        }
        LutVec { key, .. } | LutScalar { key, .. } | LutCubic { key, .. } => f(RegClass::F, key),
        ConstF { .. }
        | ConstI { .. }
        | ConstB { .. }
        | LoadParam { .. }
        | LoadDt { .. }
        | LoadTime { .. }
        | CellIndex { .. }
        | LoadState { .. }
        | LoadExt { .. }
        | HasParent { .. }
        | Jump { .. }
        | Ret => {}
    }
}

/// Visits every register an instruction reads.
fn for_each_use(instr: &Instr, mut f: impl FnMut(RegClass, u16)) {
    let mut copy = instr.clone();
    for_each_use_mut(&mut copy, |cls, r| f(cls, *r));
}

/// Visits every register field — defs and uses — for renumbering.
fn for_each_reg_mut(instr: &mut Instr, mut f: impl FnMut(RegClass, &mut u16)) {
    if let Some((cls, _)) = def_of(instr) {
        use Instr::*;
        match instr {
            ConstF { dst, .. }
            | ConstI { dst, .. }
            | ConstB { dst, .. }
            | MovF { dst, .. }
            | MovB { dst, .. }
            | MovI { dst, .. }
            | LoadParam { dst, .. }
            | LoadDt { dst }
            | LoadTime { dst }
            | CellIndex { dst }
            | LoadState { dst, .. }
            | LoadExt { dst, .. }
            | HasParent { dst }
            | LoadParentState { dst, .. }
            | BinF { dst, .. }
            | BinFK { dst, .. }
            | BinKF { dst, .. }
            | LoadStateOp { dst, .. }
            | LoadExtOp { dst, .. }
            | NegF { dst, .. }
            | FmaF { dst, .. }
            | Math1 { dst, .. }
            | Math2 { dst, .. }
            | CmpF { dst, .. }
            | CmpI { dst, .. }
            | BinB { dst, .. }
            | SelectF { dst, .. }
            | SelectB { dst, .. }
            | SIToFP { dst, .. }
            | BinI { dst, .. }
            | LutVec { dst, .. }
            | LutScalar { dst, .. }
            | LutCubic { dst, .. } => f(cls, dst),
            _ => {}
        }
    }
    for_each_use_mut(instr, f);
}

/// Whether an instruction has effects beyond writing its destination
/// register (stores, control flow). These anchor dead-code elimination.
fn has_side_effect(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::StoreState { .. }
            | Instr::StoreExt { .. }
            | Instr::StoreParentState { .. }
            | Instr::Jump { .. }
            | Instr::JumpIfNot { .. }
            | Instr::Ret
    )
}

fn jump_target_mut(instr: &mut Instr) -> Option<&mut u32> {
    match instr {
        Instr::Jump { target } | Instr::JumpIfNot { target, .. } => Some(target),
        _ => None,
    }
}

/// Basic-block leaders: instruction 0, every jump target, and every
/// instruction following a jump. Indexed by pc; one slot past the end so
/// `pc + 1` is always a valid probe.
fn leader_set(p: &Program) -> Vec<bool> {
    let n = p.instrs.len();
    let mut lead = vec![false; n + 1];
    if n > 0 {
        lead[0] = true;
    }
    for (pc, instr) in p.instrs.iter().enumerate() {
        if let Instr::Jump { target } | Instr::JumpIfNot { target, .. } = instr {
            lead[*target as usize] = true;
            lead[pc + 1] = true;
        }
    }
    lead
}

/// Exact scalar semantics of [`Instr::BinF`] — must match the engine.
fn fbin_scalar(op: FBin, x: f64, y: f64) -> f64 {
    match op {
        FBin::Add => x + y,
        FBin::Sub => x - y,
        FBin::Mul => x * y,
        FBin::Div => x / y,
        FBin::Rem => x % y,
        FBin::Min => x.min(y),
        FBin::Max => x.max(y),
    }
}

fn commutes(op: FBin) -> bool {
    // Min/Max commute for the engine's `f64::min`/`max` except on mixed
    // NaN operands (`min(NaN, x) = x` but `min(x, NaN) = NaN`), so only
    // Add and Mul are swapped. Add/Mul are bit-exact under swap (IEEE 754
    // addition/multiplication are commutative, including NaN payload
    // propagation on this target).
    matches!(op, FBin::Add | FBin::Mul)
}

/// Rebuilds `p.instrs` keeping only flagged instructions; jump targets
/// are remapped (a target pointing at a removed instruction slides to
/// the next kept one).
fn retain_instrs(p: &mut Program, keep: &[bool]) {
    let n = p.instrs.len();
    let mut map = vec![0u32; n + 1];
    let mut out = Vec::with_capacity(n);
    for pc in 0..n {
        map[pc] = out.len() as u32;
        if keep[pc] {
            out.push(p.instrs[pc].clone());
        }
    }
    map[n] = out.len() as u32;
    for instr in &mut out {
        if let Some(t) = jump_target_mut(instr) {
            *t = map[*t as usize];
        }
    }
    p.instrs = out;
}

/// Block-local forward copy propagation: rewrites reads of a `Mov`
/// destination to the source while neither is redefined. Returns whether
/// any operand changed.
fn copy_propagate(p: &mut Program) -> bool {
    let lead = leader_set(p);
    let mut changed = false;
    let mut copy_f: Vec<Option<u16>> = vec![None; p.n_fregs];
    let mut copy_b: Vec<Option<u16>> = vec![None; p.n_bregs];
    let mut copy_i: Vec<Option<u16>> = vec![None; p.n_iregs];
    // `lead` has one sentinel slot past the end — iterate instrs' length.
    for (pc, leader) in lead.iter().take(p.instrs.len()).enumerate() {
        if *leader {
            copy_f.iter_mut().for_each(|e| *e = None);
            copy_b.iter_mut().for_each(|e| *e = None);
            copy_i.iter_mut().for_each(|e| *e = None);
        }
        let instr = &mut p.instrs[pc];
        for_each_use_mut(instr, |cls, r| {
            let map = match cls {
                RegClass::F => &copy_f,
                RegClass::B => &copy_b,
                RegClass::I => &copy_i,
            };
            if let Some(Some(src)) = map.get(*r as usize) {
                if *src != *r {
                    *r = *src;
                    changed = true;
                }
            }
        });
        if let Some((cls, dst)) = def_of(instr) {
            let map = match cls {
                RegClass::F => &mut copy_f,
                RegClass::B => &mut copy_b,
                RegClass::I => &mut copy_i,
            };
            map[dst as usize] = None;
            for entry in map.iter_mut() {
                if *entry == Some(dst) {
                    *entry = None;
                }
            }
            match *instr {
                Instr::MovF { dst, src } if dst != src => copy_f[dst as usize] = Some(src),
                Instr::MovB { dst, src } if dst != src => copy_b[dst as usize] = Some(src),
                Instr::MovI { dst, src } if dst != src => copy_i[dst as usize] = Some(src),
                _ => {}
            }
        }
    }
    changed
}

/// Tries to fuse the adjacent pair `(x, y)` into one superinstruction.
/// `reads_f[t]` is the whole-program float read count; a candidate temp
/// must be read exactly once (by `y`) so dropping its def is safe.
fn try_fuse(x: &Instr, y: &Instr, reads_f: &[u32]) -> Option<(Instr, bool)> {
    // Mul + Add -> FmaF (the engine evaluates FmaF as mul-then-add, so
    // this is bit-exact).
    if let Instr::BinF {
        op: FBin::Mul,
        dst: t,
        a,
        b,
    } = *x
    {
        if let Instr::BinF {
            op: FBin::Add,
            dst,
            a: ya,
            b: yb,
        } = *y
        {
            if reads_f[t as usize] == 1 {
                if ya == t && yb != t {
                    return Some((Instr::FmaF { dst, a, b, c: yb }, true));
                }
                if yb == t && ya != t {
                    return Some((Instr::FmaF { dst, a, b, c: ya }, true));
                }
            }
        }
    }
    // Load + binop -> load-op.
    let loaded = match *x {
        Instr::LoadState { dst, var } => Some((dst, var, true)),
        Instr::LoadExt { dst, var } => Some((dst, var, false)),
        _ => None,
    };
    if let Some((t, var, is_state)) = loaded {
        if let Instr::BinF { op, dst, a, b } = *y {
            if reads_f[t as usize] == 1 && a != b {
                // The load must end up as the left operand; swap only
                // bit-exact-commutative ops.
                let other = if a == t {
                    Some(b)
                } else if b == t && commutes(op) {
                    Some(a)
                } else {
                    None
                };
                if let Some(other) = other {
                    let fused = if is_state {
                        Instr::LoadStateOp {
                            op,
                            dst,
                            var,
                            b: other,
                        }
                    } else {
                        Instr::LoadExtOp {
                            op,
                            dst,
                            var,
                            b: other,
                        }
                    };
                    return Some((fused, false));
                }
            }
        }
    }
    None
}

/// One peephole sweep over adjacent instruction pairs. A pair is only
/// fused when no jump lands between its halves.
fn fuse_peepholes(p: &mut Program, stats: &mut OptStats) -> bool {
    let lead = leader_set(p);
    let mut reads_f = vec![0u32; p.n_fregs];
    for instr in &p.instrs {
        for_each_use(instr, |cls, r| {
            if cls == RegClass::F {
                reads_f[r as usize] += 1;
            }
        });
    }
    let n = p.instrs.len();
    let mut out = Vec::with_capacity(n);
    let mut map = vec![0u32; n + 1];
    let mut pc = 0;
    let mut changed = false;
    while pc < n {
        map[pc] = out.len() as u32;
        let fused = if pc + 1 < n && !lead[pc + 1] {
            try_fuse(&p.instrs[pc], &p.instrs[pc + 1], &reads_f)
        } else {
            None
        };
        if let Some((instr, is_fma)) = fused {
            // The consumed slot can't be a jump target (leader check),
            // but fill the map so remapping below stays total.
            map[pc + 1] = out.len() as u32;
            out.push(instr);
            if is_fma {
                stats.fused_fma += 1;
            } else {
                stats.fused_loadop += 1;
            }
            changed = true;
            pc += 2;
        } else {
            out.push(p.instrs[pc].clone());
            pc += 1;
        }
    }
    map[n] = out.len() as u32;
    for instr in &mut out {
        if let Some(t) = jump_target_mut(instr) {
            *t = map[*t as usize];
        }
    }
    p.instrs = out;
    changed
}

/// Rewrites binops whose operands are known constants. A register counts
/// as constant when its *only* definition in the whole program is a
/// `ConstF` — the source IR is verified SSA, so that definition dominates
/// every use (multi-def loop/branch registers never qualify).
fn fuse_const_operands(p: &mut Program, stats: &mut OptStats) -> bool {
    let mut def_count = vec![0u32; p.n_fregs];
    for instr in &p.instrs {
        if let Some((RegClass::F, d)) = def_of(instr) {
            def_count[d as usize] += 1;
        }
    }
    let mut const_val: Vec<Option<f64>> = vec![None; p.n_fregs];
    for instr in &p.instrs {
        if let Instr::ConstF { dst, v } = instr {
            if def_count[*dst as usize] == 1 {
                const_val[*dst as usize] = Some(*v);
            }
        }
    }
    let mut changed = false;
    for instr in &mut p.instrs {
        if let Instr::BinF { op, dst, a, b } = *instr {
            let (ka, kb) = (const_val[a as usize], const_val[b as usize]);
            *instr = match (ka, kb) {
                (Some(x), Some(y)) => {
                    stats.consts_folded += 1;
                    Instr::ConstF {
                        dst,
                        v: fbin_scalar(op, x, y),
                    }
                }
                (None, Some(k)) => {
                    stats.fused_const += 1;
                    Instr::BinFK { op, dst, a, k }
                }
                (Some(k), None) => {
                    stats.fused_const += 1;
                    if commutes(op) {
                        Instr::BinFK { op, dst, a: b, k }
                    } else {
                        Instr::BinKF { op, dst, k, a: b }
                    }
                }
                (None, None) => continue,
            };
            changed = true;
        }
    }
    changed
}

/// Use-count dead-code elimination to fixpoint: drops pure instructions
/// whose destination is never read (plus self-movs). Removal cascades —
/// deleting a reader can orphan its operands' defs.
fn dce(p: &mut Program, stats: &mut OptStats) -> bool {
    let n = p.instrs.len();
    let mut keep = vec![true; n];
    loop {
        let mut reads_f = vec![0u32; p.n_fregs];
        let mut reads_b = vec![0u32; p.n_bregs];
        let mut reads_i = vec![0u32; p.n_iregs];
        for (pc, instr) in p.instrs.iter().enumerate() {
            if !keep[pc] {
                continue;
            }
            for_each_use(instr, |cls, r| {
                match cls {
                    RegClass::F => reads_f[r as usize] += 1,
                    RegClass::B => reads_b[r as usize] += 1,
                    RegClass::I => reads_i[r as usize] += 1,
                };
            });
        }
        let mut any = false;
        for (pc, instr) in p.instrs.iter().enumerate() {
            if !keep[pc] || has_side_effect(instr) {
                continue;
            }
            let self_mov = matches!(
                instr,
                Instr::MovF { dst, src } | Instr::MovB { dst, src } | Instr::MovI { dst, src }
                    if dst == src
            );
            let dead = match def_of(instr) {
                Some((RegClass::F, d)) => reads_f[d as usize] == 0,
                Some((RegClass::B, d)) => reads_b[d as usize] == 0,
                Some((RegClass::I, d)) => reads_i[d as usize] == 0,
                None => false,
            };
            if dead || self_mov {
                keep[pc] = false;
                any = true;
                stats.instrs_removed += 1;
                if matches!(
                    instr,
                    Instr::MovF { .. } | Instr::MovB { .. } | Instr::MovI { .. }
                ) {
                    stats.movs_removed += 1;
                }
            }
        }
        if !any {
            break;
        }
    }
    if keep.iter().all(|&k| k) {
        return false;
    }
    retain_instrs(p, &keep);
    true
}

/// Renumbers one register file with a linear-scan allocator. Live
/// intervals span every textual occurrence of a register; any interval
/// overlapping a loop (a backward jump's `[target, pc]` span) is widened
/// to cover the whole loop, which conservatively accounts for values
/// carried across the backedge. Returns `(old, new)` file sizes.
fn compact_class(p: &mut Program, cls: RegClass) -> (usize, usize) {
    let old_n = match cls {
        RegClass::F => p.n_fregs,
        RegClass::B => p.n_bregs,
        RegClass::I => p.n_iregs,
    };
    let mut start = vec![usize::MAX; old_n];
    let mut end = vec![0usize; old_n];
    for (pc, instr) in p.instrs.iter().enumerate() {
        let mut occur = |r: u16| {
            let r = r as usize;
            start[r] = start[r].min(pc);
            end[r] = end[r].max(pc);
        };
        if let Some((c, d)) = def_of(instr) {
            if c == cls {
                occur(d);
            }
        }
        for_each_use(instr, |c, r| {
            if c == cls {
                occur(r);
            }
        });
    }
    let mut loops = Vec::new();
    for (pc, instr) in p.instrs.iter().enumerate() {
        if let Instr::Jump { target } | Instr::JumpIfNot { target, .. } = instr {
            let t = *target as usize;
            if t <= pc {
                loops.push((t, pc));
            }
        }
    }
    loop {
        let mut widened = false;
        for &(lo, hi) in &loops {
            for r in 0..old_n {
                if start[r] == usize::MAX || start[r] > hi || end[r] < lo {
                    continue;
                }
                if start[r] > lo {
                    start[r] = lo;
                    widened = true;
                }
                if end[r] < hi {
                    end[r] = hi;
                    widened = true;
                }
            }
        }
        if !widened {
            break;
        }
    }
    let mut order: Vec<usize> = (0..old_n).filter(|&r| start[r] != usize::MAX).collect();
    order.sort_by_key(|&r| (start[r], end[r]));
    let mut assign = vec![0u16; old_n];
    // Max-heaps over `Reverse` give "earliest end" / "lowest slot" pops.
    let mut active: BinaryHeap<std::cmp::Reverse<(usize, u16)>> = BinaryHeap::new();
    let mut free: BinaryHeap<std::cmp::Reverse<u16>> = BinaryHeap::new();
    let mut next_slot: u16 = 0;
    for &r in &order {
        while let Some(&std::cmp::Reverse((e, s))) = active.peek() {
            if e < start[r] {
                active.pop();
                free.push(std::cmp::Reverse(s));
            } else {
                break;
            }
        }
        let slot = match free.pop() {
            Some(std::cmp::Reverse(s)) => s,
            None => {
                let s = next_slot;
                next_slot += 1;
                s
            }
        };
        assign[r] = slot;
        active.push(std::cmp::Reverse((end[r], slot)));
    }
    for instr in &mut p.instrs {
        for_each_reg_mut(instr, |c, r| {
            if c == cls {
                *r = assign[*r as usize];
            }
        });
    }
    let new_n = next_slot as usize;
    match cls {
        RegClass::F => p.n_fregs = new_n,
        RegClass::B => p.n_bregs = new_n,
        RegClass::I => p.n_iregs = new_n,
    }
    (old_n, new_n)
}

/// Optimizes a compiled program in place and reports what changed.
///
/// Semantics are preserved bit-for-bit: every rewrite either renames
/// registers, deletes computation whose result is provably never
/// observed, or replaces an instruction pair with a superinstruction the
/// engine evaluates with the exact same float operations in the same
/// order.
pub fn optimize_program(p: &mut Program) -> OptStats {
    let mut stats = OptStats {
        instrs_before: p.instrs.len() as u64,
        ..OptStats::default()
    };
    // Rewrites enable each other (DCE exposes new adjacent pairs, fusion
    // orphans temps, ...); iterate the sequence to a bounded fixpoint.
    for _ in 0..8 {
        let mut changed = false;
        changed |= copy_propagate(p);
        changed |= fuse_peepholes(p, &mut stats);
        changed |= fuse_const_operands(p, &mut stats);
        changed |= dce(p, &mut stats);
        if !changed {
            break;
        }
    }
    let (of, nf) = compact_class(p, RegClass::F);
    let (ob, nb) = compact_class(p, RegClass::B);
    let (oi, ni) = compact_class(p, RegClass::I);
    stats.fregs_freed = (of - nf) as u64;
    stats.bregs_freed = (ob - nb) as u64;
    stats.iregs_freed = (oi - ni) as u64;
    stats.instrs_after = p.instrs.len() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(instrs: Vec<Instr>, n_fregs: usize, n_bregs: usize, n_iregs: usize) -> Program {
        Program {
            instrs,
            n_fregs,
            n_bregs,
            n_iregs,
            state_vars: vec!["x".into(), "y".into()],
            ext_vars: vec!["Vm".into()],
            params: vec![],
            lut_tables: vec![],
            parent_vars: vec![],
        }
    }

    #[test]
    fn mul_add_pair_fuses_to_fma() {
        let mut p = program(
            vec![
                Instr::LoadState { dst: 0, var: 0 },
                Instr::LoadState { dst: 1, var: 1 },
                Instr::BinF {
                    op: FBin::Mul,
                    dst: 2,
                    a: 0,
                    b: 1,
                },
                Instr::BinF {
                    op: FBin::Add,
                    dst: 3,
                    a: 2,
                    b: 0,
                },
                Instr::StoreState { src: 3, var: 0 },
                // Second uses of both loads keep load-op fusion away so
                // the Mul+Add peephole is what fires.
                Instr::StoreState { src: 1, var: 1 },
                Instr::Ret,
            ],
            4,
            0,
            0,
        );
        let stats = optimize_program(&mut p);
        assert_eq!(stats.fused_fma, 1);
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::FmaF { .. })));
        assert!(!p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::BinF { op: FBin::Mul, .. })));
    }

    #[test]
    fn copy_prop_then_dce_removes_movs() {
        // f1 = f0; f2 = f1 + f1; store f2  =>  mov dead after copy prop.
        let mut p = program(
            vec![
                Instr::LoadState { dst: 0, var: 0 },
                Instr::MovF { dst: 1, src: 0 },
                Instr::BinF {
                    op: FBin::Add,
                    dst: 2,
                    a: 1,
                    b: 1,
                },
                Instr::StoreState { src: 2, var: 0 },
                Instr::Ret,
            ],
            3,
            0,
            0,
        );
        let stats = optimize_program(&mut p);
        assert_eq!(stats.movs_removed, 1);
        assert!(!p.instrs.iter().any(|i| matches!(i, Instr::MovF { .. })));
        // Registers compact: only the load dst and add dst remain... and
        // the add reads the load, so two intervals overlap -> 2 regs.
        assert_eq!(p.n_fregs, 2);
    }

    #[test]
    fn const_operand_fuses_and_const_def_dies() {
        let mut p = program(
            vec![
                Instr::ConstF { dst: 0, v: 2.5 },
                Instr::LoadState { dst: 1, var: 0 },
                Instr::BinF {
                    op: FBin::Sub,
                    dst: 2,
                    a: 0,
                    b: 1,
                },
                Instr::StoreState { src: 2, var: 0 },
                Instr::Ret,
            ],
            3,
            0,
            0,
        );
        let stats = optimize_program(&mut p);
        assert_eq!(stats.fused_const, 1);
        // Const on the left of a Sub must keep operand order.
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::BinKF { op: FBin::Sub, k, .. } if *k == 2.5)));
        assert!(!p.instrs.iter().any(|i| matches!(i, Instr::ConstF { .. })));
    }

    #[test]
    fn two_const_operands_fold() {
        let mut p = program(
            vec![
                Instr::ConstF { dst: 0, v: 2.0 },
                Instr::ConstF { dst: 1, v: 3.0 },
                Instr::BinF {
                    op: FBin::Mul,
                    dst: 2,
                    a: 0,
                    b: 1,
                },
                Instr::StoreState { src: 2, var: 0 },
                Instr::Ret,
            ],
            3,
            0,
            0,
        );
        let stats = optimize_program(&mut p);
        assert_eq!(stats.consts_folded, 1);
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::ConstF { v, .. } if *v == 6.0)));
        assert_eq!(p.n_fregs, 1);
    }

    #[test]
    fn load_feeding_one_binop_fuses() {
        let mut p = program(
            vec![
                Instr::LoadExt { dst: 0, var: 0 },
                Instr::LoadState { dst: 1, var: 0 },
                Instr::BinF {
                    op: FBin::Sub,
                    dst: 2,
                    a: 1,
                    b: 0,
                },
                Instr::StoreState { src: 2, var: 0 },
                Instr::Ret,
            ],
            3,
            0,
            0,
        );
        let stats = optimize_program(&mut p);
        assert_eq!(stats.fused_loadop, 1);
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::LoadStateOp { op: FBin::Sub, .. })));
    }

    #[test]
    fn fusion_blocked_when_jump_targets_second_half() {
        let mut p = program(
            vec![
                Instr::ConstB { dst: 0, v: true },
                Instr::JumpIfNot { cond: 0, target: 3 },
                Instr::BinF {
                    op: FBin::Mul,
                    dst: 1,
                    a: 0,
                    b: 0,
                },
                // Jump target: must stay addressable, so no fusion with
                // the Mul above.
                Instr::BinF {
                    op: FBin::Add,
                    dst: 2,
                    a: 1,
                    b: 1,
                },
                Instr::StoreState { src: 2, var: 0 },
                Instr::Ret,
            ],
            3,
            1,
            0,
        );
        let stats = optimize_program(&mut p);
        assert_eq!(stats.fused_fma, 0);
    }

    #[test]
    fn jump_targets_remap_after_deletion() {
        // Dead const sits between a conditional jump and its target.
        let mut p = program(
            vec![
                Instr::ConstB { dst: 0, v: false },
                Instr::JumpIfNot { cond: 0, target: 3 },
                Instr::ConstF { dst: 0, v: 9.0 }, // dead
                Instr::LoadState { dst: 1, var: 0 },
                Instr::StoreState { src: 1, var: 1 },
                Instr::Ret,
            ],
            2,
            1,
            0,
        );
        optimize_program(&mut p);
        // The dead const is gone and the jump still lands on the load.
        assert!(!p.instrs.iter().any(|i| matches!(i, Instr::ConstF { .. })));
        let Instr::JumpIfNot { target, .. } = p.instrs[1] else {
            panic!("expected JumpIfNot, got {:?}", p.instrs[1]);
        };
        assert!(matches!(p.instrs[target as usize], Instr::LoadState { .. }));
    }

    #[test]
    fn loop_carried_register_not_clobbered_by_compaction() {
        // i0 counts 0..3; f0 accumulates across the backedge while f1 is
        // a loop-body temp. A naive allocator could overlap them.
        let mut p = program(
            vec![
                Instr::ConstF { dst: 0, v: 0.0 }, // acc
                Instr::ConstI { dst: 0, v: 0 },   // iv
                Instr::ConstI { dst: 1, v: 3 },   // limit
                Instr::ConstI { dst: 2, v: 1 },   // step
                // loop head (pc 4)
                Instr::CmpI {
                    pred: limpet_ir::CmpIPred::Slt,
                    dst: 0,
                    a: 0,
                    b: 1,
                },
                Instr::JumpIfNot {
                    cond: 0,
                    target: 10,
                },
                Instr::LoadState { dst: 1, var: 0 }, // temp
                Instr::BinF {
                    op: FBin::Add,
                    dst: 0,
                    a: 0,
                    b: 1,
                },
                Instr::BinI {
                    op: crate::bytecode::IBin::Add,
                    dst: 0,
                    a: 0,
                    b: 2,
                },
                Instr::Jump { target: 4 },
                Instr::StoreState { src: 0, var: 1 }, // pc 10
                Instr::Ret,
            ],
            2,
            1,
            3,
        );
        let stats = optimize_program(&mut p);
        assert_eq!(stats.instrs_after as usize, p.instrs.len());
        // All three integer registers are live across the backedge, so
        // the conservative loop widening must keep them apart.
        assert_eq!(p.n_iregs, 3);
        // The backward jump still lands on the loop head (the compare).
        let back = p
            .instrs
            .iter()
            .enumerate()
            .find_map(|(pc, i)| match i {
                Instr::Jump { target } if (*target as usize) <= pc => Some(*target as usize),
                _ => None,
            })
            .expect("backward jump survived");
        assert!(matches!(p.instrs[back], Instr::CmpI { .. }));
    }

    #[test]
    fn toggle_round_trips() {
        assert!(bytecode_opt_enabled());
        set_bytecode_opt(false);
        assert!(!bytecode_opt_enabled());
        set_bytecode_opt(true);
        assert!(bytecode_opt_enabled());
    }
}
