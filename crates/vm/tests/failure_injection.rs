//! Failure-injection tests: malformed inputs must produce errors, not
//! panics or silent memory corruption.

use limpet_ir::{Builder, Func, Module};
use limpet_vm::{Kernel, ModelInfo};

fn module_touching(state: &str, ext: &str) -> Module {
    let mut m = Module::new("t");
    let mut f = Func::new("compute", &[], &[]);
    let mut b = Builder::new(&mut f);
    let x = b.get_state(state);
    let v = b.get_ext(ext);
    let s = b.addf(x, v);
    b.set_state(state, s);
    b.ret(&[]);
    m.add_func(f);
    m
}

#[test]
fn unknown_state_variable_is_a_compile_error() {
    let m = module_touching("ghost", "Vm");
    let info = ModelInfo {
        state_names: vec!["x".into()],
        state_inits: vec![0.0],
        ext_names: vec!["Vm".into()],
        ext_inits: vec![0.0],
        params: vec![],
    };
    let err = Kernel::from_module(&m, &info).unwrap_err();
    assert!(err.to_string().contains("ghost"), "{err}");
}

#[test]
fn unknown_external_variable_is_a_compile_error() {
    let m = module_touching("x", "phantom");
    let info = ModelInfo {
        state_names: vec!["x".into()],
        state_inits: vec![0.0],
        ext_names: vec!["Vm".into()],
        ext_inits: vec![0.0],
        params: vec![],
    };
    let err = Kernel::from_module(&m, &info).unwrap_err();
    assert!(err.to_string().contains("phantom"), "{err}");
}

#[test]
fn unknown_parameter_defaults_to_zero() {
    // Parameters are uniform scalars; an unbound one reads 0.0 (openCARP
    // treats unset parameters as zero-initialized), not an error.
    let mut m = Module::new("t");
    let mut f = Func::new("compute", &[], &[]);
    let mut b = Builder::new(&mut f);
    let p = b.param("unbound");
    b.set_state("x", p);
    b.ret(&[]);
    m.add_func(f);
    let info = ModelInfo {
        state_names: vec!["x".into()],
        state_inits: vec![1.0],
        ext_names: vec![],
        ext_inits: vec![],
        params: vec![],
    };
    let kernel = Kernel::from_module(&m, &info).unwrap();
    let mut st = kernel.new_states(8, limpet_vm::StateLayout::Aos);
    let mut ext = kernel.new_ext(8);
    kernel.run_step(
        &mut st,
        &mut ext,
        None,
        limpet_vm::SimContext { dt: 0.01, t: 0.0 },
    );
    assert_eq!(st.get(0, 0), 0.0);
}

#[test]
fn module_without_compute_is_a_compile_error() {
    let m = Module::new("empty");
    let err = Kernel::from_module(&m, &ModelInfo::default()).unwrap_err();
    assert!(err.to_string().contains("compute"), "{err}");
}

#[test]
fn unsupported_vector_width_is_a_compile_error() {
    let mut m = Module::new("t");
    let mut f = Func::new("compute", &[], &[]);
    Builder::new(&mut f).ret(&[]);
    m.add_func(f);
    m.attrs.set("vector_width", 3i64);
    let err = Kernel::from_module(&m, &ModelInfo::default()).unwrap_err();
    assert!(err.to_string().contains("width"), "{err}");
}

#[test]
fn lut_function_reading_state_is_a_compile_error() {
    // A LUT column function must be closed over its key + params; one
    // that reads cell state cannot be tabulated.
    let mut m = Module::new("t");
    let mut lf = Func::new("lut_Vm", &[limpet_ir::Type::F64], &[limpet_ir::Type::F64]);
    let mut lb = Builder::new(&mut lf);
    let bad = lb.get_state("x"); // illegal inside a LUT function
    lb.ret(&[bad]);
    m.add_func(lf);
    m.luts.push(limpet_ir::LutSpec {
        name: "Vm".into(),
        lo: 0.0,
        hi: 1.0,
        step: 0.5,
        func: "lut_Vm".into(),
        cols: vec!["c0".into()],
    });
    let mut f = Func::new("compute", &[], &[]);
    Builder::new(&mut f).ret(&[]);
    m.add_func(f);
    let info = ModelInfo {
        state_names: vec!["x".into()],
        state_inits: vec![0.0],
        ..Default::default()
    };
    let result = std::panic::catch_unwind(|| Kernel::from_module(&m, &info));
    // Either a clean CompileError or a deliberate panic from the
    // ParamOnlyContext guard; never silent acceptance.
    if let Ok(Ok(_)) = result {
        panic!("state-reading LUT function must not compile")
    }
}
