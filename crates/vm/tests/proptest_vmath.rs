//! Property tests for the vmath (SVML stand-in) kernels: block results
//! agree with `std` within the advertised tolerance over random inputs in
//! each function's full domain, and lane results are independent of
//! position and block size.

use limpet_vm::vmath;
use proptest::prelude::*;

fn rel_err(got: f64, want: f64) -> f64 {
    if got == want || (got.is_nan() && want.is_nan()) {
        return 0.0;
    }
    (got - want).abs() / want.abs().max(1e-300)
}

macro_rules! unary_matches_std {
    ($test:ident, $block:path, $std:path, $range:expr, $tol:expr) => {
        proptest! {
            #[test]
            fn $test(xs in prop::collection::vec($range, 1..16)) {
                let mut got = xs.clone();
                $block(&mut got);
                for (g, x) in got.iter().zip(&xs) {
                    let want = $std(*x);
                    prop_assert!(
                        rel_err(*g, want) < $tol || (g - want).abs() < 1e-280,
                        "f({x}) = {g}, want {want}"
                    );
                }
            }
        }
    };
}

unary_matches_std!(
    exp_random,
    vmath::exp_block,
    f64::exp,
    -700.0f64..700.0,
    1e-12
);
unary_matches_std!(log_random, vmath::log_block, f64::ln, 1e-12f64..1e12, 1e-12);
unary_matches_std!(
    tanh_random,
    vmath::tanh_block,
    f64::tanh,
    -40.0f64..40.0,
    1e-11
);
unary_matches_std!(
    sinh_random,
    vmath::sinh_block,
    f64::sinh,
    -40.0f64..40.0,
    1e-10
);
unary_matches_std!(
    cosh_random,
    vmath::cosh_block,
    f64::cosh,
    -40.0f64..40.0,
    1e-11
);
unary_matches_std!(
    sin_random,
    vmath::sin_block,
    f64::sin,
    -1000.0f64..1000.0,
    1e-9
);
unary_matches_std!(
    cos_random,
    vmath::cos_block,
    f64::cos,
    -1000.0f64..1000.0,
    1e-9
);
unary_matches_std!(
    expm1_random,
    vmath::expm1_block,
    f64::exp_m1,
    -20.0f64..20.0,
    1e-10
);
unary_matches_std!(
    log1p_random,
    vmath::log1p_block,
    f64::ln_1p,
    -0.999f64..1e6,
    1e-10
);
unary_matches_std!(
    log10_random,
    vmath::log10_block,
    f64::log10,
    1e-12f64..1e12,
    1e-12
);

proptest! {
    #[test]
    fn pow_random(
        bases in prop::collection::vec(1e-6f64..1e3, 1..16),
        expo in -20.0f64..20.0,
    ) {
        let mut got = bases.clone();
        let ys = vec![expo; got.len()];
        vmath::pow_block(&mut got, &ys);
        for (g, b) in got.iter().zip(&bases) {
            let want = b.powf(expo);
            prop_assert!(
                rel_err(*g, want) < 1e-10 || (g - want).abs() < 1e-280,
                "pow({b}, {expo}) = {g}, want {want}"
            );
        }
    }

    /// Lane independence: a value's result must not depend on its
    /// neighbours or its position in the block.
    #[test]
    fn lane_independence(x in -50.0f64..50.0, noise in prop::collection::vec(-50.0f64..50.0, 7)) {
        let mut alone = [x];
        vmath::exp_block(&mut alone);
        for pos in 0..8 {
            let mut block: Vec<f64> = noise.clone();
            block.insert(pos, x);
            vmath::exp_block(&mut block);
            prop_assert_eq!(block[pos], alone[0], "position {}", pos);
        }
    }

    /// Monotonicity of exp on sorted random inputs (a structural property
    /// polynomial approximations can silently break at split boundaries).
    #[test]
    fn exp_is_monotone(mut xs in prop::collection::vec(-700.0f64..700.0, 2..32)) {
        xs.sort_by(f64::total_cmp);
        let mut ys = xs.clone();
        vmath::exp_block(&mut ys);
        for w in ys.windows(2) {
            prop_assert!(w[0] <= w[1] * (1.0 + 1e-12), "{} > {}", w[0], w[1]);
        }
    }
}
