//! Differential tests: every compilation pipeline (baseline, limpetMLIR at
//! each ISA width, compiler-simd, both data layouts) must produce the same
//! simulation trajectory — vectorization and layout are performance
//! transformations, not semantic ones.
//!
//! The tolerance accounts for the vmath (SVML stand-in) kernels being
//! ~1e-12-accurate rather than bit-identical to `std`.

use limpet_codegen::pipeline::{self, Layout, VectorIsa};
use limpet_easyml::Model;
use limpet_ir::Module;
use limpet_vm::{CellStates, ExtArrays, Kernel, ModelInfo, SimContext, StateLayout};

/// A small but representative gated ionic model: Rush-Larsen gate, LUT on
/// Vm, conditional branch, parameter, and an external current output.
const MODEL: &str = "
Vm; .external(); .lookup(-100, 100, 0.05);
Iion; .external();
group{ g_max = 0.4; E_rev = -85.0; }.param();
n_inf = 1.0 / (1.0 + exp(-(Vm + 30.0) / 10.0));
tau_n = 1.0 + 4.0 * exp(-square(Vm + 30.0) / 500.0);
diff_n = (n_inf - n) / tau_n;
n_init = 0.05;
n;.method(rush_larsen);
diff_w = alpha * (1.0 - w) - beta * w;
alpha = 0.02 * exp(Vm / 25.0);
beta = 0.05 * exp(-Vm / 30.0);
w_init = 0.2;
w;.method(rk2);
diff_c = (target - c) / 20.0;
c_init = 0.1;
if (Vm > 0.0) { target = 1.0; } else { target = 0.0; }
Iion = g_max * n * w * (Vm - E_rev) + 0.01 * c;
";

fn model() -> Model {
    limpet_easyml::compile_model("Diff", MODEL).unwrap()
}

fn info(m: &Model) -> ModelInfo {
    ModelInfo {
        state_names: m.states.iter().map(|s| s.name.clone()).collect(),
        state_inits: m.states.iter().map(|s| s.init).collect(),
        ext_names: m.externals.iter().map(|e| e.name.clone()).collect(),
        ext_inits: m.externals.iter().map(|e| e.init).collect(),
        params: m
            .params
            .iter()
            .map(|p| (p.name.clone(), p.default))
            .collect(),
    }
}

/// Runs `steps` of a voltage-clamp protocol and returns the final state
/// and Iion of every cell.
fn simulate(module: &Module, mi: &ModelInfo, layout: StateLayout, steps: usize) -> Vec<f64> {
    let kernel = Kernel::from_module(module, mi).unwrap();
    let n_cells = 32;
    let mut state = kernel.new_states(n_cells, layout);
    let mut ext: ExtArrays = kernel.new_ext(n_cells);
    let dt = 0.02;
    for step in 0..steps {
        let t = step as f64 * dt;
        // Drive Vm with a per-cell waveform (stimulus + relaxation).
        for cell in 0..n_cells {
            let phase = cell as f64 * 0.37;
            let vm = -80.0 + 95.0 * (0.5 + 0.5 * (0.11 * t + phase).sin());
            ext.set(cell, 0, vm);
        }
        kernel.run_step(&mut state, &mut ext, None, SimContext { dt, t });
    }
    let mut out = Vec::new();
    for cell in 0..n_cells {
        for var in 0..state.n_vars() {
            out.push(state.get(cell, var));
        }
        out.push(ext.get(cell, 1)); // Iion
    }
    out
}

fn assert_close(a: &[f64], b: &[f64], tol: f64, what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let denom = x.abs().max(1e-9);
        let rel = (x - y).abs() / denom;
        assert!(
            rel < tol,
            "{what}: element {i} differs: {x} vs {y} (rel {rel:.3e})"
        );
    }
}

#[test]
fn all_pipelines_agree_on_trajectory() {
    let m = model();
    let mi = info(&m);
    let steps = 400;

    let base = pipeline::baseline(&m);
    let reference = simulate(&base.module, &mi, StateLayout::Aos, steps);
    assert!(
        reference.iter().all(|v| v.is_finite()),
        "baseline produced non-finite values"
    );
    // The trajectory must actually evolve (guard against a no-op kernel).
    assert!(reference.iter().any(|&v| v != 0.0 && v != 0.05 && v != 0.2));

    for isa in VectorIsa::ALL {
        let block = isa.lanes();
        let opt = pipeline::limpet_mlir(&m, isa, Layout::AoSoA { block });
        let got = simulate(
            &opt.module,
            &mi,
            StateLayout::AoSoA {
                block: block as usize,
            },
            steps,
        );
        assert_close(&reference, &got, 1e-6, isa.name());
    }
}

#[test]
fn layouts_agree_exactly_for_same_module() {
    let m = model();
    let mi = info(&m);
    let opt = pipeline::limpet_mlir(&m, VectorIsa::Avx512, Layout::AoSoA { block: 8 });
    let a = simulate(&opt.module, &mi, StateLayout::Aos, 200);
    let b = simulate(&opt.module, &mi, StateLayout::AoSoA { block: 8 }, 200);
    // Same module, different storage: bit-identical.
    assert_eq!(a, b);
}

#[test]
fn compiler_simd_agrees() {
    let m = model();
    let mi = info(&m);
    let base = pipeline::baseline(&m);
    let reference = simulate(&base.module, &mi, StateLayout::Aos, 200);
    let icc = pipeline::compiler_simd(&m, VectorIsa::Avx512);
    let got = simulate(&icc.module, &mi, StateLayout::Aos, 200);
    assert_close(&reference, &got, 1e-6, "compiler-simd");
}

#[test]
fn no_lut_agrees_with_lut() {
    let m = model();
    let mi = info(&m);
    let with = pipeline::limpet_mlir(&m, VectorIsa::Avx2, Layout::AoSoA { block: 4 });
    let without = pipeline::limpet_mlir_no_lut(&m, VectorIsa::Avx2);
    let a = simulate(&with.module, &mi, StateLayout::AoSoA { block: 4 }, 200);
    let b = simulate(&without.module, &mi, StateLayout::AoSoA { block: 4 }, 200);
    // LUT interpolation error at step 0.05 over smooth rates: small but
    // not zero.
    assert_close(&a, &b, 1e-3, "lut-vs-nolut");
}

#[test]
fn scalar_optimized_agrees_bitwise_modulo_reassociation() {
    // Running the scalar optimization pipeline (width 1: const-prop, CSE,
    // LICM, DCE — no vectorize) must not change semantics either.
    let m = model();
    let mi = info(&m);
    let base = pipeline::baseline(&m);
    let reference = simulate(&base.module, &mi, StateLayout::Aos, 200);

    let mut opt =
        limpet_codegen::lower_model(&m, &limpet_codegen::CodegenOptions { use_lut: true });
    let pm = limpet_passes::standard_pipeline(1);
    pm.run(&mut opt.module).expect("pipeline runs");
    opt.module.attrs.set("layout", "aos");
    let got = simulate(&opt.module, &mi, StateLayout::Aos, 200);
    assert_close(&reference, &got, 1e-9, "scalar-optimized");
}

#[test]
fn all_integration_methods_run_stably() {
    for method in ["fe", "rk2", "rk4", "rush_larsen", "sundnes", "markov_be"] {
        let src = format!(
            "Vm; .external();\n\
             diff_g = (g_inf - g) / 3.0;\n\
             g_inf = 1.0 / (1.0 + exp(-Vm / 8.0));\n\
             g_init = 0.5;\n\
             g;.method({method});"
        );
        let m = limpet_easyml::compile_model("M", &src).unwrap();
        let mi = info(&m);
        for build in [
            pipeline::baseline(&m),
            pipeline::limpet_mlir(&m, VectorIsa::Avx512, Layout::AoSoA { block: 8 }),
        ] {
            let kernel = Kernel::from_module(&build.module, &mi).unwrap();
            let layout = match build.module.attrs.str_of("layout") {
                Some("aos") => StateLayout::Aos,
                _ => StateLayout::AoSoA { block: 8 },
            };
            let mut state: CellStates = kernel.new_states(8, layout);
            let mut ext = kernel.new_ext(8);
            for step in 0..1000 {
                for cell in 0..8 {
                    ext.set(cell, 0, 20.0 * ((step as f64) * 0.01).sin());
                }
                kernel.run_step(
                    &mut state,
                    &mut ext,
                    None,
                    SimContext {
                        dt: 0.01,
                        t: step as f64 * 0.01,
                    },
                );
            }
            // A gate must stay within [0, 1] under every method.
            for cell in 0..8 {
                let g = state.get(cell, 0);
                assert!(
                    (0.0..=1.0).contains(&g),
                    "method {method}: gate escaped to {g}"
                );
            }
        }
    }
}
