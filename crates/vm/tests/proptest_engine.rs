//! Property test: for randomly generated kernels, the bytecode engine at
//! every lane width (1 = scalar, 2/4/8 = SSE/AVX2/AVX-512 emulation, with
//! the full optimization pipeline applied) computes the same per-cell
//! results as the reference tree-walking evaluator on the unoptimized
//! scalar module.
//!
//! This pins down the end-to-end semantics-preservation claim: constant
//! propagation, CSE, LICM, DCE, if-conversion, splat/broadcast insertion,
//! LUT vectorization, and the engine's lane loops may only differ from the
//! oracle by vmath (SVML stand-in) accuracy.

#![allow(clippy::needless_range_loop)]

use limpet_ir::{Builder, CmpFPred, Func, LutSpec, MathFn, Module, Type, ValueId};
use limpet_vm::{
    eval_func, CellStates, EvalContext, ExtArrays, Kernel, LutData, ModelInfo, SimContext,
    StateLayout,
};
use proptest::prelude::*;
use std::collections::HashMap;

const STATE_VARS: [&str; 4] = ["u1", "u2", "u3", "u4"];
const EXT_VARS: [&str; 2] = ["Vm", "Iion"];
const PARAMS: [(&str, f64); 2] = [("Cm", 2.5), ("beta", -0.75)];

/// Safe-ish unary math functions (total over ℝ, NaN-propagating).
const UNARY: [MathFn; 10] = [
    MathFn::Exp,
    MathFn::Tanh,
    MathFn::Sin,
    MathFn::Cos,
    MathFn::Abs,
    MathFn::Floor,
    MathFn::Ceil,
    MathFn::Round,
    MathFn::Sinh,
    MathFn::Cosh,
];

#[derive(Debug, Clone)]
enum Recipe {
    Const(f64),
    GetState(u8),
    GetExt(u8),
    Param(u8),
    Dt,
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Min,
    Max,
    Math(u8),
    Cmp(u8),
    Select,
    If(Vec<Recipe>, Vec<Recipe>),
    Lut,
    SetState(u8),
}

fn leaf() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        (-50.0f64..50.0).prop_map(Recipe::Const),
        (0u8..4).prop_map(Recipe::GetState),
        (0u8..1).prop_map(Recipe::GetExt),
        (0u8..2).prop_map(Recipe::Param),
        Just(Recipe::Dt),
        Just(Recipe::Add),
        Just(Recipe::Sub),
        Just(Recipe::Mul),
        Just(Recipe::Div),
        Just(Recipe::Neg),
        Just(Recipe::Min),
        Just(Recipe::Max),
        (0u8..10).prop_map(Recipe::Math),
        (0u8..6).prop_map(Recipe::Cmp),
        Just(Recipe::Select),
        Just(Recipe::Lut),
        (0u8..4).prop_map(Recipe::SetState),
    ]
}

fn recipe() -> impl Strategy<Value = Recipe> {
    leaf().prop_recursive(2, 20, 5, |inner| {
        (
            prop::collection::vec(inner.clone(), 1..4),
            prop::collection::vec(inner, 1..4),
        )
            .prop_map(|(t, e)| Recipe::If(t, e))
    })
}

/// Builds a compute function from recipes. `in_branch` suppresses stores
/// (if-regions must stay pure for if-conversion).
fn build(
    b: &mut Builder<'_>,
    recipes: &[Recipe],
    floats: &mut Vec<ValueId>,
    bools: &mut Vec<ValueId>,
    in_branch: bool,
) {
    for r in recipes {
        match r {
            Recipe::Const(v) => floats.push(b.const_f(*v)),
            Recipe::GetState(i) => floats.push(b.get_state(STATE_VARS[*i as usize % 4])),
            Recipe::GetExt(i) => floats.push(b.get_ext(EXT_VARS[*i as usize % EXT_VARS.len()])),
            Recipe::Param(i) => floats.push(b.param(PARAMS[*i as usize % 2].0)),
            Recipe::Dt => floats.push(b.dt()),
            Recipe::Neg => {
                if let Some(&x) = floats.last() {
                    let v = b.negf(x);
                    floats.push(v);
                }
            }
            Recipe::Add | Recipe::Sub | Recipe::Mul | Recipe::Div | Recipe::Min | Recipe::Max => {
                if floats.len() >= 2 {
                    let y = floats.pop().unwrap();
                    let x = *floats.last().unwrap();
                    let v = match r {
                        Recipe::Add => b.addf(x, y),
                        Recipe::Sub => b.subf(x, y),
                        Recipe::Mul => b.mulf(x, y),
                        Recipe::Div => b.divf(x, y),
                        Recipe::Min => b.minf(x, y),
                        _ => b.maxf(x, y),
                    };
                    floats.push(v);
                }
            }
            Recipe::Math(i) => {
                if let Some(&x) = floats.last() {
                    let v = b.math1(UNARY[*i as usize % UNARY.len()], x);
                    floats.push(v);
                }
            }
            Recipe::Cmp(i) => {
                if floats.len() >= 2 {
                    let preds = [
                        CmpFPred::Oeq,
                        CmpFPred::One,
                        CmpFPred::Olt,
                        CmpFPred::Ole,
                        CmpFPred::Ogt,
                        CmpFPred::Oge,
                    ];
                    let y = floats[floats.len() - 1];
                    let x = floats[floats.len() - 2];
                    bools.push(b.cmpf(preds[*i as usize % 6], x, y));
                }
            }
            Recipe::Select => {
                if floats.len() >= 2 && !bools.is_empty() {
                    let c = *bools.last().unwrap();
                    let y = floats.pop().unwrap();
                    let x = *floats.last().unwrap();
                    let v = b.select(c, x, y);
                    floats.push(v);
                }
            }
            Recipe::Lut => {
                if let Some(&x) = floats.last() {
                    let v = b.lut_col("Vm", 0, x);
                    floats.push(v);
                }
            }
            Recipe::SetState(i) => {
                if !in_branch {
                    if let Some(&x) = floats.last() {
                        b.set_state(STATE_VARS[*i as usize % 4], x);
                    }
                }
            }
            Recipe::If(t, e) => {
                if let Some(&c) = bools.last() {
                    let seed = match floats.last() {
                        Some(&v) => v,
                        None => {
                            let v = b.const_f(0.0);
                            floats.push(v);
                            v
                        }
                    };
                    let res = b.if_op(
                        c,
                        &[Type::F64],
                        |bb| {
                            let mut fs = vec![seed];
                            let mut bs = vec![];
                            build(bb, t, &mut fs, &mut bs, true);
                            let last = *fs.last().unwrap();
                            bb.yield_(&[last]);
                        },
                        |bb| {
                            let mut fs = vec![seed];
                            let mut bs = vec![];
                            build(bb, e, &mut fs, &mut bs, true);
                            let last = *fs.last().unwrap();
                            bb.yield_(&[last]);
                        },
                    );
                    floats.push(res[0]);
                }
            }
        }
    }
}

fn make_module(recipes: &[Recipe]) -> Module {
    let mut m = Module::new("prop");
    // LUT table: tanh over a narrow range (clamping handles the rest).
    let mut lf = Func::new("lut_Vm", &[Type::F64], &[Type::F64]);
    let arg = lf.args()[0];
    let mut lb = Builder::new(&mut lf);
    let t = lb.math1(MathFn::Tanh, arg);
    lb.ret(&[t]);
    m.add_func(lf);
    m.luts.push(LutSpec {
        name: "Vm".into(),
        lo: -20.0,
        hi: 20.0,
        step: 0.25,
        func: "lut_Vm".into(),
        cols: vec!["c0".into()],
    });

    let mut f = Func::new("compute", &[], &[]);
    let mut b = Builder::new(&mut f);
    let mut floats = Vec::new();
    let mut bools = Vec::new();
    build(&mut b, recipes, &mut floats, &mut bools, false);
    // Always store something so the kernel is observable.
    let last = match floats.last() {
        Some(&v) => v,
        None => b.const_f(1.0),
    };
    b.set_state("u1", last);
    b.ret(&[]);
    m.add_func(f);
    m
}

/// Oracle context for one cell.
struct OneCell {
    states: HashMap<String, f64>,
    exts: HashMap<String, f64>,
    params: HashMap<String, f64>,
    lut: LutData,
    dt: f64,
    t: f64,
}

impl EvalContext for OneCell {
    fn param(&self, name: &str) -> f64 {
        *self.params.get(name).unwrap_or(&0.0)
    }
    fn get_state(&mut self, var: &str) -> f64 {
        self.states[var]
    }
    fn set_state(&mut self, var: &str, v: f64) {
        self.states.insert(var.to_owned(), v);
    }
    fn get_ext(&mut self, var: &str) -> f64 {
        self.exts[var]
    }
    fn set_ext(&mut self, var: &str, v: f64) {
        self.exts.insert(var.to_owned(), v);
    }
    fn dt(&self) -> f64 {
        self.dt
    }
    fn time(&self) -> f64 {
        self.t
    }
    fn lut_col(&mut self, _table: &str, col: usize, key: f64) -> f64 {
        let mut out = [0.0];
        self.lut.interp_block(&[key], col, &mut out);
        out[0]
    }
}

fn close(a: f64, b: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    if a == b {
        return true;
    }
    let denom = a.abs().max(b.abs()).max(1e-30);
    (a - b).abs() / denom < 1e-8
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_oracle_at_all_widths(
        recipes in prop::collection::vec(recipe(), 1..30),
        seeds in prop::collection::vec(-10.0f64..10.0, 8),
    ) {
        let module = make_module(&recipes);
        limpet_ir::verify_module(&module).expect("generated module verifies");

        let info = ModelInfo {
            state_names: STATE_VARS.iter().map(|s| s.to_string()).collect(),
            state_inits: vec![0.0; 4],
            ext_names: EXT_VARS.iter().map(|s| s.to_string()).collect(),
            ext_inits: vec![0.0; 2],
            params: PARAMS.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        };
        let n_cells = 8;
        let ctx = SimContext { dt: 0.02, t: 1.5 };

        // Oracle: evaluate the unoptimized scalar module per cell.
        let lut = LutData::build(-20.0, 20.0, 0.25, 1, |k, out| out[0] = k.tanh());
        let mut oracle_states: Vec<HashMap<String, f64>> = Vec::new();
        for cell in 0..n_cells {
            let mut cc = OneCell {
                states: STATE_VARS
                    .iter()
                    .enumerate()
                    .map(|(v, s)| (s.to_string(), seeds[cell] * 0.5 + v as f64 * 0.25))
                    .collect(),
                exts: EXT_VARS
                    .iter()
                    .map(|s| (s.to_string(), seeds[cell]))
                    .collect(),
                params: PARAMS.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
                lut: lut.clone(),
                dt: ctx.dt,
                t: ctx.t,
            };
            eval_func(&module, "compute", &[], &mut cc).expect("oracle evaluation");
            oracle_states.push(cc.states);
        }

        // Engine at each width, with the full pass pipeline applied.
        for width in [1u32, 2, 4, 8] {
            let mut m = module.clone();
            let pm = limpet_passes::standard_pipeline(width);
            pm.run(&mut m).expect("pipeline runs");
            limpet_ir::verify_module(&m).expect("optimized module verifies");
            let kernel = Kernel::from_module(&m, &info).expect("bytecode compiles");

            let layout = if width == 1 {
                StateLayout::Aos
            } else {
                StateLayout::AoSoA { block: width as usize }
            };
            let mut st: CellStates = kernel.new_states(n_cells, layout);
            let mut ext: ExtArrays = kernel.new_ext(n_cells);
            for cell in 0..n_cells {
                for v in 0..4 {
                    st.set(cell, v, seeds[cell] * 0.5 + v as f64 * 0.25);
                }
                ext.set(cell, 0, seeds[cell]);
                ext.set(cell, 1, seeds[cell]);
            }
            kernel.run_step(&mut st, &mut ext, None, ctx);

            for cell in 0..n_cells {
                for (v, name) in STATE_VARS.iter().enumerate() {
                    let got = st.get(cell, v);
                    let want = oracle_states[cell][*name];
                    prop_assert!(
                        close(got, want),
                        "width {width}, cell {cell}, state {name}: engine {got} vs oracle {want}"
                    );
                }
            }
        }
    }

    /// The bytecode optimizer must be bit-exact on arbitrary synthetic
    /// IR, not just roster models: same program, optimizer on vs off,
    /// identical `CellStates` and ext arrays to the last bit.
    #[test]
    fn bytecode_optimizer_is_bit_exact_on_random_ir(
        recipes in prop::collection::vec(recipe(), 1..30),
        seeds in prop::collection::vec(-10.0f64..10.0, 8),
    ) {
        let module = make_module(&recipes);
        limpet_ir::verify_module(&module).expect("generated module verifies");
        let info = ModelInfo {
            state_names: STATE_VARS.iter().map(|s| s.to_string()).collect(),
            state_inits: vec![0.0; 4],
            ext_names: EXT_VARS.iter().map(|s| s.to_string()).collect(),
            ext_inits: vec![0.0; 2],
            params: PARAMS.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        };
        let n_cells = 8;
        let ctx = SimContext { dt: 0.02, t: 1.5 };

        for width in [1u32, 4, 8] {
            let mut m = module.clone();
            let pm = limpet_passes::standard_pipeline(width);
            pm.run(&mut m).expect("pipeline runs");
            let (opt, stats) =
                Kernel::from_module_opt(&m, &info, true).expect("optimized compile");
            let (unopt, _) =
                Kernel::from_module_opt(&m, &info, false).expect("unoptimized compile");
            prop_assert!(stats.instrs_after <= stats.instrs_before);

            let layout = if width == 1 {
                StateLayout::Aos
            } else {
                StateLayout::AoSoA { block: width as usize }
            };
            let run = |kernel: &Kernel| {
                let mut st: CellStates = kernel.new_states(n_cells, layout);
                let mut ext: ExtArrays = kernel.new_ext(n_cells);
                for cell in 0..n_cells {
                    for v in 0..4 {
                        st.set(cell, v, seeds[cell] * 0.5 + v as f64 * 0.25);
                    }
                    ext.set(cell, 0, seeds[cell]);
                    ext.set(cell, 1, seeds[cell]);
                }
                kernel.run_step(&mut st, &mut ext, None, ctx);
                (st, ext)
            };
            let (st_opt, ext_opt) = run(&opt);
            let (st_ref, ext_ref) = run(&unopt);
            for cell in 0..n_cells {
                for (v, name) in STATE_VARS.iter().enumerate() {
                    prop_assert_eq!(
                        st_opt.get(cell, v).to_bits(),
                        st_ref.get(cell, v).to_bits(),
                        "width {}, cell {}, state {}: optimized {} vs reference {}",
                        width, cell, name, st_opt.get(cell, v), st_ref.get(cell, v)
                    );
                }
                for (v, name) in EXT_VARS.iter().enumerate() {
                    prop_assert_eq!(
                        ext_opt.get(cell, v).to_bits(),
                        ext_ref.get(cell, v).to_bits(),
                        "width {}, cell {}, ext {}: optimized {} vs reference {}",
                        width, cell, name, ext_opt.get(cell, v), ext_ref.get(cell, v)
                    );
                }
            }
        }
    }
}
