//! Constant folding and propagation — the paper's "preprocessor" (§3.2).
//!
//! Evaluates operations whose operands are all compile-time constants:
//! arithmetic, math-library calls, comparisons, selects, and whole
//! `scf.if` operations with constant conditions (the chosen region is
//! spliced into the parent).

use crate::{Pass, PassCtx};
use limpet_ir::{Func, Module, OpId, OpKind, RegionId, ScalarType, Type, ValueId};
use std::collections::HashMap;

/// Constant folding and propagation pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstProp;

/// A known compile-time constant.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Const {
    F(f64),
    I(i64),
    B(bool),
}

impl Pass for ConstProp {
    fn name(&self) -> &'static str {
        "const-prop"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
        let mut changed = false;
        let mut folded = 0u64;
        for func in module.funcs_mut() {
            // Iterate to a fixpoint: splicing ifs exposes new constants.
            loop {
                let mut consts: HashMap<ValueId, Const> = HashMap::new();
                if !run_region(func, func.body(), &mut consts, &mut folded) {
                    break;
                }
                changed = true;
            }
        }
        ctx.count("ops-folded", folded);
        changed
    }
}

/// Folds one region; returns `true` on any change.
fn run_region(
    func: &mut Func,
    region: RegionId,
    consts: &mut HashMap<ValueId, Const>,
    folded: &mut u64,
) -> bool {
    let mut changed = false;
    let mut idx = 0;
    while idx < func.region(region).ops.len() {
        let op_id = func.region(region).ops[idx];
        let kind = func.op(op_id).kind.clone();

        // Record constants produced by constant ops.
        match kind {
            OpKind::ConstantF(v) => {
                consts.insert(func.op(op_id).result(), Const::F(v));
                idx += 1;
                continue;
            }
            OpKind::ConstantInt(v) => {
                consts.insert(func.op(op_id).result(), Const::I(v));
                idx += 1;
                continue;
            }
            OpKind::ConstantBool(v) => {
                consts.insert(func.op(op_id).result(), Const::B(v));
                idx += 1;
                continue;
            }
            _ => {}
        }

        // scf.if with a constant condition: splice the chosen region.
        if kind == OpKind::If {
            let cond = func.op(op_id).operands[0];
            if let Some(Const::B(flag)) = consts.get(&cond).copied() {
                splice_if(func, region, idx, op_id, flag);
                *folded += 1;
                changed = true;
                // Re-examine from the same index (spliced ops land here).
                continue;
            }
        }

        // Fold nested regions first.
        let nested = func.op(op_id).regions.clone();
        for r in nested {
            changed |= run_region(func, r, consts, folded);
        }

        if let Some(c) = fold(func, op_id, consts) {
            let result = func.op(op_id).result();
            consts.insert(result, c);
            let ty = func.value_type(result);
            let new_kind = match c {
                Const::F(v) => OpKind::ConstantF(v),
                Const::I(v) => OpKind::ConstantInt(v),
                Const::B(v) => OpKind::ConstantBool(v),
            };
            // A vector-typed fold becomes a splat constant; scalars stay.
            let _ = ty;
            let op = func.op_mut(op_id);
            op.kind = new_kind;
            op.operands.clear();
            *folded += 1;
            changed = true;
        } else if kind == OpKind::Select {
            // select with constant condition chooses an operand.
            let cond = func.op(op_id).operands[0];
            if let Some(Const::B(flag)) = consts.get(&cond).copied() {
                let chosen = func.op(op_id).operands[if flag { 1 } else { 2 }];
                let result = func.op(op_id).result();
                func.replace_all_uses(result, chosen);
                func.erase_op(region, op_id);
                *folded += 1;
                changed = true;
                continue; // the next op now sits at `idx`
            }
        }
        idx += 1;
    }
    changed
}

/// Replaces `scf.if` at `region[idx]` by the ops of its taken branch.
fn splice_if(func: &mut Func, region: RegionId, idx: usize, op_id: OpId, flag: bool) {
    let taken = func.op(op_id).regions[if flag { 0 } else { 1 }];
    let mut inner_ops = func.region(taken).ops.clone();
    // The terminator yields the if results.
    let yields: Vec<ValueId> = match inner_ops.pop() {
        Some(term) => func.op(term).operands.clone(),
        None => Vec::new(),
    };
    let results = func.op(op_id).results.clone();
    for (r, y) in results.iter().zip(&yields) {
        func.replace_all_uses(*r, *y);
    }
    let ops = &mut func.region_mut(region).ops;
    ops.splice(idx..=idx, inner_ops);
}

fn fold(func: &Func, op_id: OpId, consts: &HashMap<ValueId, Const>) -> Option<Const> {
    let op = func.op(op_id);
    if op.results.len() != 1 || !op.kind.is_pure() || !op.regions.is_empty() {
        return None;
    }
    let c = |i: usize| consts.get(&op.operands[i]).copied();
    let f = |i: usize| match c(i) {
        Some(Const::F(v)) => Some(v),
        _ => None,
    };
    let int = |i: usize| match c(i) {
        Some(Const::I(v)) => Some(v),
        _ => None,
    };
    let b = |i: usize| match c(i) {
        Some(Const::B(v)) => Some(v),
        _ => None,
    };
    Some(match &op.kind {
        OpKind::AddF => Const::F(f(0)? + f(1)?),
        OpKind::SubF => Const::F(f(0)? - f(1)?),
        OpKind::MulF => Const::F(f(0)? * f(1)?),
        OpKind::DivF => Const::F(f(0)? / f(1)?),
        OpKind::RemF => Const::F(f(0)? % f(1)?),
        OpKind::NegF => Const::F(-f(0)?),
        OpKind::MinF => Const::F(f(0)?.min(f(1)?)),
        OpKind::MaxF => Const::F(f(0)?.max(f(1)?)),
        OpKind::Fma => Const::F(f(0)? * f(1)? + f(2)?),
        OpKind::AddI => Const::I(int(0)?.wrapping_add(int(1)?)),
        OpKind::SubI => Const::I(int(0)?.wrapping_sub(int(1)?)),
        OpKind::MulI => Const::I(int(0)?.wrapping_mul(int(1)?)),
        OpKind::CmpF(p) => Const::B(p.apply(f(0)?, f(1)?)),
        OpKind::CmpI(p) => Const::B(p.apply(int(0)?, int(1)?)),
        OpKind::AndI => Const::B(b(0)? && b(1)?),
        OpKind::OrI => Const::B(b(0)? || b(1)?),
        OpKind::XorI => Const::B(b(0)? ^ b(1)?),
        OpKind::SIToFP => Const::F(int(0)? as f64),
        OpKind::IndexCast => Const::I(int(0)?),
        OpKind::Math(m) => {
            let a = f(0)?;
            let bb = if m.arity() == 2 { f(1)? } else { 0.0 };
            Const::F(m.eval(a, bb))
        }
        OpKind::Select => {
            // Handled as use-replacement; only fold when everything const.
            let cond = b(0)?;
            let result_ty = func.value_type(op.results[0]);
            match result_ty {
                Type::Scalar(ScalarType::F64)
                | Type::Vector {
                    elem: ScalarType::F64,
                    ..
                } => Const::F(if cond { f(1)? } else { f(2)? }),
                Type::Scalar(ScalarType::I1)
                | Type::Vector {
                    elem: ScalarType::I1,
                    ..
                } => Const::B(if cond { b(1)? } else { b(2)? }),
                _ => Const::I(if cond { int(1)? } else { int(2)? }),
            }
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_ir::{print_module, verify_module, Builder, CmpFPred, Func, Module};

    fn prepare(build: impl FnOnce(&mut Builder<'_>)) -> Module {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        build(&mut b);
        m.add_func(f);
        m
    }

    #[test]
    fn folds_arith_chain() {
        let mut m = prepare(|b| {
            let x = b.const_f(200.0);
            let two = b.const_f(2.0);
            let half = b.divf(x, two); // 100
            let neg = b.negf(half); // -100
            b.set_state("u", neg);
            b.ret(&[]);
        });
        assert!(ConstProp.run_on(&mut m));
        let text = print_module(&m);
        assert!(text.contains("arith.constant -100.0"), "{text}");
        verify_module(&m).unwrap();
    }

    #[test]
    fn folds_math_calls() {
        let mut m = prepare(|b| {
            let x = b.const_f(0.0);
            let e = b.exp(x);
            b.set_state("u", e);
            b.ret(&[]);
        });
        ConstProp.run_on(&mut m);
        let text = print_module(&m);
        assert!(text.contains("arith.constant 1.0"), "{text}");
    }

    #[test]
    fn splices_constant_if() {
        let mut m = prepare(|b| {
            let t = b.const_bool(true);
            let r = b.if_op(
                t,
                &[limpet_ir::Type::F64],
                |b| {
                    let v = b.const_f(7.0);
                    b.yield_(&[v]);
                },
                |b| {
                    let v = b.const_f(9.0);
                    b.yield_(&[v]);
                },
            );
            b.set_state("u", r[0]);
            b.ret(&[]);
        });
        assert!(ConstProp.run_on(&mut m));
        let text = print_module(&m);
        assert!(!text.contains("scf.if"), "{text}");
        assert!(text.contains("7.0"), "{text}");
        verify_module(&m).unwrap();
    }

    #[test]
    fn propagates_const_select() {
        let mut m = prepare(|b| {
            let x = b.const_f(1.0);
            let y = b.const_f(2.0);
            let c = b.cmpf(CmpFPred::Olt, x, y); // true
            let live = b.get_state("s");
            let sel = b.select(c, live, y);
            b.set_state("u", sel);
            b.ret(&[]);
        });
        assert!(ConstProp.run_on(&mut m));
        // select's result replaced by the live state read.
        let text = print_module(&m);
        assert!(text.contains("limpet.set_state %"), "{text}");
        verify_module(&m).unwrap();
    }

    #[test]
    fn leaves_dynamic_ops_alone() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let two = b.const_f(2.0);
            let y = b.mulf(x, two);
            b.set_state("u", y);
            b.ret(&[]);
        });
        assert!(!ConstProp.run_on(&mut m));
        let text = print_module(&m);
        assert!(text.contains("arith.mulf"));
    }

    #[test]
    fn folds_inside_loops() {
        let mut m = prepare(|b| {
            let lb = b.const_index(0);
            let ub = b.const_index(2);
            let st = b.const_index(1);
            let x0 = b.get_state("x");
            let r = b.for_op(lb, ub, st, &[x0], |b, _iv, iters| {
                let one = b.const_f(1.0);
                let two = b.const_f(2.0);
                let three = b.addf(one, two);
                let next = b.addf(iters[0], three);
                b.yield_(&[next]);
            });
            b.set_state("x", r[0]);
            b.ret(&[]);
        });
        assert!(ConstProp.run_on(&mut m));
        let text = print_module(&m);
        assert!(text.contains("arith.constant 3.0"), "{text}");
        verify_module(&m).unwrap();
    }
}
