//! Dead code elimination.
//!
//! Removes pure operations whose results are unused, iterating to a
//! fixpoint (removing one op may orphan its operands' producers).
//! `scf.if`/`scf.for` are removed only when their results are unused *and*
//! their regions contain no side-effecting ops.

use crate::{Pass, PassCtx};
use limpet_ir::{Func, Module, OpId, OpKind, RegionId};

/// Dead code elimination pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
        let mut removed = 0u64;
        for func in module.funcs_mut() {
            loop {
                let n = sweep(func);
                if n == 0 {
                    break;
                }
                removed += n;
            }
        }
        ctx.count("ops-removed", removed);
        removed > 0
    }
}

/// Whether an op (including its regions, transitively) has side effects.
fn has_side_effects(func: &Func, op_id: OpId) -> bool {
    let op = func.op(op_id);
    if !op.kind.is_pure() && !matches!(op.kind, OpKind::If | OpKind::For | OpKind::Yield) {
        return true;
    }
    for &r in &op.regions {
        for &inner in &func.region(r).ops {
            if has_side_effects(func, inner) {
                return true;
            }
        }
    }
    false
}

fn sweep(func: &mut Func) -> u64 {
    let uses = func.use_counts();
    let mut dead: Vec<(RegionId, OpId)> = Vec::new();
    func.walk(&mut |region, _, op_id| {
        let op = func.op(op_id);
        if op.kind.is_terminator() {
            return;
        }
        let unused = op.results.iter().all(|r| uses[r.index()] == 0);
        if !unused {
            return;
        }
        let removable = match op.kind {
            OpKind::If | OpKind::For => !has_side_effects(func, op_id),
            _ => op.kind.is_pure(),
        };
        if removable {
            dead.push((region, op_id));
        }
    });
    let removed = dead.len() as u64;
    for (region, op_id) in dead {
        func.erase_op(region, op_id);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_ir::{print_module, verify_module, Builder, Module, Type};

    fn prepare(build: impl FnOnce(&mut Builder<'_>)) -> Module {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        build(&mut b);
        m.add_func(f);
        m
    }
    use limpet_ir::Func;

    #[test]
    fn removes_unused_chain() {
        let mut m = prepare(|b| {
            let x = b.const_f(1.0);
            let y = b.exp(x); // dead
            let _z = b.mulf(y, y); // dead
            let live = b.get_state("s");
            b.set_state("s", live);
            b.ret(&[]);
        });
        assert!(Dce.run_on(&mut m));
        let text = print_module(&m);
        assert!(!text.contains("math.exp"), "{text}");
        assert!(!text.contains("arith.mulf"), "{text}");
        assert!(!text.contains("arith.constant"), "{text}");
        verify_module(&m).unwrap();
    }

    #[test]
    fn keeps_stores() {
        let mut m = prepare(|b| {
            let x = b.const_f(1.0);
            b.set_state("s", x);
            b.ret(&[]);
        });
        assert!(!Dce.run_on(&mut m));
        assert!(print_module(&m).contains("limpet.set_state"));
    }

    #[test]
    fn removes_pure_if_with_unused_result() {
        let mut m = prepare(|b| {
            let c = b.const_bool(true);
            let _r = b.if_op(
                c,
                &[Type::F64],
                |b| {
                    let v = b.const_f(1.0);
                    b.yield_(&[v]);
                },
                |b| {
                    let v = b.const_f(2.0);
                    b.yield_(&[v]);
                },
            );
            b.ret(&[]);
        });
        assert!(Dce.run_on(&mut m));
        assert!(!print_module(&m).contains("scf.if"));
    }

    #[test]
    fn keeps_if_with_store_inside() {
        let mut m = prepare(|b| {
            let c = b.const_bool(true);
            b.if_op(
                c,
                &[],
                |b| {
                    let v = b.const_f(1.0);
                    b.set_state("s", v);
                    b.yield_(&[]);
                },
                |b| b.yield_(&[]),
            );
            b.ret(&[]);
        });
        assert!(!Dce.run_on(&mut m));
        assert!(print_module(&m).contains("scf.if"));
    }

    #[test]
    fn fixpoint_cascades() {
        let mut m = prepare(|b| {
            let a = b.const_f(1.0);
            let c = b.exp(a);
            let d = b.exp(c);
            let _e = b.exp(d); // only this is directly unused
            b.ret(&[]);
        });
        assert!(Dce.run_on(&mut m));
        let text = print_module(&m);
        assert!(!text.contains("math.exp"), "{text}");
        assert!(!text.contains("arith.constant"), "{text}");
    }
}
