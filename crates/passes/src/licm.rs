//! Loop-invariant code motion.
//!
//! Hoists pure, region-free operations out of `scf.for` bodies when all
//! their operands are defined outside the loop. The paper lists LICM among
//! the in-tree MLIR transformations that benefit the generated code
//! (§3.4.2); in our kernels it fires on the `markov_be` refinement loops,
//! whose `limpet.dt` reads and rate constants are iteration-invariant.

use crate::{Pass, PassCtx};
use limpet_ir::{Func, Module, OpId, OpKind, RegionId, ValueId};
use std::collections::HashSet;

/// Loop-invariant code motion pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Licm;

impl Pass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
        let mut hoisted = 0u64;
        for func in module.funcs_mut() {
            hoisted += run_region(func, func.body());
        }
        ctx.count("ops-hoisted", hoisted);
        hoisted > 0
    }
}

fn run_region(func: &mut Func, region: RegionId) -> u64 {
    let mut changed = 0u64;
    let mut idx = 0;
    while idx < func.region(region).ops.len() {
        let op_id = func.region(region).ops[idx];
        let kind = func.op(op_id).kind.clone();
        if kind == OpKind::For {
            // Hoist from the loop body into this region, before the loop.
            let body = func.op(op_id).regions[0];
            loop {
                let hoisted = hoist_once(func, region, idx, body);
                if hoisted == 0 {
                    break;
                }
                idx += hoisted;
                changed += hoisted as u64;
            }
        }
        // Recurse into any nested regions (including the loop body after
        // hoisting, and if branches).
        let nested = func.op(op_id).regions.clone();
        for r in nested {
            changed += run_region(func, r);
        }
        idx += 1;
    }
    changed
}

/// Values defined inside `region` (args + all op results, transitively).
fn values_defined_in(func: &Func, region: RegionId, out: &mut HashSet<ValueId>) {
    out.extend(func.region(region).args.iter().copied());
    for &op in &func.region(region).ops {
        out.extend(func.op(op).results.iter().copied());
        for &r in &func.op(op).regions {
            values_defined_in(func, r, out);
        }
    }
}

/// Moves every hoistable op of `body` before position `at` of `parent`;
/// returns how many ops were moved.
fn hoist_once(func: &mut Func, parent: RegionId, at: usize, body: RegionId) -> usize {
    let mut inside = HashSet::new();
    values_defined_in(func, body, &mut inside);

    let body_ops = func.region(body).ops.clone();
    let mut to_hoist: Vec<OpId> = Vec::new();
    for op_id in body_ops {
        let op = func.op(op_id);
        let hoistable = op.kind.is_pure()
            && op.regions.is_empty()
            && !op.kind.is_terminator()
            && op.operands.iter().all(|o| !inside.contains(o));
        if hoistable {
            to_hoist.push(op_id);
            // Its results become outside-defined for later ops.
            let results: Vec<ValueId> = op.results.clone();
            for r in results {
                inside.remove(&r);
            }
        }
    }
    for (k, &op_id) in to_hoist.iter().enumerate() {
        func.erase_op(body, op_id);
        func.region_mut(parent).ops.insert(at + k, op_id);
    }
    to_hoist.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_ir::{print_module, verify_module, Builder, Module};

    #[test]
    fn hoists_invariant_ops() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let lb = b.const_index(0);
        let ub = b.const_index(3);
        let st = b.const_index(1);
        let x0 = b.get_state("x");
        let r = b.for_op(lb, ub, st, &[x0], |b, _iv, iters| {
            let dt = b.dt(); // invariant
            let k = b.const_f(0.5); // invariant
            let kd = b.mulf(dt, k); // invariant
            let next = b.addf(iters[0], kd); // NOT invariant
            b.yield_(&[next]);
        });
        b.set_state("x", r[0]);
        b.ret(&[]);
        m.add_func(f);

        assert!(Licm.run_on(&mut m));
        verify_module(&m).unwrap();
        let text = print_module(&m);
        // dt/const/mulf now appear before the loop: the loop body holds
        // only addf + yield.
        let loop_pos = text.find("scf.for").unwrap();
        assert!(text.find("limpet.dt").unwrap() < loop_pos, "{text}");
        assert!(text.find("arith.mulf").unwrap() < loop_pos, "{text}");
        assert!(text.find("arith.addf").unwrap() > loop_pos, "{text}");
    }

    #[test]
    fn leaves_variant_ops() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let lb = b.const_index(0);
        let ub = b.const_index(3);
        let st = b.const_index(1);
        let x0 = b.get_state("x");
        let r = b.for_op(lb, ub, st, &[x0], |b, _iv, iters| {
            let sq = b.mulf(iters[0], iters[0]);
            b.yield_(&[sq]);
        });
        b.set_state("x", r[0]);
        b.ret(&[]);
        m.add_func(f);

        assert!(!Licm.run_on(&mut m));
        let text = print_module(&m);
        assert!(text.find("arith.mulf").unwrap() > text.find("scf.for").unwrap());
    }

    #[test]
    fn idempotent() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let lb = b.const_index(0);
        let ub = b.const_index(3);
        let st = b.const_index(1);
        let x0 = b.get_state("x");
        let r = b.for_op(lb, ub, st, &[x0], |b, _iv, iters| {
            let dt = b.dt();
            let next = b.addf(iters[0], dt);
            b.yield_(&[next]);
        });
        b.set_state("x", r[0]);
        b.ret(&[]);
        m.add_func(f);

        assert!(Licm.run_on(&mut m));
        assert!(!Licm.run_on(&mut m));
        verify_module(&m).unwrap();
    }
}
