//! Algebraic canonicalization.
//!
//! Rewrites identity patterns so later passes see simpler IR:
//! `x+0 → x`, `x*1 → x`, `x*0 → 0`, `x-0 → x`, `x/1 → x`,
//! `neg(neg(x)) → x`, `select(c, a, a) → a`, `x - x → 0`.

use crate::{Pass, PassCtx};
use limpet_ir::{Func, Module, OpId, OpKind, RegionId, ValueId};
use std::collections::HashMap;

/// Canonicalization pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Canonicalize;

impl Pass for Canonicalize {
    fn name(&self) -> &'static str {
        "canonicalize"
    }

    fn run(&self, module: &mut Module, pass_ctx: &mut PassCtx) -> bool {
        let mut changed = false;
        let mut simplified = 0u64;
        for func in module.funcs_mut() {
            loop {
                let mut ctx = Ctx {
                    fconsts: HashMap::new(),
                    neg_of: HashMap::new(),
                };
                if run_region(func, func.body(), &mut ctx, &mut simplified) == 0 {
                    break;
                }
                changed = true;
            }
        }
        pass_ctx.count("ops-simplified", simplified);
        changed
    }
}

struct Ctx {
    /// f64 constants seen so far.
    fconsts: HashMap<ValueId, f64>,
    /// result of `negf` → its operand.
    neg_of: HashMap<ValueId, ValueId>,
}

fn run_region(func: &mut Func, region: RegionId, ctx: &mut Ctx, simplified: &mut u64) -> u64 {
    let mut changed = 0u64;
    let ops = func.region(region).ops.clone();
    for op_id in ops {
        let nested = func.op(op_id).regions.clone();
        for r in nested {
            changed += run_region(func, r, ctx, simplified);
        }
        if simplify(func, region, op_id, ctx) {
            changed += 1;
            *simplified += 1;
        }
    }
    changed
}

fn simplify(func: &mut Func, region: RegionId, op_id: OpId, ctx: &mut Ctx) -> bool {
    let op = func.op(op_id).clone();
    let is = |v: ValueId, k: f64| ctx.fconsts.get(&v) == Some(&k);

    match op.kind {
        OpKind::ConstantF(v) => {
            ctx.fconsts.insert(op.result(), v);
            false
        }
        OpKind::NegF => {
            let a = op.operands[0];
            ctx.neg_of.insert(op.result(), a);
            if let Some(&inner) = ctx.neg_of.get(&a) {
                // neg(neg(x)) = x — but only when `a` is itself a neg result.
                if func.value(a).def != func.value(op.result()).def {
                    replace_with(func, region, op_id, inner);
                    return true;
                }
            }
            false
        }
        OpKind::AddF => {
            let (a, b) = (op.operands[0], op.operands[1]);
            if is(b, 0.0) {
                replace_with(func, region, op_id, a);
                true
            } else if is(a, 0.0) {
                replace_with(func, region, op_id, b);
                true
            } else {
                false
            }
        }
        OpKind::SubF => {
            let (a, b) = (op.operands[0], op.operands[1]);
            if is(b, 0.0) {
                replace_with(func, region, op_id, a);
                true
            } else if a == b {
                let op_mut = func.op_mut(op_id);
                op_mut.kind = OpKind::ConstantF(0.0);
                op_mut.operands.clear();
                true
            } else {
                false
            }
        }
        OpKind::MulF => {
            let (a, b) = (op.operands[0], op.operands[1]);
            if is(b, 1.0) {
                replace_with(func, region, op_id, a);
                true
            } else if is(a, 1.0) {
                replace_with(func, region, op_id, b);
                true
            } else if is(a, 0.0) || is(b, 0.0) {
                let op_mut = func.op_mut(op_id);
                op_mut.kind = OpKind::ConstantF(0.0);
                op_mut.operands.clear();
                true
            } else {
                false
            }
        }
        OpKind::DivF => {
            let (a, b) = (op.operands[0], op.operands[1]);
            if is(b, 1.0) {
                replace_with(func, region, op_id, a);
                true
            } else {
                false
            }
        }
        OpKind::Select => {
            let (t, e) = (op.operands[1], op.operands[2]);
            if t == e {
                replace_with(func, region, op_id, t);
                true
            } else {
                false
            }
        }
        _ => false,
    }
}

/// Replaces all uses of the op's result with `v` and unlinks the op.
fn replace_with(func: &mut Func, region: RegionId, op_id: OpId, v: ValueId) {
    let result = func.op(op_id).result();
    func.replace_all_uses(result, v);
    func.erase_op(region, op_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_ir::{print_module, verify_module, Builder, Func, Module};

    fn prepare(build: impl FnOnce(&mut Builder<'_>)) -> Module {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        build(&mut b);
        m.add_func(f);
        m
    }

    #[test]
    fn add_zero_removed() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let z = b.const_f(0.0);
            let s = b.addf(x, z);
            b.set_state("x", s);
            b.ret(&[]);
        });
        assert!(Canonicalize.run_on(&mut m));
        assert!(!print_module(&m).contains("arith.addf"));
        verify_module(&m).unwrap();
    }

    #[test]
    fn mul_one_and_zero() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let one = b.const_f(1.0);
            let zero = b.const_f(0.0);
            let a = b.mulf(x, one);
            let bb = b.mulf(a, zero);
            b.set_state("x", bb);
            b.ret(&[]);
        });
        assert!(Canonicalize.run_on(&mut m));
        let text = print_module(&m);
        assert!(!text.contains("arith.mulf"), "{text}");
        verify_module(&m).unwrap();
    }

    #[test]
    fn sub_self_is_zero() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let d = b.subf(x, x);
            b.set_state("x", d);
            b.ret(&[]);
        });
        assert!(Canonicalize.run_on(&mut m));
        assert!(!print_module(&m).contains("arith.subf"));
    }

    #[test]
    fn select_same_arms() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let c = b.const_bool(true);
            let s = b.select(c, x, x);
            b.set_state("x", s);
            b.ret(&[]);
        });
        assert!(Canonicalize.run_on(&mut m));
        assert!(!print_module(&m).contains("arith.select"));
    }

    #[test]
    fn double_negation() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let n1 = b.negf(x);
            let n2 = b.negf(n1);
            b.set_state("x", n2);
            b.ret(&[]);
        });
        assert!(Canonicalize.run_on(&mut m));
        let text = print_module(&m);
        // One dead negf may remain (DCE removes it); the store uses x.
        assert!(text.contains("limpet.set_state %0"), "{text}");
    }

    #[test]
    fn no_change_reports_false() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let y = b.get_state("y");
            let s = b.addf(x, y);
            b.set_state("x", s);
            b.ret(&[]);
        });
        assert!(!Canonicalize.run_on(&mut m));
    }
}
