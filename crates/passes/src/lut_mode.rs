//! Scalar-LUT interpolation mode.
//!
//! Marks every `lut.col` operation with `scalar_interp = true`. The
//! execution engine then interpolates lane by lane instead of using the
//! vectorized row interpolation the paper contributes in §3.4.2.
//!
//! This models the configuration discussed in §5: Intel icc can vectorize
//! the compute loop when annotated with `omp simd`, but the LUT
//! interpolation function remains a scalar call, capping the speedup
//! (2.19x vs. limpetMLIR's 3.37x geomean). The `icc_comparison` bench uses
//! this pass to reproduce that gap.

use crate::{Pass, PassCtx};
use limpet_ir::{Module, OpKind};

/// Marks `lut.col` ops for per-lane scalar interpolation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarLutMode;

impl Pass for ScalarLutMode {
    fn name(&self) -> &'static str {
        "scalar-lut-mode"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
        let mut marked = 0u64;
        for func in module.funcs_mut() {
            let targets: Vec<_> = func
                .walk_ops()
                .into_iter()
                .filter(|&(_, _, op)| func.op(op).kind == OpKind::LutCol)
                .map(|(_, _, op)| op)
                .collect();
            for op in targets {
                func.op_mut(op).attrs.set("scalar_interp", true);
                marked += 1;
            }
        }
        if marked > 0 {
            module.attrs.set("lut_mode", "scalar");
        }
        ctx.count("lut-cols-marked", marked);
        marked > 0
    }
}

/// Marks `lut.col` ops for Catmull-Rom cubic interpolation — the spline
/// variant the paper's §7 lists as future work. Pairs with coarser table
/// steps for the same accuracy at a fraction of the memory.
#[derive(Debug, Clone, Copy, Default)]
pub struct CubicLutMode;

impl Pass for CubicLutMode {
    fn name(&self) -> &'static str {
        "cubic-lut-mode"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
        let mut marked = 0u64;
        for func in module.funcs_mut() {
            let targets: Vec<_> = func
                .walk_ops()
                .into_iter()
                .filter(|&(_, _, op)| func.op(op).kind == OpKind::LutCol)
                .map(|(_, _, op)| op)
                .collect();
            for op in targets {
                func.op_mut(op).attrs.set("interp", "cubic");
                marked += 1;
            }
        }
        if marked > 0 {
            module.attrs.set("lut_mode", "cubic");
            // Cubic accuracy allows a 4x coarser tabulation for the same
            // interpolation error; widen every table's step accordingly.
            for lut in &mut module.luts {
                lut.step *= 4.0;
            }
        }
        ctx.count("lut-cols-marked", marked);
        marked > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_ir::{Builder, Func, Module};

    #[test]
    fn marks_all_lut_cols() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let k = b.get_ext("Vm");
        let v0 = b.lut_col("Vm", 0, k);
        let v1 = b.lut_col("Vm", 1, k);
        let s = b.addf(v0, v1);
        b.set_state("x", s);
        b.ret(&[]);
        m.add_func(f);

        assert!(ScalarLutMode.run_on(&mut m));
        assert_eq!(m.attrs.str_of("lut_mode"), Some("scalar"));
        let f = m.func("compute").unwrap();
        let marked = f
            .walk_ops()
            .iter()
            .filter(|&&(_, _, op)| {
                f.op(op)
                    .attrs
                    .get("scalar_interp")
                    .and_then(|a| a.as_bool())
                    == Some(true)
            })
            .count();
        assert_eq!(marked, 2);
    }

    #[test]
    fn cubic_mode_marks_and_coarsens() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let k = b.get_ext("Vm");
        let v = b.lut_col("Vm", 0, k);
        b.set_state("x", v);
        b.ret(&[]);
        m.add_func(f);
        m.luts.push(limpet_ir::LutSpec {
            name: "Vm".into(),
            lo: -100.0,
            hi: 100.0,
            step: 0.05,
            func: "lut_Vm".into(),
            cols: vec!["c0".into()],
        });
        assert!(CubicLutMode.run_on(&mut m));
        assert_eq!(m.attrs.str_of("lut_mode"), Some("cubic"));
        assert!((m.luts[0].step - 0.2).abs() < 1e-12);
        let f = m.func("compute").unwrap();
        let marked = f
            .walk_ops()
            .iter()
            .filter(|&&(_, _, op)| f.op(op).attrs.str_of("interp") == Some("cubic"))
            .count();
        assert_eq!(marked, 1);
    }

    #[test]
    fn no_luts_no_change() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        b.ret(&[]);
        m.add_func(f);
        assert!(!ScalarLutMode.run_on(&mut m));
    }
}
