//! FMA contraction.
//!
//! Fuses `arith.addf(arith.mulf(a, b), c)` (and the commuted form) into a
//! single `math.fma` when the multiply has no other users — the standard
//! floating-point contraction an MLIR → LLVM pipeline performs when
//! targeting FMA-capable vector units. One fused instruction replaces two,
//! halving dispatch cost for the dominant multiply-add chains of ionic
//! current sums.
//!
//! The engine evaluates `fma` as `a*b + c` with intermediate rounding, so
//! contraction is bit-exact here (no fused-rounding semantics change).

use crate::{Pass, PassCtx};
use limpet_ir::{Func, Module, OpId, OpKind, RegionId, ValueId};
use std::collections::HashMap;

/// The FMA contraction pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct FmaContract;

impl Pass for FmaContract {
    fn name(&self) -> &'static str {
        "fma-contract"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
        let mut fused = 0u64;
        for func in module.funcs_mut() {
            fused += run_func(func);
        }
        ctx.count("fmas-fused", fused);
        fused > 0
    }
}

fn run_func(func: &mut Func) -> u64 {
    // Map: value -> defining op, for linked ops only, plus region of each op.
    let mut def_of: HashMap<ValueId, (RegionId, OpId)> = HashMap::new();
    func.walk(&mut |region, _, op| {
        for &r in &func.op(op).results {
            def_of.insert(r, (region, op));
        }
    });
    let uses = func.use_counts();

    // Collect rewrites first (op ids are stable).
    struct Rewrite {
        add_op: OpId,
        mul_region: RegionId,
        mul_op: OpId,
        a: ValueId,
        b: ValueId,
        c: ValueId,
    }
    let mut rewrites: Vec<Rewrite> = Vec::new();
    func.walk(&mut |add_region, _, add_op| {
        let add = func.op(add_op);
        if add.kind != OpKind::AddF {
            return;
        }
        for (mul_idx, other_idx) in [(0usize, 1usize), (1, 0)] {
            let mul_val = add.operands[mul_idx];
            let Some(&(mul_region, mul_op)) = def_of.get(&mul_val) else {
                continue;
            };
            let mul = func.op(mul_op);
            if mul.kind != OpKind::MulF || uses[mul_val.index()] != 1 {
                continue;
            }
            // The multiply must dominate the add; since we only fuse when
            // the multiply's one use is this add, same-or-ancestor region
            // order is already guaranteed by SSA construction. Fusing in
            // the add's position keeps dominance for a, b, c.
            let _ = add_region;
            rewrites.push(Rewrite {
                add_op,
                mul_region,
                mul_op,
                a: mul.operands[0],
                b: mul.operands[1],
                c: add.operands[other_idx],
            });
            return;
        }
    });

    let fused = rewrites.len() as u64;
    for rw in rewrites {
        // Turn the add into an fma in place (keeps its position and
        // result id), then unlink the multiply.
        let op = func.op_mut(rw.add_op);
        op.kind = OpKind::Fma;
        op.operands = vec![rw.a, rw.b, rw.c];
        func.erase_op(rw.mul_region, rw.mul_op);
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_ir::{print_module, verify_module, Builder, Module};

    fn prepare(build: impl FnOnce(&mut Builder<'_>)) -> Module {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        build(&mut b);
        m.add_func(f);
        m
    }

    #[test]
    fn fuses_mul_add() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let y = b.get_state("y");
            let z = b.get_state("z");
            let p = b.mulf(x, y);
            let s = b.addf(p, z);
            b.set_state("x", s);
            b.ret(&[]);
        });
        assert!(FmaContract.run_on(&mut m));
        let text = print_module(&m);
        assert!(text.contains("math.fma"), "{text}");
        assert!(!text.contains("arith.mulf"), "{text}");
        assert!(!text.contains("arith.addf"), "{text}");
        verify_module(&m).unwrap();
    }

    #[test]
    fn fuses_commuted_form() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let y = b.get_state("y");
            let z = b.get_state("z");
            let p = b.mulf(x, y);
            let s = b.addf(z, p); // mul on the right
            b.set_state("x", s);
            b.ret(&[]);
        });
        assert!(FmaContract.run_on(&mut m));
        assert!(print_module(&m).contains("math.fma"));
        verify_module(&m).unwrap();
    }

    #[test]
    fn keeps_multiply_with_other_users() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let y = b.get_state("y");
            let z = b.get_state("z");
            let p = b.mulf(x, y);
            let s = b.addf(p, z);
            b.set_state("x", s);
            b.set_state("y", p); // second use of the multiply
            b.ret(&[]);
        });
        assert!(!FmaContract.run_on(&mut m));
        let text = print_module(&m);
        assert!(text.contains("arith.mulf"));
        assert!(!text.contains("math.fma"));
    }

    #[test]
    fn chains_fuse_pairwise() {
        // a*b + c*d + e: one fma for (c*d, partial) depending on shape —
        // at minimum one contraction must fire and the result verify.
        let mut m = prepare(|b| {
            let a = b.get_state("a");
            let c = b.get_state("c");
            let e = b.get_state("e");
            let p1 = b.mulf(a, a);
            let p2 = b.mulf(c, c);
            let s1 = b.addf(p1, p2);
            let s2 = b.addf(s1, e);
            b.set_state("a", s2);
            b.ret(&[]);
        });
        assert!(FmaContract.run_on(&mut m));
        let text = print_module(&m);
        assert!(text.contains("math.fma"), "{text}");
        verify_module(&m).unwrap();
    }

    #[test]
    fn vector_types_fuse_too() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let y = b.get_state("y");
            let z = b.get_state("z");
            let p = b.mulf(x, y);
            let s = b.addf(p, z);
            b.set_state("x", s);
            b.ret(&[]);
        });
        crate::Vectorize::new(8).run_on(&mut m);
        assert!(FmaContract.run_on(&mut m));
        let text = print_module(&m);
        assert!(text.contains("math.fma"), "{text}");
        assert!(text.contains("vector<8xf64>"), "{text}");
        verify_module(&m).unwrap();
    }
}
