//! Common subexpression elimination.
//!
//! The paper calls out CSE as one of the in-tree MLIR transformations that
//! benefit generated ionic-model code (§3.4.2) — the integration methods
//! re-lower the derivative cone several times, producing many duplicates.
//!
//! Pure, region-free operations with identical `(kind, operands,
//! attributes)` are deduplicated. Scoping follows the region tree: an op in
//! a nested region may reuse a dominating op from an ancestor region, but
//! not vice versa, and sibling regions do not share.

use crate::{Pass, PassCtx};
use limpet_ir::{Attr, Func, Module, RegionId};
use std::collections::HashMap;

/// Common subexpression elimination pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
        let mut deduped = 0u64;
        for func in module.funcs_mut() {
            let mut scope = Vec::new();
            deduped += run_region(func, func.body(), &mut scope);
        }
        ctx.count("ops-deduped", deduped);
        deduped > 0
    }
}

type Scope = Vec<HashMap<String, limpet_ir::ValueId>>;

fn key_of(func: &Func, op_id: limpet_ir::OpId) -> Option<String> {
    let op = func.op(op_id);
    if !op.kind.is_pure() || !op.regions.is_empty() || op.results.len() != 1 {
        return None;
    }
    // State reads are pure but must not be deduplicated across stores; in
    // our kernels stores only happen at the end, so reads are safe. Parent
    // reads are also safe. Constants, arithmetic, math, lut reads: safe.
    let mut key = String::with_capacity(64);
    key.push_str(&format!("{:?}|", op.kind));
    // Commutative ops: sort operands for a canonical key.
    let mut operands = op.operands.clone();
    if op.kind.is_commutative() {
        operands.sort();
    }
    for o in operands {
        key.push_str(&format!("{},", o.index()));
    }
    key.push('|');
    for (k, v) in op.attrs.iter() {
        key.push_str(k);
        key.push('=');
        match v {
            Attr::F64(x) => key.push_str(&format!("{x}")),
            Attr::I64(x) => key.push_str(&format!("{x}")),
            Attr::Bool(x) => key.push_str(&format!("{x}")),
            Attr::Str(s) => key.push_str(s),
            Attr::Ty(t) => key.push_str(&format!("{t}")),
        }
        key.push(';');
    }
    // Result type distinguishes scalar from splat constants.
    key.push_str(&format!("|{}", func.value_type(op.results[0])));
    Some(key)
}

fn run_region(func: &mut Func, region: RegionId, scope: &mut Scope) -> u64 {
    scope.push(HashMap::new());
    let mut changed = 0u64;
    let ops = func.region(region).ops.clone();
    for op_id in ops {
        if let Some(key) = key_of(func, op_id) {
            let existing = scope.iter().rev().find_map(|m| m.get(&key)).copied();
            match existing {
                Some(prev) => {
                    let result = func.op(op_id).result();
                    func.replace_all_uses(result, prev);
                    func.erase_op(region, op_id);
                    changed += 1;
                    continue;
                }
                None => {
                    let result = func.op(op_id).result();
                    scope.last_mut().unwrap().insert(key, result);
                }
            }
        }
        let nested = func.op(op_id).regions.clone();
        for r in nested {
            changed += run_region(func, r, scope);
        }
    }
    scope.pop();
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_ir::{print_module, verify_module, Builder, Func, Module, OpKind, Type};

    fn prepare(build: impl FnOnce(&mut Builder<'_>)) -> Module {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        build(&mut b);
        m.add_func(f);
        m
    }

    fn count(m: &Module, op: &str) -> usize {
        print_module(m).matches(op).count()
    }

    #[test]
    fn dedups_identical_constants() {
        let mut m = prepare(|b| {
            let a = b.const_f(2.0);
            let c = b.const_f(2.0);
            let s = b.addf(a, c);
            b.set_state("x", s);
            b.ret(&[]);
        });
        assert!(Cse.run_on(&mut m));
        assert_eq!(count(&m, "arith.constant"), 1);
        verify_module(&m).unwrap();
    }

    #[test]
    fn dedups_arith_with_commutativity() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let y = b.get_state("y");
            let s1 = b.addf(x, y);
            let s2 = b.addf(y, x); // commuted duplicate
            let p = b.mulf(s1, s2);
            b.set_state("x", p);
            b.ret(&[]);
        });
        assert!(Cse.run_on(&mut m));
        assert_eq!(count(&m, "arith.addf"), 1);
        verify_module(&m).unwrap();
    }

    #[test]
    fn dedups_state_reads() {
        let mut m = prepare(|b| {
            let a = b.get_state("x");
            let c = b.get_state("x");
            let s = b.addf(a, c);
            b.set_state("x", s);
            b.ret(&[]);
        });
        assert!(Cse.run_on(&mut m));
        assert_eq!(count(&m, "limpet.get_state"), 1);
    }

    #[test]
    fn distinct_vars_not_merged() {
        let mut m = prepare(|b| {
            let a = b.get_state("x");
            let c = b.get_state("y");
            let s = b.addf(a, c);
            b.set_state("x", s);
            b.ret(&[]);
        });
        assert!(!Cse.run_on(&mut m));
        assert_eq!(count(&m, "limpet.get_state"), 2);
    }

    #[test]
    fn nested_region_reuses_outer_value() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            let two = b.const_f(2.0);
            let outer = b.mulf(x, two);
            let c = b.const_bool(true);
            let r = b.if_op(
                c,
                &[Type::F64],
                |b| {
                    let x2 = b.get_state("x");
                    let two2 = b.const_f(2.0);
                    let dup = b.mulf(x2, two2);
                    b.yield_(&[dup]);
                },
                |b| {
                    let z = b.const_f(0.0);
                    b.yield_(&[z]);
                },
            );
            let s = b.addf(outer, r[0]);
            b.set_state("x", s);
            b.ret(&[]);
        });
        assert!(Cse.run_on(&mut m));
        // The inner mulf collapses onto the outer one.
        assert_eq!(count(&m, "arith.mulf"), 1);
        verify_module(&m).unwrap();
    }

    #[test]
    fn sibling_regions_do_not_share() {
        let mut m = prepare(|b| {
            let c = b.const_bool(true);
            let r = b.if_op(
                c,
                &[Type::F64],
                |b| {
                    let x = b.get_state("x");
                    let e = b.exp(x);
                    b.yield_(&[e]);
                },
                |b| {
                    let x = b.get_state("x");
                    let e = b.exp(x);
                    b.yield_(&[e]);
                },
            );
            b.set_state("x", r[0]);
            b.ret(&[]);
        });
        // Identical exprs in sibling branches cannot be merged (neither
        // dominates the other).
        assert!(!Cse.run_on(&mut m));
        assert_eq!(count(&m, "math.exp"), 2);
    }

    #[test]
    fn stores_never_touched() {
        let mut m = prepare(|b| {
            let x = b.get_state("x");
            b.set_state("a", x);
            b.set_state("a", x);
            b.ret(&[]);
        });
        Cse.run_on(&mut m);
        assert_eq!(count(&m, "limpet.set_state"), 2);
    }

    #[test]
    fn keys_distinguish_kinds() {
        let mut f = Func::new("f", &[], &[]);
        let body = f.body();
        let a = f.push_op(
            body,
            OpKind::ConstantF(1.0),
            vec![],
            &[Type::F64],
            limpet_ir::Attrs::new(),
            vec![],
        );
        let b_ = f.push_op(
            body,
            OpKind::ConstantInt(1),
            vec![],
            &[Type::I64],
            limpet_ir::Attrs::new(),
            vec![],
        );
        let ka = key_of(&f, a).unwrap();
        let kb = key_of(&f, b_).unwrap();
        assert_ne!(ka, kb);
    }
}
