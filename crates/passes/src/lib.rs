//! # limpet-passes
//!
//! IR transformation passes for limpet-rs, mirroring the MLIR
//! transformations the paper relies on (§3.2–§3.4):
//!
//! * [`ConstProp`] — the paper's "preprocessor": compile-time evaluation and
//!   propagation of constant arithmetic, math calls, and conditions;
//! * [`Canonicalize`] — algebraic identities (`x+0`, `x*1`, `x*0`, …);
//! * [`Cse`] — common subexpression elimination;
//! * [`Licm`] — loop-invariant code motion out of `scf.for`;
//! * [`Dce`] — dead code elimination;
//! * [`Vectorize`] — the core limpetMLIR rewrite: scalar per-cell kernels
//!   become `vector<Wxf64>` kernels processing W cells per instruction,
//!   with if-conversion of varying `scf.if` into `arith.select`;
//! * [`FmaContract`] — fuses multiply-add chains into `math.fma`;
//! * [`ScalarLutMode`] — marks `lut.col` ops for per-lane scalar
//!   interpolation (models the icc-style "auto-vectorized arithmetic but
//!   scalar LUT calls" configuration of paper §5).
//!
//! # Examples
//!
//! ```
//! use limpet_passes::{standard_pipeline, PassManager, Vectorize};
//! use limpet_codegen::{lower_model, CodegenOptions};
//!
//! let model = limpet_easyml::compile_model("M", "diff_x = -0.5 * x;").unwrap();
//! let mut lowered = lower_model(&model, &CodegenOptions::default());
//! let pm = standard_pipeline(8);
//! pm.run(&mut lowered.module);
//! assert_eq!(lowered.module.attrs.i64_of("vector_width"), Some(8));
//! limpet_ir::verify_module(&lowered.module).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod canonicalize;
mod const_prop;
mod cse;
mod dce;
mod fma;
mod licm;
mod lut_mode;
mod vectorize;

pub use canonicalize::Canonicalize;
pub use const_prop::ConstProp;
pub use cse::Cse;
pub use dce::Dce;
pub use fma::FmaContract;
pub use licm::Licm;
pub use lut_mode::{CubicLutMode, ScalarLutMode};
pub use vectorize::Vectorize;

use limpet_ir::Module;
use std::fmt;

/// A module-level transformation.
pub trait Pass: fmt::Debug {
    /// The pass name, for statistics and debugging.
    fn name(&self) -> &'static str;

    /// Runs the pass; returns `true` if the module changed.
    fn run_on(&self, module: &mut Module) -> bool;
}

/// Statistics from one [`PassManager::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassStats {
    /// `(pass name, changed)` per executed pass, in order.
    pub executed: Vec<(&'static str, bool)>,
}

impl PassStats {
    /// Whether any pass reported a change.
    pub fn any_changed(&self) -> bool {
        self.executed.iter().any(|(_, c)| *c)
    }
}

/// Runs a sequence of passes over a module.
///
/// # Examples
///
/// ```
/// use limpet_passes::{ConstProp, Dce, PassManager};
/// let mut pm = PassManager::new();
/// pm.add(ConstProp).add(Dce);
/// assert_eq!(pm.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Creates an empty pass manager.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Runs all passes in order, once.
    pub fn run(&self, module: &mut Module) -> PassStats {
        let mut stats = PassStats::default();
        for p in &self.passes {
            let changed = p.run_on(module);
            stats.executed.push((p.name(), changed));
        }
        stats
    }
}

/// The limpetMLIR optimization pipeline at vector width `width`:
/// preprocessor (constant propagation), canonicalization, CSE, LICM, DCE,
/// then vectorization followed by a cleanup round.
///
/// Width 1 yields a scalar-optimized module (no vectorization).
pub fn standard_pipeline(width: u32) -> PassManager {
    let mut pm = PassManager::new();
    pm.add(ConstProp)
        .add(Canonicalize)
        .add(Cse)
        .add(Licm)
        .add(Dce);
    if width > 1 {
        pm.add(Vectorize::new(width));
        // Vectorization introduces splat constants and broadcasts that fold.
        pm.add(Cse);
        pm.add(Dce);
    }
    // Contract multiply-add chains into fused ops (bit-exact here).
    pm.add(FmaContract);
    pm
}
