//! # limpet-passes
//!
//! IR transformation passes for limpet-rs, mirroring the MLIR
//! transformations the paper relies on (§3.2–§3.4):
//!
//! * [`ConstProp`] — the paper's "preprocessor": compile-time evaluation and
//!   propagation of constant arithmetic, math calls, and conditions;
//! * [`Canonicalize`] — algebraic identities (`x+0`, `x*1`, `x*0`, …);
//! * [`Cse`] — common subexpression elimination;
//! * [`Licm`] — loop-invariant code motion out of `scf.for`;
//! * [`Dce`] — dead code elimination;
//! * [`Vectorize`] — the core limpetMLIR rewrite: scalar per-cell kernels
//!   become `vector<Wxf64>` kernels processing W cells per instruction,
//!   with if-conversion of varying `scf.if` into `arith.select`;
//! * [`FmaContract`] — fuses multiply-add chains into `math.fma`;
//! * [`ScalarLutMode`] — marks `lut.col` ops for per-lane scalar
//!   interpolation (models the icc-style "auto-vectorized arithmetic but
//!   scalar LUT calls" configuration of paper §5).
//!
//! The pass-management infrastructure — the [`Pass`] trait, the
//! instrumented [`PassManager`], the textual pipeline parser, and the
//! [`PassRegistry`] — lives in `limpet-pm` and is re-exported here. This
//! crate contributes the pass implementations and the workspace's
//! canonical [`registry()`] mapping names (plus aliases such as
//! `lut-mode`) to factories.
//!
//! # Examples
//!
//! ```
//! use limpet_passes::{standard_pipeline, PassManager, Vectorize};
//! use limpet_codegen::{lower_model, CodegenOptions};
//!
//! let model = limpet_easyml::compile_model("M", "diff_x = -0.5 * x;").unwrap();
//! let mut lowered = lower_model(&model, &CodegenOptions::default());
//! let pm = standard_pipeline(8);
//! pm.run(&mut lowered.module).unwrap();
//! assert_eq!(lowered.module.attrs.i64_of("vector_width"), Some(8));
//! limpet_ir::verify_module(&lowered.module).unwrap();
//! ```
//!
//! Pipelines can equally be built from text through the registry:
//!
//! ```
//! use limpet_passes::registry;
//! let pm = registry()
//!     .parse_pipeline("const-prop,lut-mode,vectorize{width=4}")
//!     .unwrap();
//! assert_eq!(
//!     pm.pass_names(),
//!     ["const-prop", "scalar-lut-mode", "vectorize"]
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod canonicalize;
mod const_prop;
mod cse;
mod dce;
mod fma;
mod licm;
mod lut_mode;
mod vectorize;

pub use canonicalize::Canonicalize;
pub use const_prop::ConstProp;
pub use cse::Cse;
pub use dce::Dce;
pub use fma::FmaContract;
pub use licm::Licm;
pub use lut_mode::{CubicLutMode, ScalarLutMode};
pub use vectorize::Vectorize;

pub use limpet_pm::{
    parse_pipeline_spec, DumpPoint, IrDump, Pass, PassCtx, PassManager, PassOptions, PassRegistry,
    PassRun, PassSpec, PipelineError, PipelineParseError, PrintIr, RunReport,
};

use std::sync::OnceLock;

/// The workspace's canonical pass registry: every pass in this crate,
/// registered under its [`Pass::name`], plus the `lut-mode` alias for
/// [`ScalarLutMode`] (the spelling the paper's pipeline descriptions use).
///
/// `vectorize` takes a required `width` option (`vectorize{width=4}`);
/// every other pass takes none.
pub fn registry() -> &'static PassRegistry {
    static REGISTRY: OnceLock<PassRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut r = PassRegistry::new();
        macro_rules! simple {
            ($name:literal, $pass:expr) => {
                r.register($name, |opts| {
                    opts.expect_only($name, &[])?;
                    Ok(Box::new($pass))
                });
            };
        }
        simple!("const-prop", ConstProp);
        simple!("canonicalize", Canonicalize);
        simple!("cse", Cse);
        simple!("licm", Licm);
        simple!("dce", Dce);
        simple!("fma-contract", FmaContract);
        simple!("scalar-lut-mode", ScalarLutMode);
        simple!("lut-mode", ScalarLutMode); // alias
        simple!("cubic-lut-mode", CubicLutMode);
        r.register("vectorize", |opts| {
            opts.expect_only("vectorize", &["width"])?;
            let width = opts.u32_of("vectorize", "width")?;
            if width < 2 {
                return Err(PipelineParseError::new(format!(
                    "pass 'vectorize': width must be >= 2, got {width}"
                )));
            }
            Ok(Box::new(Vectorize::new(width)))
        });
        r
    })
}

/// Builds a [`PassManager`] from a textual pipeline description using the
/// workspace [`registry()`], e.g. `"const-prop,lut-mode,vectorize{width=4}"`.
///
/// # Errors
///
/// Errors on malformed text, unknown passes, or bad options.
pub fn parse_pipeline(text: &str) -> Result<PassManager, PipelineParseError> {
    registry().parse_pipeline(text)
}

/// The textual form of [`standard_pipeline`] at vector width `width`.
///
/// The post-vectorization cleanup runs under `fixpoint(...)` — each of
/// `const-prop`, `cse`, and `dce` can expose work for the others, so the
/// group reruns until no pass reports a change instead of hand-sequencing
/// one extra `cse,dce` round and hoping that was enough.
pub fn standard_pipeline_text(width: u32) -> String {
    if width > 1 {
        format!(
            "const-prop,canonicalize,cse,licm,dce,vectorize{{width={width}}},\
             fixpoint(const-prop,cse,dce),fma-contract"
        )
    } else {
        "const-prop,canonicalize,cse,licm,dce,fma-contract".to_owned()
    }
}

/// The limpetMLIR optimization pipeline at vector width `width`:
/// preprocessor (constant propagation), canonicalization, CSE, LICM, DCE,
/// then vectorization followed by a fixpoint cleanup group (constant
/// propagation, CSE, DCE rerun to convergence).
///
/// Width 1 yields a scalar-optimized module (no vectorization). The
/// pipeline is built through the textual parser and [`registry()`], so it
/// is exactly what `limpet-opt --pipeline` produces for the same text.
pub fn standard_pipeline(width: u32) -> PassManager {
    parse_pipeline(&standard_pipeline_text(width)).expect("in-tree pipeline text is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_every_pass_and_alias() {
        let r = registry();
        for name in [
            "const-prop",
            "canonicalize",
            "cse",
            "licm",
            "dce",
            "vectorize",
            "fma-contract",
            "scalar-lut-mode",
            "lut-mode",
            "cubic-lut-mode",
        ] {
            assert!(r.contains(name), "missing pass '{name}'");
        }
    }

    #[test]
    fn standard_pipeline_round_trips_through_text() {
        let pm = standard_pipeline(4);
        assert_eq!(
            pm.pass_names(),
            [
                "const-prop",
                "canonicalize",
                "cse",
                "licm",
                "dce",
                "vectorize",
                "fixpoint",
                "fma-contract"
            ]
        );
        let scalar = standard_pipeline(1);
        assert!(!scalar.pass_names().contains(&"vectorize"));
        assert!(!scalar.pass_names().contains(&"fixpoint"));
    }

    #[test]
    fn vectorize_width_validated_at_parse_time() {
        assert!(parse_pipeline("vectorize").is_err());
        assert!(parse_pipeline("vectorize{width=1}").is_err());
        assert!(parse_pipeline("vectorize{width=4}").is_ok());
    }
}
