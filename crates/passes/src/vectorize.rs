//! Vectorization — the core limpetMLIR rewrite (paper §3.3).
//!
//! Rewrites the scalar per-cell `@compute` kernel into a kernel that
//! processes `W` cells per operation: every *varying* `f64` value (one that
//! differs between cells) becomes `vector<Wxf64>`, comparisons become
//! `vector<Wxi1>`, and *uniform* values (parameters, `dt`, `t`, loop
//! indices) stay scalar and are broadcast — or materialized as splat
//! constants, as in paper Listing 3 — exactly where a varying op consumes
//! them.
//!
//! Control flow follows §5's SIMD-friendliness discussion:
//!
//! * `scf.if` with a **varying** condition is if-converted: both regions
//!   are inlined (they must be pure) and each result becomes an
//!   `arith.select` under the vector mask;
//! * `scf.if` with a **uniform** condition keeps its structure;
//! * `scf.for` keeps its structure (bounds are uniform); `f64` iteration
//!   arguments are promoted to vectors.

use crate::{Pass, PassCtx};
use limpet_ir::{Attrs, Func, Module, OpKind, RegionId, ScalarType, Type, ValueDef, ValueId};
use std::collections::HashMap;

/// The vectorization pass; `width` is the lane count (2 = SSE, 4 = AVX2,
/// 8 = AVX-512 in the paper's evaluation).
#[derive(Debug, Clone, Copy)]
pub struct Vectorize {
    width: u32,
}

impl Vectorize {
    /// Creates the pass for the given lane count.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2`.
    pub fn new(width: u32) -> Vectorize {
        assert!(width >= 2, "vectorization needs at least 2 lanes");
        Vectorize { width }
    }
}

impl Pass for Vectorize {
    fn name(&self) -> &'static str {
        "vectorize"
    }

    fn run(&self, module: &mut Module, ctx: &mut PassCtx) -> bool {
        let Some(old) = module.func("compute") else {
            return false;
        };
        if module.attrs.i64_of("vector_width").is_some() {
            return false; // already vectorized
        }
        let old = old.clone();
        let mut vz = Vectorizer {
            width: self.width,
            old: &old,
            new: Func::new("compute", old.arg_types(), old.result_types()),
            map: HashMap::new(),
            splat_cache: HashMap::new(),
        };
        let new_body = vz.new.body();
        let ret = vz.emit_ops(old.body(), new_body);
        let rets: Vec<ValueId> = ret.iter().map(|m| m.v).collect();
        vz.new
            .push_op(new_body, OpKind::Return, rets, &[], Attrs::new(), vec![]);
        let new = vz.new;
        for f in module.funcs_mut() {
            if f.name() == "compute" {
                *f = new;
                break;
            }
        }
        module.attrs.set("vector_width", self.width as i64);
        ctx.count("kernels-vectorized", 1);
        true
    }
}

/// A value in the new function plus whether it is uniform across lanes.
#[derive(Debug, Clone, Copy)]
struct Mapped {
    v: ValueId,
    uniform: bool,
}

struct Vectorizer<'a> {
    width: u32,
    old: &'a Func,
    new: Func,
    /// old value → new value.
    map: HashMap<ValueId, Mapped>,
    /// (uniform new value, region) → its splat/broadcast in that region.
    splat_cache: HashMap<(ValueId, RegionId), ValueId>,
}

impl<'a> Vectorizer<'a> {
    fn mapped(&self, old: ValueId) -> Mapped {
        *self
            .map
            .get(&old)
            .unwrap_or_else(|| panic!("value used before definition during vectorization"))
    }

    /// Returns a `W`-lane version of a mapped value, inserting a splat
    /// constant or broadcast in `region` when the value is uniform.
    fn as_varying(&mut self, m: Mapped, region: RegionId) -> ValueId {
        if !m.uniform {
            return m.v;
        }
        if let Some(&cached) = self.splat_cache.get(&(m.v, region)) {
            return cached;
        }
        let ty = self.new.value_type(m.v);
        let vec_ty = ty.with_lanes(self.width);
        // Constants become splat constants (`arith.constant dense<…>`),
        // everything else is broadcast.
        let def = self.new.value(m.v).def;
        let widened = if let ValueDef::OpResult { op, .. } = def {
            match self.new.op(op).kind.clone() {
                k @ (OpKind::ConstantF(_) | OpKind::ConstantBool(_)) => {
                    let new_op =
                        self.new
                            .push_op(region, k, vec![], &[vec_ty], Attrs::new(), vec![]);
                    self.new.op(new_op).result()
                }
                _ => {
                    let new_op = self.new.push_op(
                        region,
                        OpKind::Broadcast,
                        vec![m.v],
                        &[vec_ty],
                        Attrs::new(),
                        vec![],
                    );
                    self.new.op(new_op).result()
                }
            }
        } else {
            let new_op = self.new.push_op(
                region,
                OpKind::Broadcast,
                vec![m.v],
                &[vec_ty],
                Attrs::new(),
                vec![],
            );
            self.new.op(new_op).result()
        };
        self.splat_cache.insert((m.v, region), widened);
        widened
    }

    /// Emits all ops of `old_region` (except its terminator) into
    /// `new_region`; returns the mapped terminator operands.
    fn emit_ops(&mut self, old_region: RegionId, new_region: RegionId) -> Vec<Mapped> {
        let ops = self.old.region(old_region).ops.clone();
        for (i, op_id) in ops.iter().enumerate() {
            let op = self.old.op(*op_id).clone();
            if op.kind.is_terminator() {
                assert_eq!(i + 1, ops.len(), "terminator must be last");
                return op.operands.iter().map(|&o| self.mapped(o)).collect();
            }
            self.emit_op(*op_id, new_region);
        }
        Vec::new()
    }

    fn emit_op(&mut self, op_id: limpet_ir::OpId, region: RegionId) {
        let op = self.old.op(op_id).clone();
        match op.kind.clone() {
            OpKind::If => self.emit_if(op_id, region),
            OpKind::For => self.emit_for(op_id, region),
            // Per-cell data accesses: always varying.
            OpKind::GetExt | OpKind::GetState => {
                let ty = self.old.value_type(op.result()).with_lanes(self.width);
                let new_op = self.new.push_op(
                    region,
                    op.kind.clone(),
                    vec![],
                    &[ty],
                    op.attrs.clone(),
                    vec![],
                );
                let v = self.new.op(new_op).result();
                self.map.insert(op.result(), Mapped { v, uniform: false });
            }
            OpKind::GetParentState => {
                let fb = self.mapped(op.operands[0]);
                let fb_v = self.as_varying(fb, region);
                let ty = self.old.value_type(op.result()).with_lanes(self.width);
                let new_op = self.new.push_op(
                    region,
                    OpKind::GetParentState,
                    vec![fb_v],
                    &[ty],
                    op.attrs.clone(),
                    vec![],
                );
                let v = self.new.op(new_op).result();
                self.map.insert(op.result(), Mapped { v, uniform: false });
            }
            OpKind::LutCol => {
                let key = self.mapped(op.operands[0]);
                let key_v = self.as_varying(key, region);
                let ty = self.old.value_type(op.result()).with_lanes(self.width);
                let new_op = self.new.push_op(
                    region,
                    OpKind::LutCol,
                    vec![key_v],
                    &[ty],
                    op.attrs.clone(),
                    vec![],
                );
                let v = self.new.op(new_op).result();
                self.map.insert(op.result(), Mapped { v, uniform: false });
            }
            // Stores take varying operands.
            OpKind::SetExt | OpKind::SetState | OpKind::SetParentState => {
                let m = self.mapped(op.operands[0]);
                let v = self.as_varying(m, region);
                self.new.push_op(
                    region,
                    op.kind.clone(),
                    vec![v],
                    &[],
                    op.attrs.clone(),
                    vec![],
                );
            }
            // Uniform context reads.
            OpKind::Param | OpKind::Dt | OpKind::Time | OpKind::CellIndex | OpKind::HasParent => {
                let tys: Vec<Type> = op.results.iter().map(|&r| self.old.value_type(r)).collect();
                let new_op = self.new.push_op(
                    region,
                    op.kind.clone(),
                    vec![],
                    &tys,
                    op.attrs.clone(),
                    vec![],
                );
                let v = self.new.op(new_op).result();
                self.map.insert(op.result(), Mapped { v, uniform: true });
            }
            // Everything else: varying iff any operand is varying.
            kind => {
                let mapped: Vec<Mapped> = op.operands.iter().map(|&o| self.mapped(o)).collect();
                let varying = mapped.iter().any(|m| !m.uniform);
                let operands: Vec<ValueId> = if varying {
                    match kind {
                        // select's condition may stay a uniform scalar i1
                        // (the verifier allows lanes 1 or matching); only
                        // the value arms are widened.
                        OpKind::Select => {
                            let a = self.as_varying(mapped[1], region);
                            let b = self.as_varying(mapped[2], region);
                            vec![mapped[0].v, a, b]
                        }
                        _ => mapped.iter().map(|&m| self.as_varying(m, region)).collect(),
                    }
                } else {
                    mapped.iter().map(|m| m.v).collect()
                };
                let tys: Vec<Type> = op
                    .results
                    .iter()
                    .map(|&r| {
                        let t = self.old.value_type(r);
                        if varying {
                            t.with_lanes(self.width)
                        } else {
                            t
                        }
                    })
                    .collect();
                let new_op =
                    self.new
                        .push_op(region, kind, operands, &tys, op.attrs.clone(), vec![]);
                let results = self.new.op(new_op).results.clone();
                for (old_r, new_r) in op.results.iter().zip(results) {
                    self.map.insert(
                        *old_r,
                        Mapped {
                            v: new_r,
                            uniform: !varying,
                        },
                    );
                }
            }
        }
    }

    fn emit_if(&mut self, op_id: limpet_ir::OpId, region: RegionId) {
        let op = self.old.op(op_id).clone();
        let cond = self.mapped(op.operands[0]);
        let (old_then, old_else) = (op.regions[0], op.regions[1]);

        if cond.uniform {
            // Keep structured control flow.
            let new_then = self.new.new_region(&[]);
            let new_else = self.new.new_region(&[]);
            let then_yields = self.emit_ops(old_then, new_then);
            let else_yields = self.emit_ops(old_else, new_else);
            let n = op.results.len();
            let mut result_tys = Vec::with_capacity(n);
            let mut then_vals = Vec::with_capacity(n);
            let mut else_vals = Vec::with_capacity(n);
            let mut varyings = Vec::with_capacity(n);
            for i in 0..n {
                let varying = !then_yields[i].uniform || !else_yields[i].uniform;
                let tv = if varying {
                    self.as_varying(then_yields[i], new_then)
                } else {
                    then_yields[i].v
                };
                let ev = if varying {
                    self.as_varying(else_yields[i], new_else)
                } else {
                    else_yields[i].v
                };
                result_tys.push(self.new.value_type(tv));
                then_vals.push(tv);
                else_vals.push(ev);
                varyings.push(varying);
            }
            self.new.push_op(
                new_then,
                OpKind::Yield,
                then_vals,
                &[],
                Attrs::new(),
                vec![],
            );
            self.new.push_op(
                new_else,
                OpKind::Yield,
                else_vals,
                &[],
                Attrs::new(),
                vec![],
            );
            let new_op = self.new.push_op(
                region,
                OpKind::If,
                vec![cond.v],
                &result_tys,
                op.attrs.clone(),
                vec![new_then, new_else],
            );
            let results = self.new.op(new_op).results.clone();
            for ((old_r, new_r), varying) in op.results.iter().zip(results).zip(varyings) {
                self.map.insert(
                    *old_r,
                    Mapped {
                        v: new_r,
                        uniform: !varying,
                    },
                );
            }
        } else {
            // If-conversion: inline both (pure) regions, select results.
            assert!(
                self.region_is_pure(old_then) && self.region_is_pure(old_else),
                "cannot if-convert a region with side effects"
            );
            let then_yields = self.emit_ops(old_then, region);
            let else_yields = self.emit_ops(old_else, region);
            for (i, old_r) in op.results.iter().enumerate() {
                let a = self.as_varying(then_yields[i], region);
                let b = self.as_varying(else_yields[i], region);
                let ty = self.new.value_type(a);
                let sel = self.new.push_op(
                    region,
                    OpKind::Select,
                    vec![cond.v, a, b],
                    &[ty],
                    Attrs::new(),
                    vec![],
                );
                let v = self.new.op(sel).result();
                self.map.insert(*old_r, Mapped { v, uniform: false });
            }
        }
    }

    fn emit_for(&mut self, op_id: limpet_ir::OpId, region: RegionId) {
        let op = self.old.op(op_id).clone();
        let bounds: Vec<Mapped> = op.operands[..3].iter().map(|&o| self.mapped(o)).collect();
        assert!(
            bounds.iter().all(|m| m.uniform),
            "scf.for bounds must be uniform for vectorization"
        );
        // f64/i1 iteration values are promoted to vectors; index stays.
        let inits: Vec<Mapped> = op.operands[3..].iter().map(|&o| self.mapped(o)).collect();
        let mut arg_tys = vec![Type::INDEX];
        let mut new_inits = Vec::with_capacity(inits.len());
        let mut promote = Vec::with_capacity(inits.len());
        for m in &inits {
            let ty = self.new.value_type(m.v);
            let p = ty.scalar() != Some(ScalarType::Index) && !ty.is_memref();
            promote.push(p);
            if p {
                let v = self.as_varying(*m, region);
                arg_tys.push(self.new.value_type(v));
                new_inits.push(v);
            } else {
                arg_tys.push(ty);
                new_inits.push(m.v);
            }
        }
        let body_new = self.new.new_region(&arg_tys);
        let body_old = op.regions[0];
        // Map old region args.
        let old_args = self.old.region(body_old).args.clone();
        let new_args = self.new.region(body_new).args.clone();
        self.map.insert(
            old_args[0],
            Mapped {
                v: new_args[0],
                uniform: true,
            },
        );
        for ((old_a, new_a), p) in old_args[1..].iter().zip(&new_args[1..]).zip(&promote) {
            self.map.insert(
                *old_a,
                Mapped {
                    v: *new_a,
                    uniform: !p,
                },
            );
        }
        let yields = self.emit_ops(body_old, body_new);
        let yield_vals: Vec<ValueId> = yields
            .iter()
            .zip(&promote)
            .map(|(m, &p)| {
                if p {
                    self.as_varying(*m, body_new)
                } else {
                    m.v
                }
            })
            .collect();
        self.new.push_op(
            body_new,
            OpKind::Yield,
            yield_vals,
            &[],
            Attrs::new(),
            vec![],
        );

        let mut operands = vec![bounds[0].v, bounds[1].v, bounds[2].v];
        operands.extend(new_inits);
        let result_tys: Vec<Type> = arg_tys[1..].to_vec();
        let new_op = self.new.push_op(
            region,
            OpKind::For,
            operands,
            &result_tys,
            op.attrs.clone(),
            vec![body_new],
        );
        let results = self.new.op(new_op).results.clone();
        for ((old_r, new_r), p) in op.results.iter().zip(results).zip(promote) {
            self.map.insert(
                *old_r,
                Mapped {
                    v: new_r,
                    uniform: !p,
                },
            );
        }
    }

    fn region_is_pure(&self, region: RegionId) -> bool {
        self.old.region(region).ops.iter().all(|&op| {
            let o = self.old.op(op);
            let self_ok = o.kind.is_pure() || o.kind.is_terminator() || o.kind == OpKind::If;
            self_ok && o.regions.iter().all(|&r| self.region_is_pure(r))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pass;
    use limpet_ir::{print_module, verify_module, Builder, CmpFPred, Module};

    fn vectorized(build: impl FnOnce(&mut Builder<'_>)) -> Module {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        build(&mut b);
        m.add_func(f);
        assert!(Vectorize::new(8).run_on(&mut m));
        verify_module(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        m
    }

    #[test]
    fn state_reads_become_vectors() {
        let m = vectorized(|b| {
            let x = b.get_state("x");
            let y = b.negf(x);
            b.set_state("x", y);
            b.ret(&[]);
        });
        let text = print_module(&m);
        assert!(
            text.contains("limpet.get_state {var = \"x\"} : vector<8xf64>"),
            "{text}"
        );
        assert!(text.contains("arith.negf %0 : vector<8xf64>"), "{text}");
        assert_eq!(m.attrs.i64_of("vector_width"), Some(8));
    }

    #[test]
    fn params_stay_uniform_and_splat_at_use() {
        let m = vectorized(|b| {
            let p = b.param("Cm");
            let x = b.get_state("x");
            let y = b.mulf(x, p);
            b.set_state("x", y);
            b.ret(&[]);
        });
        let text = print_module(&m);
        assert!(
            text.contains("limpet.param {name = \"Cm\"} : f64"),
            "{text}"
        );
        assert!(text.contains("vector.broadcast"), "{text}");
    }

    #[test]
    fn constants_become_splats() {
        let m = vectorized(|b| {
            let x = b.get_state("x");
            let two = b.const_f(2.0);
            let y = b.divf(x, two);
            b.set_state("x", y);
            b.ret(&[]);
        });
        let text = print_module(&m);
        assert!(
            text.contains("arith.constant 2.0 : vector<8xf64>"),
            "{text}"
        );
    }

    #[test]
    fn uniform_computation_stays_scalar() {
        let m = vectorized(|b| {
            let dt = b.dt();
            let half = b.const_f(0.5);
            let hdt = b.mulf(dt, half); // uniform
            let x = b.get_state("x");
            let upd = b.mulf(x, hdt);
            b.set_state("x", upd);
            b.ret(&[]);
        });
        let text = print_module(&m);
        // The dt*0.5 multiply stays scalar; only the state multiply is wide.
        assert!(text.contains("arith.mulf %0, %1 : f64"), "{text}");
    }

    #[test]
    fn varying_if_is_converted_to_select() {
        let m = vectorized(|b| {
            let x = b.get_state("x");
            let z = b.const_f(0.0);
            let c = b.cmpf(CmpFPred::Ogt, x, z);
            let r = b.if_op(
                c,
                &[Type::F64],
                |b| {
                    let v = b.const_f(1.0);
                    b.yield_(&[v]);
                },
                |b| {
                    let v = b.const_f(2.0);
                    b.yield_(&[v]);
                },
            );
            b.set_state("x", r[0]);
            b.ret(&[]);
        });
        let text = print_module(&m);
        assert!(!text.contains("scf.if"), "{text}");
        assert!(text.contains("arith.select"), "{text}");
        assert!(text.contains("vector<8xi1>"), "{text}");
    }

    #[test]
    fn uniform_if_keeps_structure() {
        let m = vectorized(|b| {
            let p = b.param("flag");
            let z = b.const_f(0.0);
            let c = b.cmpf(CmpFPred::Ogt, p, z); // uniform condition
            let r = b.if_op(
                c,
                &[Type::F64],
                |b| {
                    let v = b.get_state("a");
                    b.yield_(&[v]);
                },
                |b| {
                    let v = b.const_f(0.0);
                    b.yield_(&[v]);
                },
            );
            b.set_state("x", r[0]);
            b.ret(&[]);
        });
        let text = print_module(&m);
        assert!(text.contains("scf.if"), "{text}");
        // Mixed yields: the uniform else-yield is widened to match.
        assert!(text.contains("-> (vector<8xf64>)"), "{text}");
    }

    #[test]
    fn for_loop_promotes_float_iters() {
        let m = vectorized(|b| {
            let lb = b.const_index(0);
            let ub = b.const_index(3);
            let st = b.const_index(1);
            let x0 = b.get_state("x");
            let r = b.for_op(lb, ub, st, &[x0], |b, _iv, iters| {
                let k = b.const_f(0.9);
                let next = b.mulf(iters[0], k);
                b.yield_(&[next]);
            });
            b.set_state("x", r[0]);
            b.ret(&[]);
        });
        let text = print_module(&m);
        assert!(text.contains("iter_args"), "{text}");
        assert!(text.contains("-> (vector<8xf64>)"), "{text}");
        // Bounds stay index-typed scalars.
        assert!(text.contains("arith.constant 0 : index"), "{text}");
    }

    #[test]
    fn lut_cols_vectorize() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let vm = b.get_ext("Vm");
        let v = b.lut_col("Vm", 0, vm);
        b.set_state("x", v);
        b.ret(&[]);
        m.add_func(f);
        // lut spec + function so the module verifies.
        let mut lf = Func::new("lut_Vm", &[Type::F64], &[Type::F64]);
        let arg = lf.args()[0];
        let mut lb = Builder::new(&mut lf);
        let e = lb.exp(arg);
        lb.ret(&[e]);
        m.add_func(lf);
        m.luts.push(limpet_ir::LutSpec {
            name: "Vm".into(),
            lo: -10.0,
            hi: 10.0,
            step: 0.5,
            func: "lut_Vm".into(),
            cols: vec!["c0".into()],
        });
        assert!(Vectorize::new(4).run_on(&mut m));
        verify_module(&m).unwrap();
        let text = print_module(&m);
        assert!(
            text.contains("lut.col %0 {col = 0, table = \"Vm\"} : vector<4xf64>"),
            "{text}"
        );
        // The lut function itself stays scalar (it runs at table-init time).
        assert!(text.contains("func.func @lut_Vm(%arg0: f64)"), "{text}");
    }

    #[test]
    fn idempotent_via_module_attr() {
        let mut m = Module::new("t");
        let mut f = Func::new("compute", &[], &[]);
        let mut b = Builder::new(&mut f);
        let x = b.get_state("x");
        b.set_state("x", x);
        b.ret(&[]);
        m.add_func(f);
        assert!(Vectorize::new(8).run_on(&mut m));
        assert!(!Vectorize::new(8).run_on(&mut m));
    }

    use limpet_ir::Type;
}
