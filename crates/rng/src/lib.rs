//! # limpet-rng
//!
//! A small, dependency-free, deterministic pseudo-random number generator
//! for the workspace: the synthetic model generator ([`limpet_models`])
//! and the in-tree property-test harness both need reproducible streams,
//! and the build environment is fully offline, so this crate stands in
//! for the `rand` crate with a compatible sub-API.
//!
//! The generator is **xoshiro256\*\*** seeded through **SplitMix64**
//! (the reference seeding procedure), which passes BigCrush and is more
//! than adequate for test-input and model-structure generation. It is
//! *not* cryptographically secure.
//!
//! ```
//! use limpet_rng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(42);
//! let x: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! let n = rng.gen_range(0..10usize);
//! assert!(n < 10);
//! // Same seed, same stream.
//! let mut rng2 = SmallRng::seed_from_u64(42);
//! assert_eq!(rng2.gen_range(0.0..1.0), x);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::Range;

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// The name mirrors `rand::rngs::SmallRng` so call sites read the same.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, as
    /// recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates a generator seeded from a string (FNV-1a hash of the bytes).
    pub fn seed_from_str(s: &str) -> SmallRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SmallRng::seed_from_u64(h)
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform f64 in `[0, 1)` (53-bit resolution).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.next_f64() < p
    }
}

/// Types [`SmallRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Draws one uniform sample from `range`.
    fn sample(rng: &mut SmallRng, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample(rng: &mut SmallRng, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut SmallRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift rejection-free mapping: bias is < 2^-64,
                // irrelevant for test-input generation.
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.5..9.25);
            assert!((-3.5..9.25).contains(&x));
            let n = rng.gen_range(3..17usize);
            assert!((3..17).contains(&n));
            let i = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn string_seeding_is_stable() {
        let a = SmallRng::seed_from_str("OHara");
        let b = SmallRng::seed_from_str("OHara");
        assert_eq!(a, b);
        assert_ne!(a, SmallRng::seed_from_str("Ohara"));
    }
}
