//! # limpet-solver
//!
//! Sparse linear algebra and monodomain tissue coupling: the "solver
//! stage" substrate of the two-stage simulation flow (paper §3.1). The
//! paper treats the linear solver as out of scope; we build it anyway so
//! the examples exercise a complete compute→solve loop.
//!
//! * [`CsrMatrix`] — compressed sparse row matrices;
//! * [`cg_solve`] / [`jacobi_solve`] — iterative solvers;
//! * [`Monodomain`] — implicit 1-D cable diffusion stepping.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod csr;
mod linear;
mod monodomain;

pub use csr::{cable_laplacian, CsrMatrix, ShapeError};
pub use linear::{cg_solve, jacobi_solve, SolveError, SolveStats};
pub use monodomain::Monodomain;
