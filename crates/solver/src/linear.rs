//! Iterative linear solvers: conjugate gradient (with optional Jacobi
//! preconditioning) and plain Jacobi iteration.
//!
//! These back the solver stage of the simulation flow (paper §3.1, stage
//! 2): the ionic kernel fills the right-hand side, and the potential
//! update solves a diffusion system `(M + dt·K) V = rhs`.

use crate::csr::CsrMatrix;
use std::fmt;

/// Result statistics of an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// A solver failure (invalid shapes or breakdown).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveError(pub String);

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "solver error: {}", self.0)
    }
}

impl std::error::Error for SolveError {}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Solves `A x = b` by conjugate gradients with Jacobi preconditioning.
/// `x` holds the initial guess on entry and the solution on exit.
///
/// # Errors
///
/// Returns [`SolveError`] on shape mismatch, a non-square matrix, a zero
/// diagonal entry, or numerical breakdown.
///
/// # Examples
///
/// ```
/// use limpet_solver::{cable_laplacian, cg_solve, CsrMatrix};
/// // SPD system: Laplacian + I.
/// let n = 32;
/// let lap = cable_laplacian(n, 1.0);
/// let mut t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1.0)).collect();
/// for r in 0..n { for c in 0..n { let v = lap.get(r, c); if v != 0.0 { t.push((r, c, v)); } } }
/// let a = CsrMatrix::from_triplets(n, n, &t);
/// let b = vec![1.0; n];
/// let mut x = vec![0.0; n];
/// let stats = cg_solve(&a, &b, &mut x, 1e-10, 200).unwrap();
/// assert!(stats.converged);
/// ```
pub fn cg_solve(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> Result<SolveStats, SolveError> {
    let n = b.len();
    if a.rows() != a.cols() {
        return Err(SolveError("matrix must be square".into()));
    }
    if a.rows() != n || x.len() != n {
        return Err(SolveError(format!(
            "shape mismatch: A is {}x{}, b has {}, x has {}",
            a.rows(),
            a.cols(),
            n,
            x.len()
        )));
    }
    let diag = a.diagonal();
    if diag.contains(&0.0) {
        return Err(SolveError(
            "zero diagonal entry (Jacobi preconditioner)".into(),
        ));
    }
    let b_norm = norm2(b).max(1e-300);

    let mut r = vec![0.0; n];
    a.mul_vec_into(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z: Vec<f64> = r.iter().zip(&diag).map(|(ri, di)| ri / di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for it in 0..max_iter {
        let res = norm2(&r) / b_norm;
        if res < tol {
            return Ok(SolveStats {
                iterations: it,
                residual: res,
                converged: true,
            });
        }
        a.mul_vec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return Err(SolveError(format!(
                "breakdown: p'Ap = {pap} (matrix not SPD?)"
            )));
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] / diag[i];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let res = norm2(&r) / b_norm;
    Ok(SolveStats {
        iterations: max_iter,
        residual: res,
        converged: res < tol,
    })
}

/// Solves `A x = b` by (damped) Jacobi iteration; slower than CG but
/// embarrassingly parallel — included as the baseline solver.
///
/// # Errors
///
/// Returns [`SolveError`] on shape mismatch or zero diagonal.
pub fn jacobi_solve(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    tol: f64,
    max_iter: usize,
) -> Result<SolveStats, SolveError> {
    let n = b.len();
    if a.rows() != n || x.len() != n {
        return Err(SolveError("shape mismatch".into()));
    }
    let diag = a.diagonal();
    if diag.contains(&0.0) {
        return Err(SolveError("zero diagonal entry".into()));
    }
    let b_norm = norm2(b).max(1e-300);
    let mut ax = vec![0.0; n];
    for it in 0..max_iter {
        a.mul_vec_into(x, &mut ax);
        let mut res2 = 0.0;
        for i in 0..n {
            let r = b[i] - ax[i];
            res2 += r * r;
            x[i] += r / diag[i];
        }
        let res = res2.sqrt() / b_norm;
        if res < tol {
            return Ok(SolveStats {
                iterations: it + 1,
                residual: res,
                converged: true,
            });
        }
    }
    a.mul_vec_into(x, &mut ax);
    let res = (0..n).map(|i| (b[i] - ax[i]).powi(2)).sum::<f64>().sqrt() / b_norm;
    Ok(SolveStats {
        iterations: max_iter,
        residual: res,
        converged: res < tol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::cable_laplacian;

    fn spd_system(n: usize) -> (CsrMatrix, Vec<f64>) {
        // I + dt*K: the implicit diffusion matrix.
        let lap = cable_laplacian(n, 1.0);
        let mut t = Vec::new();
        for r in 0..n {
            t.push((r, r, 1.0));
            for c in r.saturating_sub(1)..(r + 2).min(n) {
                let v = lap.get(r, c);
                if v != 0.0 {
                    t.push((r, c, 0.5 * v));
                }
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        (a, b)
    }

    #[test]
    fn cg_converges_on_spd() {
        let (a, b) = spd_system(64);
        let mut x = vec![0.0; 64];
        let stats = cg_solve(&a, &b, &mut x, 1e-12, 500).unwrap();
        assert!(stats.converged, "residual {}", stats.residual);
        let ax = a.mul_vec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn jacobi_converges_slower_than_cg() {
        let (a, b) = spd_system(64);
        let mut xc = vec![0.0; 64];
        let mut xj = vec![0.0; 64];
        let sc = cg_solve(&a, &b, &mut xc, 1e-10, 1000).unwrap();
        let sj = jacobi_solve(&a, &b, &mut xj, 1e-10, 10000).unwrap();
        assert!(sc.converged && sj.converged);
        assert!(
            sc.iterations < sj.iterations,
            "{} vs {}",
            sc.iterations,
            sj.iterations
        );
        for (a_, b_) in xc.iter().zip(&xj) {
            assert!((a_ - b_).abs() < 1e-6);
        }
    }

    #[test]
    fn cg_shape_errors() {
        let (a, b) = spd_system(8);
        let mut x = vec![0.0; 4];
        assert!(cg_solve(&a, &b, &mut x, 1e-10, 10).is_err());
    }

    #[test]
    fn zero_diagonal_rejected() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let mut x = vec![0.0; 2];
        assert!(cg_solve(&a, &[1.0, 1.0], &mut x, 1e-10, 10).is_err());
    }

    #[test]
    fn warm_start_takes_fewer_iterations() {
        let (a, b) = spd_system(64);
        let mut x = vec![0.0; 64];
        let s1 = cg_solve(&a, &b, &mut x, 1e-12, 500).unwrap();
        // Re-solve from the solution: should converge immediately.
        let s2 = cg_solve(&a, &b, &mut x, 1e-12, 500).unwrap();
        assert!(s2.iterations <= 1, "{} vs {}", s1.iterations, s2.iterations);
    }
}
