//! Compressed sparse row matrices.

use std::fmt;

/// An immutable CSR sparse matrix.
///
/// # Examples
///
/// ```
/// use limpet_solver::CsrMatrix;
/// // [2 -1; -1 2]
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)]);
/// let y = m.mul_vec(&[1.0, 1.0]);
/// assert_eq!(y, vec![1.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

/// Error building a matrix from triplets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError(pub String);

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.0)
    }
}

impl std::error::Error for ShapeError {}

impl CsrMatrix {
    /// Builds from `(row, col, value)` triplets; duplicates are summed.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        for &(r, c, _) in &sorted {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
        }
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        // Row pointers by counting, then prefix sums.
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Reads entry `(r, c)` (zero when absent).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        for k in lo..hi {
            if self.col_idx[k] == c {
                return self.values[k];
            }
        }
        0.0
    }

    /// Matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix-vector product into a preallocated buffer.
    #[allow(clippy::needless_range_loop)]
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        for r in 0..self.rows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// The main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }
}

/// Builds the 1-D cable (tridiagonal Laplacian) stiffness matrix with
/// Neumann boundaries: row i has `[-1, 2, -1]` (boundary rows `[1, -1]`),
/// scaled by `sigma`.
pub fn cable_laplacian(n: usize, sigma: f64) -> CsrMatrix {
    let mut t = Vec::with_capacity(3 * n);
    for i in 0..n {
        let mut diag = 0.0;
        if i > 0 {
            t.push((i, i - 1, -sigma));
            diag += sigma;
        }
        if i + 1 < n {
            t.push((i, i + 1, -sigma));
            diag += sigma;
        }
        t.push((i, i, diag));
    }
    CsrMatrix::from_triplets(n, n, &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_round_trip() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 2, 5.0), (2, 1, -2.0)]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(2, 1), -2.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn duplicates_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn empty_rows_ok() {
        let m = CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (3, 3, 1.0)]);
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0, 1.0]), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        assert_eq!(m.mul_vec(&[1.0, 2.0, 3.0]), vec![7.0, 6.0]);
    }

    #[test]
    fn cable_laplacian_rows_sum_to_zero() {
        let m = cable_laplacian(10, 0.5);
        let ones = vec![1.0; 10];
        let y = m.mul_vec(&ones);
        for v in y {
            assert!(v.abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_triplet_panics() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
