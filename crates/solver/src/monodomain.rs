//! Monodomain tissue coupling: the "solver stage" of the two-stage
//! simulation flow (paper §3.1).
//!
//! The monodomain equation `Cm ∂V/∂t = −Iion + ∇·(σ∇V)` is discretized on
//! a 1-D cable with an operator split: the ionic kernel (compute stage)
//! advances cell states and produces `Iion`; this module advances the
//! potential with an implicit diffusion step
//! `(M + dt/Cm · K) V^{n+1} = V^n − dt/Cm · Iion`, solved by CG.

use crate::csr::{cable_laplacian, CsrMatrix};
use crate::linear::{cg_solve, SolveError, SolveStats};

/// An implicit 1-D monodomain diffusion stepper.
///
/// # Examples
///
/// ```
/// use limpet_solver::Monodomain;
/// let mut md = Monodomain::new(64, 0.1, 1.0, 0.01);
/// let mut vm = vec![-85.0; 64];
/// vm[0] = 20.0; // stimulated end
/// let iion = vec![0.0; 64];
/// md.step(&mut vm, &iion).unwrap();
/// // Diffusion pulls the neighbour up and the peak down.
/// assert!(vm[0] < 20.0);
/// assert!(vm[1] > -85.0);
/// ```
#[derive(Debug, Clone)]
pub struct Monodomain {
    n: usize,
    system: CsrMatrix,
    dt_over_cm: f64,
    rhs: Vec<f64>,
    tol: f64,
    max_iter: usize,
    last_stats: Option<SolveStats>,
}

impl Monodomain {
    /// Creates a stepper for `n` cells on a cable with conductivity
    /// `sigma`, membrane capacitance `cm`, and time step `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `cm <= 0`, or `dt <= 0`.
    pub fn new(n: usize, sigma: f64, cm: f64, dt: f64) -> Monodomain {
        assert!(n > 0 && cm > 0.0 && dt > 0.0);
        let dt_over_cm = dt / cm;
        let lap = cable_laplacian(n, sigma);
        // A = I + dt/Cm * K   (symmetric positive definite)
        let mut t = Vec::with_capacity(3 * n);
        for r in 0..n {
            t.push((r, r, 1.0 + dt_over_cm * lap.get(r, r)));
            if r > 0 {
                t.push((r, r - 1, dt_over_cm * lap.get(r, r - 1)));
            }
            if r + 1 < n {
                t.push((r, r + 1, dt_over_cm * lap.get(r, r + 1)));
            }
        }
        Monodomain {
            n,
            system: CsrMatrix::from_triplets(n, n, &t),
            dt_over_cm,
            rhs: vec![0.0; n],
            tol: 1e-10,
            max_iter: 500,
            last_stats: None,
        }
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.n
    }

    /// CG statistics of the most recent step.
    pub fn last_stats(&self) -> Option<SolveStats> {
        self.last_stats
    }

    /// Advances the potential one step in place, given the ionic currents
    /// produced by the compute stage. `vm` is both the previous potential
    /// (input) and the new potential (output) — CG warm-starts from it.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] on shape mismatch or CG breakdown.
    pub fn step(&mut self, vm: &mut [f64], iion: &[f64]) -> Result<SolveStats, SolveError> {
        if vm.len() != self.n || iion.len() != self.n {
            return Err(SolveError(format!(
                "expected {} cells, got vm={} iion={}",
                self.n,
                vm.len(),
                iion.len()
            )));
        }
        for i in 0..self.n {
            self.rhs[i] = vm[i] - self.dt_over_cm * iion[i];
        }
        let rhs = std::mem::take(&mut self.rhs);
        let stats = cg_solve(&self.system, &rhs, vm, self.tol, self.max_iter)?;
        self.rhs = rhs;
        self.last_stats = Some(stats);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resting_tissue_stays_at_rest() {
        let mut md = Monodomain::new(32, 0.2, 1.0, 0.02);
        let mut vm = vec![-85.0; 32];
        let iion = vec![0.0; 32];
        for _ in 0..50 {
            md.step(&mut vm, &iion).unwrap();
        }
        for v in &vm {
            assert!((v + 85.0).abs() < 1e-8);
        }
    }

    #[test]
    fn diffusion_conserves_mean_without_current() {
        let mut md = Monodomain::new(32, 0.3, 1.0, 0.02);
        let mut vm = vec![-85.0; 32];
        vm[16] = 35.0; // single localized spike
        let mean0: f64 = vm.iter().sum::<f64>() / 32.0;
        let iion = vec![0.0; 32];
        for _ in 0..500 {
            md.step(&mut vm, &iion).unwrap();
        }
        let mean1: f64 = vm.iter().sum::<f64>() / 32.0;
        // Neumann boundaries: total charge conserved.
        assert!((mean0 - mean1).abs() < 1e-6, "{mean0} vs {mean1}");
        // And the profile flattens: the 120 mV spike decays to the
        // diffusive Gaussian peak (~120/√(4πDt) ≈ 8 mV at Dt = 3).
        let spread = vm.iter().cloned().fold(f64::MIN, f64::max)
            - vm.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 25.0, "spread {spread}");
    }

    #[test]
    fn inward_current_depolarizes() {
        let mut md = Monodomain::new(16, 0.1, 1.0, 0.05);
        let mut vm = vec![-85.0; 16];
        // Negative Iion = inward (depolarizing) current.
        let iion = vec![-10.0; 16];
        md.step(&mut vm, &iion).unwrap();
        for v in &vm {
            assert!(*v > -85.0);
        }
    }

    #[test]
    fn shape_mismatch_is_error() {
        let mut md = Monodomain::new(16, 0.1, 1.0, 0.05);
        let mut vm = vec![-85.0; 8];
        assert!(md.step(&mut vm, &[0.0; 16]).is_err());
    }

    #[test]
    fn warm_started_cg_is_fast() {
        let mut md = Monodomain::new(128, 0.2, 1.0, 0.01);
        let mut vm = vec![-85.0; 128];
        vm[64] = 30.0;
        let iion = vec![0.0; 128];
        md.step(&mut vm, &iion).unwrap();
        let s = md.last_stats().unwrap();
        assert!(s.converged);
        assert!(s.iterations < 100);
    }
}
