//! §7 extension bench: Catmull-Rom spline LUT interpolation on
//! 4x-coarsened tables vs. linear interpolation on full-resolution tables
//! — the future-work trade-off the paper proposes (same accuracy, quarter
//! of the table memory, four-row stencil reads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_bench::bench_sim;
use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::PipelineKind;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("spline_extension");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let n_cells = 1024;
    for model in ["HodgkinHuxley", "LuoRudy91", "Courtemanche"] {
        for (label, kind) in [
            ("linear", PipelineKind::LimpetMlir(VectorIsa::Avx512)),
            (
                "spline4x",
                PipelineKind::LimpetMlirSpline(VectorIsa::Avx512),
            ),
        ] {
            let mut sim = bench_sim(model, kind, n_cells);
            sim.run(2);
            g.bench_with_input(BenchmarkId::new(label, model), &(), |b, ()| {
                b.iter(|| sim.step());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
