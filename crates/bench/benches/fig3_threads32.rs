//! Figure 3 bench: the per-thread shard work at 32 threads. Each thread of
//! the paper's 32-core run processes `n_cells / 32` cells per step; this
//! bench measures exactly that shard under both pipelines, per class. The
//! `figures --fig3` binary composes these with the parallel timing model
//! (barrier + bandwidth terms) into the full figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_bench::bench_sim;
use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::PipelineKind;
use std::time::Duration;

const THREADS: usize = 32;
const TOTAL_CELLS: usize = 8192;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_shard32");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let shard = TOTAL_CELLS / THREADS; // 256 cells per thread
    for model in ["Plonsey", "Courtemanche", "OHara"] {
        for (label, kind) in [
            ("baseline", PipelineKind::Baseline),
            (
                "limpetMLIR-AVX512",
                PipelineKind::LimpetMlir(VectorIsa::Avx512),
            ),
        ] {
            let mut sim = bench_sim(model, kind, shard);
            sim.run(2);
            g.bench_with_input(BenchmarkId::new(label, model), &(), |b, ()| {
                b.iter(|| sim.step());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
