//! §4.4 bench: the data-layout transformation (AoS vs. AoSoA) at AVX-512.
//! The paper reports the effect is strongest on models that "access more
//! memory (state value)" — so this bench uses large many-state models
//! (including Stress_Niederer, the model §4.4 quotes at 4.98x → 6.03x)
//! plus a small model where the effect should be negligible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_bench::bench_sim;
use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::PipelineKind;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("layout_ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let n_cells = 4096; // larger population: layout effects need traffic
    for model in ["Plonsey", "Stress_Niederer", "IyerMazhariWinslow"] {
        for (label, kind) in [
            ("AoS", PipelineKind::LimpetMlirAos(VectorIsa::Avx512)),
            ("AoSoA", PipelineKind::LimpetMlir(VectorIsa::Avx512)),
        ] {
            let mut sim = bench_sim(model, kind, n_cells);
            sim.run(2);
            g.bench_with_input(BenchmarkId::new(label, model), &(), |b, ()| {
                b.iter(|| sim.step());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
