//! FMA-contraction ablation: the pipeline with and without the
//! multiply-add fusion pass, on current-sum-heavy models. Fused ops halve
//! dispatch for the a·b+c chains that dominate ionic current summation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_codegen::pipeline::{Layout, VectorIsa};
use limpet_harness::model_info;
use limpet_vm::{Kernel, SimContext};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fma_ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let n_cells = 2048;
    for model_name in ["BeelerReuter", "OHara"] {
        let model = limpet_models::model(model_name);
        let info = model_info(&model);

        // With contraction (the standard pipeline).
        let with = limpet_codegen::pipeline::limpet_mlir(
            &model,
            VectorIsa::Avx512,
            Layout::AoSoA { block: 8 },
        )
        .module;

        // Without: rebuild the pipeline minus FmaContract.
        let mut without =
            limpet_codegen::lower_model(&model, &limpet_codegen::CodegenOptions { use_lut: true })
                .module;
        {
            use limpet_passes::*;
            let mut pm = PassManager::new();
            pm.add(ConstProp)
                .add(Canonicalize)
                .add(Cse)
                .add(Licm)
                .add(Dce)
                .add(Vectorize::new(8));
            pm.add(Cse);
            pm.add(Dce);
            pm.run(&mut without).expect("pipeline runs");
            without.attrs.set("layout", "aosoa8");
        }

        for (label, module) in [("fused", &with), ("unfused", &without)] {
            let kernel = Kernel::from_module(module, &info).unwrap();
            let mut st = kernel.new_states(n_cells, limpet_vm::StateLayout::AoSoA { block: 8 });
            let mut ext = kernel.new_ext(n_cells);
            let mut t = 0.0;
            g.bench_with_input(BenchmarkId::new(label, model_name), &(), |b, ()| {
                b.iter(|| {
                    kernel.run_step(&mut st, &mut ext, None, SimContext { dt: 0.01, t });
                    t += 0.01;
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
