//! Real-thread pool bench: the persistent worker pool's step loop at
//! small thread counts versus the single-thread driver on the same
//! workload. Pool construction (thread spawn) happens once outside the
//! timed region, so the measurement isolates the barrier-separated step
//! loop itself — the quantity `figures --real-threads` reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use limpet_bench::bench_sim;
use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::{PipelineKind, ShardedSimulation, Workload};
use std::time::Duration;

const CELLS: usize = 1024;
const STEPS: usize = 16;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("real_threads");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    let config = PipelineKind::LimpetMlir(VectorIsa::Avx512);
    for model in ["Plonsey", "BeelerReuter", "OHara"] {
        g.throughput(Throughput::Elements((CELLS * STEPS) as u64));
        let mut single = bench_sim(model, config, CELLS);
        single.run(2);
        g.bench_with_input(BenchmarkId::new("single", model), &(), |b, ()| {
            b.iter(|| single.run(STEPS))
        });
        for threads in [2usize, 4] {
            let m = limpet_models::model(model);
            let wl = Workload {
                n_cells: CELLS,
                steps: 0,
                dt: 0.01,
            };
            let mut sharded = ShardedSimulation::new(&m, config, &wl, threads);
            sharded.run_threaded(2);
            g.bench_with_input(
                BenchmarkId::new(format!("pool-t{threads}"), model),
                &(),
                |b, ()| b.iter(|| sharded.run_threaded(STEPS)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
