//! If-conversion cost bench — the trade-off the paper's §5 discussion
//! calls out: "the vectorization of an if/else condition requires both
//! blocks to be executed and element-wise selected according to a mask,
//! which may lead to performance degradation in large portions of
//! conditional code."
//!
//! Three synthetic models with identical total work but different branch
//! structure:
//! * `branchless` — all math unconditional;
//! * `light_branch` — a small conditional (cheap either way);
//! * `heavy_branch` — two large, disjoint transcendental bodies. The
//!   scalar baseline executes ONE side per cell; the vectorized kernel
//!   executes BOTH and selects, so its advantage shrinks — exactly the
//!   §5 caveat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::{PipelineKind, Simulation, Workload};
use std::time::Duration;

fn heavy_body(side: &str, n_terms: usize) -> String {
    // A chain of transcendental terms, distinct per side.
    let mut s = String::new();
    for i in 0..n_terms {
        let c = 1.0 + i as f64 * 0.37;
        s.push_str(&format!("exp(-square(Vm {side} {c:.2}) / 900.0) + "));
    }
    s.push_str("0.0");
    s
}

fn model_src(kind: &str) -> String {
    let body = match kind {
        "branchless" => format!("w = {};\n", heavy_body("+", 8)),
        "light_branch" => "if (Vm > 0.0) { w = Vm / 50.0; } else { w = -Vm / 80.0; }\n".to_string(),
        _ => format!(
            "if (Vm > 0.0) {{ w = {}; }} else {{ w = {}; }}\n",
            heavy_body("+", 8),
            heavy_body("-", 8)
        ),
    };
    format!(
        "Vm; .external();\nIion; .external();\n\
         diff_x = (0.5 - x) / 10.0;\n{body}Iion = 0.1 * w * x * (Vm + 80.0);"
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("if_conversion");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let n_cells = 2048;
    for kind in ["branchless", "light_branch", "heavy_branch"] {
        let model = limpet_easyml::compile_model(kind, &model_src(kind)).unwrap();
        for (label, config) in [
            ("baseline", PipelineKind::Baseline),
            ("limpetMLIR", PipelineKind::LimpetMlir(VectorIsa::Avx512)),
        ] {
            let wl = Workload {
                n_cells,
                steps: 0,
                dt: 0.01,
            };
            let mut sim = Simulation::new(&model, config, &wl);
            // Spread Vm across the branch threshold so both sides matter.
            for cell in 0..n_cells {
                sim.perturb_vm(cell, (cell as f64 % 100.0) - 50.0);
            }
            sim.run(2);
            g.bench_with_input(BenchmarkId::new(label, kind), &(), |b, ()| {
                b.iter(|| sim.step());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
