//! Figure 5 bench: the three vector ISAs (SSE = 2 lanes, AVX2 = 4,
//! AVX-512 = 8) against the scalar baseline on one model per class —
//! criterion-grade evidence for the ISA ordering the figure reports
//! (speedup of AVX-512 > AVX2 > SSE).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_bench::bench_sim;
use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::PipelineKind;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_isa");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let n_cells = 1024;
    for model in ["Plonsey", "LuoRudy91", "WangSobie"] {
        let configs = [
            ("scalar".to_owned(), PipelineKind::Baseline),
            ("SSE".to_owned(), PipelineKind::LimpetMlir(VectorIsa::Sse)),
            ("AVX2".to_owned(), PipelineKind::LimpetMlir(VectorIsa::Avx2)),
            (
                "AVX-512".to_owned(),
                PipelineKind::LimpetMlir(VectorIsa::Avx512),
            ),
        ];
        for (label, kind) in configs {
            let mut sim = bench_sim(model, kind, n_cells);
            sim.run(2);
            g.bench_with_input(BenchmarkId::new(label, model), &(), |b, ()| {
                b.iter(|| sim.step());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
