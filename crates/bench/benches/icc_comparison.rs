//! §5 bench: the "compiler auto-vectorization" configuration (modeled on
//! icc with `omp simd`: vector arithmetic, scalar LUT calls, AoS layout)
//! vs. full limpetMLIR. The paper reports icc reaches 2.19x geomean where
//! limpetMLIR reaches 3.37x — the gap that motivates intrinsic (not
//! best-effort) vectorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_bench::bench_sim;
use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::PipelineKind;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("icc_comparison");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let n_cells = 1024;
    for model in ["HodgkinHuxley", "DrouhardRoberge", "OHara"] {
        let configs = [
            ("baseline", PipelineKind::Baseline),
            (
                "compiler-simd",
                PipelineKind::CompilerSimd(VectorIsa::Avx512),
            ),
            ("limpetMLIR", PipelineKind::LimpetMlir(VectorIsa::Avx512)),
        ];
        for (label, kind) in configs {
            let mut sim = bench_sim(model, kind, n_cells);
            sim.run(2);
            g.bench_with_input(BenchmarkId::new(label, model), &(), |b, ()| {
                b.iter(|| sim.step());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
