//! §3.4.2 bench: lookup tables off / scalar interpolation / vectorized
//! interpolation. The paper reports LUTs give >6x over non-LUT versions,
//! and that leaving the interpolation scalar "degrades speedup
//! considerably" — the motivation for the vectorized
//! `LUT_interpRow_n_elements` implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_bench::bench_sim;
use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::PipelineKind;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("lut_ablation");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let n_cells = 1024;
    // Rate-table-heavy classics: LUTs elide most transcendentals.
    for model in ["HodgkinHuxley", "BeelerReuter", "LuoRudy91"] {
        let configs = [
            ("noLUT", PipelineKind::LimpetMlirNoLut(VectorIsa::Avx512)),
            ("scalarLUT", PipelineKind::CompilerSimd(VectorIsa::Avx512)),
            ("vectorLUT", PipelineKind::LimpetMlir(VectorIsa::Avx512)),
        ];
        for (label, kind) in configs {
            let mut sim = bench_sim(model, kind, n_cells);
            sim.run(2);
            g.bench_with_input(BenchmarkId::new(label, model), &(), |b, ()| {
                b.iter(|| sim.step());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
