//! Figure 6 bench: the two machine ceilings of the roofline model,
//! measured ERT-style (the paper uses the Empirical Roofline Tool):
//! peak floating-point throughput via an unrolled FMA loop, and memory
//! bandwidth via a stream triad. The `figures --roofline` binary combines
//! these ceilings with per-model operational-intensity points.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_ceilings");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));

    // Peak compute: 8 independent FMA chains.
    let fma_iters = 100_000u64;
    g.throughput(Throughput::Elements(fma_iters * 8 * 2));
    g.bench_function("peak_fma_flops", |b| {
        b.iter(|| {
            let mut acc = [1.0f64, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7];
            for _ in 0..fma_iters {
                for v in acc.iter_mut() {
                    *v = v.mul_add(1.000_000_1, 1e-9);
                }
            }
            std::hint::black_box(acc)
        });
    });

    // Memory bandwidth: stream triad over a buffer past the LLC.
    let n = 1 << 21; // 2M doubles = 16 MiB
    let a = vec![1.0f64; n];
    let bv = vec![2.0f64; n];
    let mut cvec = vec![0.0f64; n];
    g.throughput(Throughput::Bytes((n * 24) as u64));
    g.bench_function("stream_triad", |b| {
        b.iter(|| {
            for i in 0..n {
                cvec[i] = a[i] + 0.5 * bv[i];
            }
            std::hint::black_box(&cvec);
        });
    });

    // One memory-bound and one compute-bound kernel point for contrast
    // (DrouhardRoberge vs GrandiPanditVoigt, as in the figure).
    for model in ["DrouhardRoberge", "GrandiPanditVoigt"] {
        let mut sim = limpet_bench::bench_sim(
            model,
            limpet_harness::PipelineKind::LimpetMlir(limpet_codegen::pipeline::VectorIsa::Avx512),
            1024,
        );
        sim.run(2);
        g.bench_function(format!("kernel_point/{model}"), |b| {
            b.iter(|| sim.step());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
