//! Figure 4 bench: per-thread shard work across the paper's thread counts
//! (1, 2, 4, 8, 16, 32), one representative model per class. Shard size =
//! total cells / threads, so the series shows how per-thread work shrinks
//! — the compute-side ingredient of Fig. 4's scaling curves (the harness
//! adds the synchronization and bandwidth terms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use limpet_bench::bench_sim;
use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::PipelineKind;
use std::time::Duration;

const TOTAL_CELLS: usize = 4096;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_scaling");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for (class, model) in [
        ("small", "Plonsey"),
        ("medium", "BeelerReuter"),
        ("large", "OHara"),
    ] {
        for threads in [1usize, 4, 16, 32] {
            let shard = (TOTAL_CELLS / threads).max(8);
            g.throughput(Throughput::Elements(shard as u64));
            let mut sim = bench_sim(model, PipelineKind::LimpetMlir(VectorIsa::Avx512), shard);
            sim.run(2);
            g.bench_with_input(
                BenchmarkId::new(format!("{class}-{model}"), threads),
                &(),
                |b, ()| b.iter(|| sim.step()),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
