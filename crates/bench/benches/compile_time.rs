//! Compiler-stage bench (supplementary): how long each stage of the
//! limpetMLIR pipeline takes — frontend, lowering, optimization passes,
//! vectorization, and bytecode emission — on a small and a large model.
//! The paper's flow runs at model-build time, so compile speed bounds the
//! edit-run loop of model developers.
//!
//! The `kernel_cold` / `kernel_warm` pair measures kernel *acquisition*
//! through the compilation service: cold is a full compile (lowering +
//! bytecode + LUT tabulation), warm is a cache lookup that clones the
//! `Arc`-shared kernel. Warm should be several orders of magnitude
//! faster — that gap is what the cache saves on every repeated
//! `(model, config)` use across the figure runners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_codegen::pipeline::{limpet_mlir, Layout, VectorIsa};
use limpet_codegen::{lower_model, CodegenOptions};
use limpet_harness::{model_info, KernelCache, PipelineKind};
use limpet_vm::Kernel;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_time");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for name in ["HodgkinHuxley", "OHara"] {
        let src = limpet_models::source(name);
        g.bench_with_input(BenchmarkId::new("frontend", name), &(), |b, ()| {
            b.iter(|| limpet_easyml::compile_model(name, &src).unwrap());
        });
        let model = limpet_models::model(name);
        g.bench_with_input(BenchmarkId::new("lowering", name), &(), |b, ()| {
            b.iter(|| lower_model(&model, &CodegenOptions::default()));
        });
        g.bench_with_input(BenchmarkId::new("full_pipeline", name), &(), |b, ()| {
            b.iter(|| limpet_mlir(&model, VectorIsa::Avx512, Layout::AoSoA { block: 8 }));
        });
        let module = limpet_mlir(&model, VectorIsa::Avx512, Layout::AoSoA { block: 8 }).module;
        let info = model_info(&model);
        g.bench_with_input(BenchmarkId::new("bytecode+luts", name), &(), |b, ()| {
            b.iter(|| Kernel::from_module(&module, &info).unwrap());
        });

        // Kernel acquisition: cold (full compile, cache bypassed via a
        // fresh per-iteration miss) vs. warm (hit on a populated cache).
        let config = PipelineKind::LimpetMlir(VectorIsa::Avx512);
        g.bench_with_input(BenchmarkId::new("kernel_cold", name), &(), |b, ()| {
            b.iter(|| {
                let cache = KernelCache::new();
                cache.get_or_compile(&model, config)
            });
        });
        let warm_cache = KernelCache::new();
        warm_cache.get_or_compile(&model, config);
        g.bench_with_input(BenchmarkId::new("kernel_warm", name), &(), |b, ()| {
            b.iter(|| warm_cache.get_or_compile(&model, config));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
