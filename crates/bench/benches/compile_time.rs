//! Compiler-stage bench (supplementary): how long each stage of the
//! limpetMLIR pipeline takes — frontend, lowering, optimization passes,
//! vectorization, and bytecode emission — on a small and a large model.
//! The paper's flow runs at model-build time, so compile speed bounds the
//! edit-run loop of model developers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_codegen::pipeline::{limpet_mlir, Layout, VectorIsa};
use limpet_codegen::{lower_model, CodegenOptions};
use limpet_harness::model_info;
use limpet_vm::Kernel;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_time");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for name in ["HodgkinHuxley", "OHara"] {
        let src = limpet_models::source(name);
        g.bench_with_input(BenchmarkId::new("frontend", name), &(), |b, ()| {
            b.iter(|| limpet_easyml::compile_model(name, &src).unwrap());
        });
        let model = limpet_models::model(name);
        g.bench_with_input(BenchmarkId::new("lowering", name), &(), |b, ()| {
            b.iter(|| lower_model(&model, &CodegenOptions::default()));
        });
        g.bench_with_input(BenchmarkId::new("full_pipeline", name), &(), |b, ()| {
            b.iter(|| limpet_mlir(&model, VectorIsa::Avx512, Layout::AoSoA { block: 8 }));
        });
        let module = limpet_mlir(&model, VectorIsa::Avx512, Layout::AoSoA { block: 8 }).module;
        let info = model_info(&model);
        g.bench_with_input(BenchmarkId::new("bytecode+luts", name), &(), |b, ()| {
            b.iter(|| Kernel::from_module(&module, &info).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
