//! Compiler-stage bench (supplementary): how long each stage of the
//! limpetMLIR pipeline takes — frontend, lowering, optimization passes,
//! vectorization, and bytecode emission — on a small and a large model.
//! The paper's flow runs at model-build time, so compile speed bounds the
//! edit-run loop of model developers.
//!
//! The `kernel_*` trio measures kernel *acquisition* through the
//! compilation service, one row per cache tier (they used to be
//! conflated into a single "warm" row): `kernel_cold_compile` is a full
//! compile (lowering + bytecode + LUT tabulation), `kernel_memory_hit`
//! is an in-process lookup that clones the `Arc`-shared kernel, and
//! `kernel_disk_hit` is a reload + integrity-check + re-verify of a
//! persisted on-disk entry — the first-lookup cost a warm second
//! process pays per kernel. Expect memory ≪ disk ≪ cold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_codegen::pipeline::{limpet_mlir, Layout, VectorIsa};
use limpet_codegen::{lower_model, CodegenOptions};
use limpet_harness::{model_info, DiskCache, KernelCache, PipelineKind};
use limpet_vm::Kernel;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_time");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for name in ["HodgkinHuxley", "OHara"] {
        let src = limpet_models::source(name);
        g.bench_with_input(BenchmarkId::new("frontend", name), &(), |b, ()| {
            b.iter(|| limpet_easyml::compile_model(name, &src).unwrap());
        });
        let model = limpet_models::model(name);
        g.bench_with_input(BenchmarkId::new("lowering", name), &(), |b, ()| {
            b.iter(|| lower_model(&model, &CodegenOptions::default()));
        });
        g.bench_with_input(BenchmarkId::new("full_pipeline", name), &(), |b, ()| {
            b.iter(|| limpet_mlir(&model, VectorIsa::Avx512, Layout::AoSoA { block: 8 }));
        });
        let module = limpet_mlir(&model, VectorIsa::Avx512, Layout::AoSoA { block: 8 }).module;
        let info = model_info(&model);
        g.bench_with_input(BenchmarkId::new("bytecode+luts", name), &(), |b, ()| {
            b.iter(|| Kernel::from_module(&module, &info).unwrap());
        });

        // Kernel acquisition, one row per cache tier: cold compile
        // (per-iteration fresh cache, no disk), memory hit (populated
        // in-process map), disk hit (per-iteration fresh process-cache
        // backed by a pre-populated disk entry).
        let config = PipelineKind::LimpetMlir(VectorIsa::Avx512);
        g.bench_with_input(
            BenchmarkId::new("kernel_cold_compile", name),
            &(),
            |b, ()| {
                b.iter(|| {
                    let cache = KernelCache::new();
                    cache.get_or_compile(&model, config)
                });
            },
        );
        let warm_cache = KernelCache::new();
        warm_cache.get_or_compile(&model, config);
        g.bench_with_input(BenchmarkId::new("kernel_memory_hit", name), &(), |b, ()| {
            b.iter(|| warm_cache.get_or_compile(&model, config));
        });
        let disk_dir =
            std::env::temp_dir().join(format!("limpet-bench-disk-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&disk_dir);
        let disk = Arc::new(DiskCache::open(&disk_dir).expect("temp cache dir"));
        {
            // Populate the disk entry once (a cold compile + store).
            let seeder = KernelCache::new();
            seeder.set_disk_cache(Some(Arc::clone(&disk)));
            seeder.get_or_compile(&model, config);
        }
        g.bench_with_input(BenchmarkId::new("kernel_disk_hit", name), &(), |b, ()| {
            b.iter(|| {
                // A fresh in-process cache each iteration forces every
                // lookup down to the disk tier, as a new process would.
                let cache = KernelCache::new();
                cache.set_disk_cache(Some(Arc::clone(&disk)));
                cache.get_or_compile(&model, config)
            });
        });
        let _ = std::fs::remove_dir_all(&disk_dir);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
