//! Figure 2 bench: single-thread baseline vs. limpetMLIR (AVX-512) kernel
//! step time, one representative model per size class plus the
//! figure-visible outliers. The `figures --fig2` binary produces the full
//! 43-model series; this bench gives criterion-grade statistics on the
//! kernels behind it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use limpet_bench::bench_sim;
use limpet_codegen::pipeline::VectorIsa;
use limpet_harness::PipelineKind;
use std::time::Duration;

const MODELS: [&str; 6] = [
    "Plonsey",           // small
    "ISAC_Hu",           // small, LUT-free math-heavy outlier
    "HodgkinHuxley",     // medium (classic)
    "Courtemanche",      // medium
    "OHara",             // large
    "GrandiPanditVoigt", // large, most compute-bound (Fig. 6)
];

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900));
    let n_cells = 1024;
    for model in MODELS {
        for (label, kind) in [
            ("baseline", PipelineKind::Baseline),
            (
                "limpetMLIR-AVX512",
                PipelineKind::LimpetMlir(VectorIsa::Avx512),
            ),
        ] {
            let mut sim = bench_sim(model, kind, n_cells);
            sim.run(2);
            g.bench_with_input(BenchmarkId::new(label, model), &(), |b, ()| {
                b.iter(|| sim.step());
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
