//! # limpet-bench
//!
//! Criterion benchmarks regenerating every table and figure of the paper —
//! see the `benches/` directory. This library only hosts shared helpers.

#![warn(missing_docs)]

use limpet_harness::{PipelineKind, Simulation, Workload};

/// Builds a ready-to-run simulation for benchmarking.
pub fn bench_sim(model_name: &str, config: PipelineKind, n_cells: usize) -> Simulation {
    let m = limpet_models::model(model_name);
    let wl = Workload {
        n_cells,
        steps: 0,
        dt: 0.01,
    };
    Simulation::new(&m, config, &wl)
}
