//! Loading and exporting `.model` files.
//!
//! openCARP models live in `physics/limpet/models/*.model` and the paper's
//! artifact tells users to add their own files there (§A.7). This module
//! gives limpet-rs the same workflow: load any EasyML `.model` file from
//! disk, or export the built-in 43-model roster as a directory of `.model`
//! files for inspection and editing.

use crate::registry::{source, ROSTER};
use limpet_easyml::Model;
use std::fmt;
use std::path::Path;

/// An error loading a model file.
#[derive(Debug)]
pub enum LoadError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file failed to parse or analyze.
    Compile(Box<dyn std::error::Error>),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Compile(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads and analyzes an EasyML `.model` file; the model name is the file
/// stem.
///
/// # Errors
///
/// Returns [`LoadError::Io`] when the file cannot be read and
/// [`LoadError::Compile`] when its contents are not a valid model.
///
/// # Examples
///
/// ```no_run
/// let model = limpet_models::load_file("my_model.model")?;
/// println!("{} states", model.states.len());
/// # Ok::<(), limpet_models::LoadError>(())
/// ```
pub fn load_file(path: impl AsRef<Path>) -> Result<Model, LoadError> {
    let path = path.as_ref();
    let src = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("model")
        .to_owned();
    limpet_easyml::compile_model(&name, &src).map_err(LoadError::Compile)
}

/// Writes every roster model's EasyML source as `<name>.model` into `dir`
/// (created if needed). Returns the number of files written.
///
/// # Errors
///
/// Returns the first filesystem error encountered.
pub fn export_roster(dir: impl AsRef<Path>) -> std::io::Result<usize> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for e in &ROSTER {
        std::fs::write(dir.join(format!("{}.model", e.name)), source(e.name))?;
    }
    Ok(ROSTER.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("limpet-models-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn export_then_load_round_trips_all_43() {
        let dir = tmpdir("roundtrip");
        assert_eq!(export_roster(&dir).unwrap(), 43);
        for e in &ROSTER {
            let m = load_file(dir.join(format!("{}.model", e.name)))
                .unwrap_or_else(|err| panic!("{}: {err}", e.name));
            assert_eq!(m.name, e.name);
            let reference = crate::registry::model(e.name);
            assert_eq!(m.states.len(), reference.states.len(), "{}", e.name);
            assert_eq!(m.stmts.len(), reference.stmts.len(), "{}", e.name);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_file("/nonexistent/nothing.model").unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }

    #[test]
    fn load_invalid_model_is_compile_error() {
        let dir = tmpdir("invalid");
        let p = dir.join("bad.model");
        std::fs::write(&p, "diff_x = undefined_name;").unwrap();
        let err = load_file(&p).unwrap_err();
        assert!(matches!(err, LoadError::Compile(_)));
        assert!(err.to_string().contains("undefined"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_name_comes_from_file_stem() {
        let dir = tmpdir("stem");
        let p = dir.join("MyCustomModel.model");
        std::fs::write(&p, "diff_x = -x;").unwrap();
        let m = load_file(&p).unwrap();
        assert_eq!(m.name, "MyCustomModel");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
