//! Calibrated synthetic ionic models.
//!
//! openCARP ships 43 `.model` files; the paper's figures depend on their
//! *size classes* (small / medium / large, §4.1), not on the exact
//! physiology. For the 33 models we do not transcribe by hand, this module
//! generates EasyML sources with a deterministic (name-seeded) structure
//! whose knobs — state count, gate count, transcendental-call mix, LUT
//! usage, conditional branches — are calibrated per class. DESIGN.md §3
//! documents the substitution.
//!
//! Every generated equation is a bounded form (Hodgkin–Huxley-style gates,
//! relaxation toward sigmoidal targets), so simulations remain stable over
//! arbitrarily many steps for any `Vm ∈ [-100, 100]`.

use limpet_rng::SmallRng;
use std::fmt::Write;

/// Structural knobs for one synthetic model.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthSpec {
    /// Model name (also the RNG seed).
    pub name: String,
    /// Alpha/beta gates (Rush-Larsen / Sundnes integrated).
    pub n_gates: usize,
    /// Relaxation states `x' = (x_inf − x)/τ` (fe / rk2 / rk4 mix).
    pub n_relax: usize,
    /// Markov-style occupancy states (`markov_be` integrated).
    pub n_markov: usize,
    /// Algebraic cascade intermediates combined into currents.
    pub n_algebraic: usize,
    /// `if (Vm > θ) … else …` blocks.
    pub n_branches: usize,
    /// Emit a `.lookup()` markup on Vm.
    pub use_lut: bool,
    /// Add `pow`/`log` terms on *state-dependent* expressions, which
    /// cannot be tabulated (the ISAC_Hu pattern of paper §4.1).
    pub math_heavy: bool,
}

impl SynthSpec {
    /// Derives a deterministic RNG for this spec (FNV-1a over the name:
    /// stable across platforms and runs).
    fn rng(&self) -> SmallRng {
        SmallRng::seed_from_str(&self.name)
    }
}

/// Generates the EasyML source for a spec.
pub fn generate(spec: &SynthSpec) -> String {
    let mut rng = spec.rng();
    let mut s = String::with_capacity(4096);
    writeln!(
        s,
        "# synthetic model {} (see DESIGN.md section 3)",
        spec.name
    )
    .unwrap();
    write!(s, "Vm; .external(); .nodal();").unwrap();
    if spec.use_lut {
        write!(s, " .lookup(-100, 100, 0.05);").unwrap();
    }
    writeln!(s).unwrap();
    writeln!(s, "Iion; .external(); .nodal();").unwrap();
    writeln!(s, "Vm_init = -85.0;").unwrap();

    // Parameters: one conductance per current term plus assorted scales.
    let n_currents = (spec.n_gates + spec.n_relax + spec.n_markov).clamp(2, 12);
    write!(s, "group{{").unwrap();
    for i in 0..n_currents {
        let g: f64 = rng.gen_range(0.02..0.6);
        let e: f64 = rng.gen_range(-95.0..60.0);
        write!(s, " gc{i} = {g:.4}; er{i} = {e:.2};").unwrap();
    }
    writeln!(s, " scale = {:.3}; }}.param();", rng.gen_range(0.5..1.5)).unwrap();

    let mut states: Vec<String> = Vec::new();

    // Alpha/beta gates.
    for i in 0..spec.n_gates {
        let name = format!("g{i}");
        let (c1, k1) = (rng.gen_range(0.01..0.5), rng.gen_range(12.0..60.0));
        let (c2, k2) = (rng.gen_range(0.01..0.5), rng.gen_range(12.0..60.0));
        let v0 = rng.gen_range(-60.0..0.0);
        writeln!(s, "a_{name} = {c1:.4} * exp((Vm - {v0:.2}) / {k1:.2});").unwrap();
        writeln!(s, "b_{name} = {c2:.4} * exp(-(Vm - {v0:.2}) / {k2:.2});").unwrap();
        writeln!(
            s,
            "diff_{name} = a_{name} * (1.0 - {name}) - b_{name} * {name};"
        )
        .unwrap();
        writeln!(s, "{name}_init = {:.3};", rng.gen_range(0.01..0.99)).unwrap();
        let method = if rng.gen_bool(0.7) {
            "rush_larsen"
        } else {
            "sundnes"
        };
        writeln!(s, "{name};.method({method});").unwrap();
        states.push(name);
    }

    // Relaxation states toward sigmoidal targets with bell-shaped taus.
    for i in 0..spec.n_relax {
        let name = format!("r{i}");
        let v0 = rng.gen_range(-70.0..10.0);
        let k = rng.gen_range(4.0..18.0);
        let t0 = rng.gen_range(1.0..40.0);
        let t1 = rng.gen_range(1.0..120.0);
        let tw = rng.gen_range(200.0..1200.0);
        writeln!(
            s,
            "{name}_inf = 1.0 / (1.0 + exp(-(Vm - {v0:.2}) / {k:.2}));"
        )
        .unwrap();
        writeln!(
            s,
            "tau_{name} = {t0:.2} + {t1:.2} * exp(-square(Vm - {v0:.2}) / {tw:.1});"
        )
        .unwrap();
        writeln!(s, "diff_{name} = ({name}_inf - {name}) / tau_{name};").unwrap();
        writeln!(s, "{name}_init = {:.3};", rng.gen_range(0.01..0.99)).unwrap();
        let method = match rng.gen_range(0..10) {
            0..=5 => "fe",
            6..=7 => "rk2",
            8 => "rk4",
            _ => "rush_larsen",
        };
        writeln!(s, "{name};.method({method});").unwrap();
        states.push(name);
    }

    // Markov occupancy states.
    for i in 0..spec.n_markov {
        let name = format!("z{i}");
        let (c1, k1) = (rng.gen_range(0.02..0.3), rng.gen_range(15.0..50.0));
        let c2: f64 = rng.gen_range(0.02..0.3);
        writeln!(s, "ron_{name} = {c1:.4} * exp(Vm / {k1:.2});").unwrap();
        writeln!(
            s,
            "diff_{name} = ron_{name} * (1.0 - {name}) - {c2:.4} * {name};"
        )
        .unwrap();
        writeln!(s, "{name}_init = {:.3};", rng.gen_range(0.05..0.5)).unwrap();
        writeln!(s, "{name};.method(markov_be);").unwrap();
        states.push(name);
    }

    // Conditional blocks (SIMD-unfriendly control flow, §5).
    let mut branch_vars: Vec<String> = Vec::new();
    for i in 0..spec.n_branches {
        let name = format!("q{i}");
        let theta = rng.gen_range(-40.0..20.0);
        let st = &states[rng.gen_range(0..states.len().max(1)) % states.len().max(1)];
        writeln!(s, "if (Vm > {theta:.2}) {{").unwrap();
        writeln!(
            s,
            "    {name} = {:.3} * {st} * (Vm - {theta:.2}) / 50.0;",
            rng.gen_range(0.1..1.0)
        )
        .unwrap();
        writeln!(s, "}} else {{").unwrap();
        writeln!(s, "    {name} = {:.3} * {st};", rng.gen_range(0.0..0.5)).unwrap();
        writeln!(s, "}}").unwrap();
        branch_vars.push(name);
    }

    // Algebraic cascade: bounded combinations with math calls.
    let mut algebraics: Vec<String> = Vec::new();
    for i in 0..spec.n_algebraic {
        let name = format!("w{i}");
        let a = &states[rng.gen_range(0..states.len())];
        let b = &states[rng.gen_range(0..states.len())];
        let prev: Option<&String> = if algebraics.is_empty() || rng.gen_bool(0.5) {
            None
        } else {
            Some(&algebraics[rng.gen_range(0..algebraics.len())])
        };
        let mut expr = match rng.gen_range(0..4) {
            0 => format!("{a} * {b}"),
            1 => format!("tanh({a} + {b})"),
            2 => format!("square({a}) * {b}"),
            _ => format!("{a} * (1.0 - {b})"),
        };
        if let Some(p) = prev {
            expr = format!("0.5 * ({expr}) + 0.5 * {p} * {a}");
        }
        if spec.math_heavy {
            // State-dependent transcendentals: not LUT-tabulatable.
            expr = match rng.gen_range(0..3) {
                0 => format!("({expr}) * pow(1.0 + square({a}), 0.31)"),
                1 => format!("({expr}) + 0.01 * log(1.0 + square({b}))"),
                _ => format!("({expr}) * exp(-square({a} - {b}))"),
            };
        }
        writeln!(s, "{name} = {expr};").unwrap();
        algebraics.push(name);
    }

    // Current sum: each current gates a driving force.
    write!(s, "Iion = scale * (").unwrap();
    for i in 0..n_currents {
        if i > 0 {
            write!(s, " + ").unwrap();
        }
        let gate = if !algebraics.is_empty() && rng.gen_bool(0.6) {
            algebraics[rng.gen_range(0..algebraics.len())].clone()
        } else {
            states[rng.gen_range(0..states.len())].clone()
        };
        write!(s, "gc{i} * {gate} * (Vm - er{i})").unwrap();
    }
    for q in &branch_vars {
        write!(s, " + {q}").unwrap();
    }
    writeln!(s, ");").unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use limpet_easyml::compile_model;

    fn spec(name: &str) -> SynthSpec {
        SynthSpec {
            name: name.into(),
            n_gates: 4,
            n_relax: 5,
            n_markov: 1,
            n_algebraic: 8,
            n_branches: 2,
            use_lut: true,
            math_heavy: false,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&spec("Courtemanche"));
        let b = generate(&spec("Courtemanche"));
        assert_eq!(a, b);
        let c = generate(&spec("Maleckar"));
        assert_ne!(a, c, "different names must differ");
    }

    #[test]
    fn generated_models_compile() {
        for name in ["A", "B", "C", "OHara", "WangSobie"] {
            let src = generate(&spec(name));
            let m =
                compile_model(name, &src).unwrap_or_else(|e| panic!("{name} failed:\n{e}\n{src}"));
            assert_eq!(m.states.len(), 10); // 4 gates + 5 relax + 1 markov
            assert!(m.external("Iion").unwrap().assigned);
            assert!(m.lookup("Vm").is_some());
        }
    }

    #[test]
    fn knobs_scale_complexity() {
        let small = SynthSpec {
            n_gates: 1,
            n_relax: 1,
            n_markov: 0,
            n_algebraic: 2,
            n_branches: 0,
            ..spec("S")
        };
        let large = SynthSpec {
            n_gates: 10,
            n_relax: 15,
            n_markov: 2,
            n_algebraic: 30,
            n_branches: 3,
            ..spec("L")
        };
        let ms = compile_model("S", &generate(&small)).unwrap();
        let ml = compile_model("L", &generate(&large)).unwrap();
        assert!(ml.complexity() > 4 * ms.complexity());
        assert!(ml.states.len() > 3 * ms.states.len());
    }

    #[test]
    fn math_heavy_adds_non_tabulatable_calls() {
        let mut sp = spec("ISAC_Hu");
        sp.math_heavy = true;
        sp.use_lut = false;
        let src = generate(&sp);
        assert!(src.contains("pow(") || src.contains("log("));
        assert!(!src.contains(".lookup"));
        compile_model("ISAC_Hu", &src).unwrap();
    }

    #[test]
    fn no_gates_or_relax_still_compiles_with_minimum() {
        // Degenerate spec: only relax states.
        let sp = SynthSpec {
            n_gates: 0,
            n_relax: 2,
            n_markov: 0,
            n_algebraic: 1,
            n_branches: 1,
            ..spec("Tiny")
        };
        let m = compile_model("Tiny", &generate(&sp)).unwrap();
        assert_eq!(m.states.len(), 2);
    }
}
