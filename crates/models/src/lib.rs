//! # limpet-models
//!
//! The 43-ionic-model suite of the paper's evaluation (§4.1): ten
//! hand-written classic models ([`classics`]) and thirty-three
//! class-calibrated synthetic models ([`synthetic`]), organized into the
//! small/medium/large roster of [`registry`].
//!
//! # Examples
//!
//! ```
//! use limpet_models::{all_names, model, SizeClass, names_in_class};
//!
//! assert_eq!(all_names().len(), 43);
//! assert_eq!(names_in_class(SizeClass::Large).len(), 13);
//!
//! let hh = model("HodgkinHuxley");
//! assert_eq!(hh.states.len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classics;
pub mod files;
pub mod registry;
pub mod synthetic;

pub use files::{export_roster, load_file, LoadError};
pub use registry::{
    all_names, entry, model, names_in_class, source, ModelEntry, ModelKind, SizeClass, ROSTER,
};
pub use synthetic::{generate, SynthSpec};
