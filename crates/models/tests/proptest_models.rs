//! Property test over the synthetic model space: any knob combination the
//! generator accepts must produce an EasyML source that compiles through
//! the frontend, lowers to verifying IR under both pipelines, and runs
//! one stable simulated step at every vector width.

use limpet_codegen::pipeline::{self, Layout, VectorIsa};
use limpet_models::{generate, SynthSpec};
use limpet_vm::{Kernel, ModelInfo, SimContext, StateLayout};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SynthSpec> {
    (
        0usize..6,  // gates
        0usize..8,  // relax
        0usize..3,  // markov
        0usize..12, // algebraic
        0usize..3,  // branches
        any::<bool>(),
        any::<bool>(),
        "[A-Z][a-z]{2,8}",
    )
        .prop_filter_map(
            "need at least one state variable",
            |(g, r, mk, alg, br, lut, heavy, name)| {
                if g + r + mk == 0 {
                    return None;
                }
                Some(SynthSpec {
                    name,
                    n_gates: g,
                    n_relax: r,
                    n_markov: mk,
                    n_algebraic: alg,
                    n_branches: br,
                    use_lut: lut,
                    math_heavy: heavy,
                })
            },
        )
}

fn info(m: &limpet_easyml::Model) -> ModelInfo {
    ModelInfo {
        state_names: m.states.iter().map(|s| s.name.clone()).collect(),
        state_inits: m.states.iter().map(|s| s.init).collect(),
        ext_names: m.externals.iter().map(|e| e.name.clone()).collect(),
        ext_inits: m.externals.iter().map(|e| e.init).collect(),
        params: m
            .params
            .iter()
            .map(|p| (p.name.clone(), p.default))
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_synthetic_spec_compiles_and_steps(spec in spec_strategy()) {
        let src = generate(&spec);
        let model = limpet_easyml::compile_model(&spec.name, &src)
            .unwrap_or_else(|e| panic!("frontend rejected generated model:\n{e}\n{src}"));
        prop_assert_eq!(
            model.states.len(),
            spec.n_gates + spec.n_relax + spec.n_markov
        );

        let mi = info(&model);
        for (module, layout) in [
            (pipeline::baseline(&model).module, StateLayout::Aos),
            (
                pipeline::limpet_mlir(&model, VectorIsa::Avx512, Layout::AoSoA { block: 8 })
                    .module,
                StateLayout::AoSoA { block: 8 },
            ),
        ] {
            limpet_ir::verify_module(&module).expect("pipeline output verifies");
            let kernel = Kernel::from_module(&module, &mi).expect("bytecode compiles");
            let mut st = kernel.new_states(8, layout);
            let mut ext = kernel.new_ext(8);
            for c in 0..8 {
                ext.set(c, 0, -85.0 + 10.0 * c as f64); // Vm spread
            }
            for step in 0..5 {
                kernel.run_step(
                    &mut st,
                    &mut ext,
                    None,
                    SimContext { dt: 0.01, t: step as f64 * 0.01 },
                );
            }
            for c in 0..8 {
                for v in 0..st.n_vars() {
                    prop_assert!(
                        st.get(c, v).is_finite(),
                        "state {v} of cell {c} diverged in 5 steps"
                    );
                }
                prop_assert!(ext.get(c, 1).is_finite(), "Iion diverged");
            }
        }
    }
}
