//! # limpet-opt — the `mlir-opt` analogue for the mlir-lite IR
//!
//! Parses a textual IR module, runs a `--pipeline` of registered passes
//! through the instrumented `limpet-pm` pass manager, and prints the
//! resulting module — the same round-trip workflow `mlir-opt` gives the
//! paper's MLIR pipeline, and the backbone of the FileCheck-lite pass
//! tests.
//!
//! ```text
//! limpet-opt --pipeline "const-prop,lut-mode,vectorize{width=4}" kernel.mlir
//! cat kernel.mlir | limpet-opt --pipeline "cse,dce" -
//! limpet-opt --list-passes
//! ```
//!
//! The CLI surface lives in [`run`] so it is testable without spawning a
//! process; `main.rs` is a thin wrapper.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use limpet_pm::{PassManager, PrintIr};
use std::io::Read;

/// The usage text (`--help`).
pub const USAGE: &str = "\
limpet-opt: run a pass pipeline over textual IR and print the result

USAGE:
    limpet-opt [OPTIONS] <input.mlir | ->

ARGS:
    <input>                   Input file, or '-' to read from stdin

OPTIONS:
    --pipeline <desc>         Passes to run, e.g. 'const-prop,lut-mode,vectorize{width=4}'
                              (default: empty pipeline — parse, verify, reprint)
    --list-passes             Print the registered pass names and exit
    --no-verify               Skip IR verification of the input and after each pass
    --print-ir-before[=pass]  Dump IR to stderr before every pass (or one pass)
    --print-ir-after[=pass]   Dump IR to stderr after every pass (or one pass)
    --timing                  Print a per-pass wall-time/counter table to stderr
    --emit-bytecode           Print the VM bytecode disassembly of @compute instead
                              of the module (after the pipeline and the VM's
                              post-compile bytecode optimizer)
    --emit-c                  Print the limpetC++-style serial C translation of the
                              module instead of the IR (the paper's baseline backend)
    --emit-c-native           Print the native-tier C translation of @compute's
                              bytecode (extern \"C\" ABI, math-table indirection;
                              what the runtime compiles with `cc` and dlopens)
    --no-bytecode-opt         With --emit-bytecode / --emit-c-native: skip the
                              bytecode optimizer, showing the compiler's raw
                              instruction stream
    -h, --help                Show this text
";

/// A parsed command line.
#[derive(Debug, Default)]
struct Options {
    input: Option<String>,
    pipeline: String,
    list_passes: bool,
    no_verify: bool,
    print_before: Option<PrintIr>,
    print_after: Option<PrintIr>,
    timing: bool,
    emit_bytecode: bool,
    emit_c: bool,
    emit_c_native: bool,
    no_bytecode_opt: bool,
    help: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => opts.help = true,
            "--list-passes" => opts.list_passes = true,
            "--no-verify" => opts.no_verify = true,
            "--timing" => opts.timing = true,
            "--emit-bytecode" => opts.emit_bytecode = true,
            "--emit-c" => opts.emit_c = true,
            "--emit-c-native" => opts.emit_c_native = true,
            "--no-bytecode-opt" => opts.no_bytecode_opt = true,
            "--pipeline" => {
                opts.pipeline = it
                    .next()
                    .ok_or("--pipeline requires a value".to_owned())?
                    .clone();
            }
            _ if arg.starts_with("--pipeline=") => {
                opts.pipeline = arg["--pipeline=".len()..].to_owned();
            }
            "--print-ir-before" => opts.print_before = Some(PrintIr::All),
            "--print-ir-after" => opts.print_after = Some(PrintIr::All),
            _ if arg.starts_with("--print-ir-before=") => {
                opts.print_before =
                    Some(PrintIr::Only(arg["--print-ir-before=".len()..].to_owned()));
            }
            _ if arg.starts_with("--print-ir-after=") => {
                opts.print_after = Some(PrintIr::Only(arg["--print-ir-after=".len()..].to_owned()));
            }
            _ if arg.starts_with("--") => {
                return Err(format!("unknown option '{arg}' (see --help)"));
            }
            _ => {
                if opts.input.replace(arg.clone()).is_some() {
                    return Err("more than one input file given".to_owned());
                }
            }
        }
    }
    Ok(opts)
}

/// Runs the driver. `args` excludes the program name; the printed module
/// goes to `stdout`, diagnostics/dumps/timing to `stderr`.
///
/// Returns the process exit code: 0 on success, 1 on any error (bad
/// arguments, unreadable input, parse failure, unknown pass,
/// verification failure).
pub fn run(
    args: &[String],
    stdout: &mut impl std::io::Write,
    stderr: &mut impl std::io::Write,
) -> i32 {
    match try_run(args, stdout, stderr) {
        Ok(()) => 0,
        Err(message) => {
            let _ = writeln!(stderr, "limpet-opt: {message}");
            1
        }
    }
}

fn try_run(
    args: &[String],
    stdout: &mut impl std::io::Write,
    stderr: &mut impl std::io::Write,
) -> Result<(), String> {
    let opts = parse_args(args)?;
    if opts.help {
        write!(stdout, "{USAGE}").map_err(|e| e.to_string())?;
        return Ok(());
    }
    let registry = limpet_passes::registry();
    if opts.list_passes {
        for name in registry.names() {
            writeln!(stdout, "{name}").map_err(|e| e.to_string())?;
        }
        return Ok(());
    }

    let input = opts
        .input
        .as_deref()
        .ok_or_else(|| "no input file (pass a path or '-' for stdin; see --help)".to_owned())?;
    let text = if input == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(input).map_err(|e| format!("reading '{input}': {e}"))?
    };

    let mut module =
        limpet_ir::parse_module(&text).map_err(|e| format!("parsing '{input}': {e}"))?;

    let mut pm: PassManager = registry
        .parse_pipeline(&opts.pipeline)
        .map_err(|e| e.to_string())?;
    pm.verify_each(!opts.no_verify);
    if let Some(filter) = opts.print_before.clone() {
        pm.print_ir_before(filter);
    }
    if let Some(filter) = opts.print_after.clone() {
        pm.print_ir_after(filter);
    }

    let report = pm.run(&mut module).map_err(|e| e.to_string())?;

    for dump in &report.dumps {
        writeln!(
            stderr,
            "// ----- IR {} pass '{}' -----",
            dump.when, dump.pass
        )
        .map_err(|e| e.to_string())?;
        write!(stderr, "{}", dump.text).map_err(|e| e.to_string())?;
    }
    if opts.timing {
        write!(stderr, "{}", report.timing_table()).map_err(|e| e.to_string())?;
    }
    if opts.emit_bytecode {
        return emit_bytecode(&module, !opts.no_bytecode_opt, stdout);
    }
    if opts.emit_c {
        let c = limpet_codegen::emit_c(&module).map_err(|e| format!("emit-c: {e}"))?;
        write!(stdout, "{c}").map_err(|e| e.to_string())?;
        return Ok(());
    }
    if opts.emit_c_native {
        let mut program = limpet_vm::compile_program(&module, &[], &[], &[])
            .map_err(|e| format!("bytecode compilation: {e}"))?;
        if !opts.no_bytecode_opt {
            limpet_vm::optimize_program(&mut program);
        }
        let c = limpet_codegen::emit_c_native(&program, module.name())
            .map_err(|e| format!("emit-c-native: {e}"))?;
        write!(stdout, "{c}").map_err(|e| e.to_string())?;
        return Ok(());
    }
    write!(stdout, "{}", limpet_ir::print_module(&module)).map_err(|e| e.to_string())?;
    Ok(())
}

/// Compiles `@compute` to VM bytecode (variable orders discovered from
/// the module, as the standalone driver has no model to dictate them),
/// optionally runs the post-compile bytecode optimizer, and prints the
/// disassembly with a `// bytecode:` summary header (and the optimizer's
/// counters when it ran).
fn emit_bytecode(
    module: &limpet_ir::Module,
    optimize: bool,
    stdout: &mut impl std::io::Write,
) -> Result<(), String> {
    let mut program = limpet_vm::compile_program(module, &[], &[], &[])
        .map_err(|e| format!("bytecode compilation: {e}"))?;
    if optimize {
        let stats = limpet_vm::optimize_program(&mut program);
        let counters: Vec<String> = stats
            .counters()
            .iter()
            .map(|(name, n)| format!("{name}={n}"))
            .collect();
        writeln!(stdout, "// bytecode-opt: {}", counters.join(" ")).map_err(|e| e.to_string())?;
    }
    writeln!(
        stdout,
        "// bytecode: {} instrs, {} f-regs, {} b-regs, {} i-regs",
        program.instrs.len(),
        program.n_fregs,
        program.n_bregs,
        program.n_iregs
    )
    .map_err(|e| e.to_string())?;
    write!(stdout, "{}", program.disassemble()).map_err(|e| e.to_string())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn run_capture(list: &[&str]) -> (i32, String, String) {
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run(&args(list), &mut out, &mut err);
        (
            code,
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        )
    }

    const INPUT: &str = r#"
module @t {
  func.func @compute() {
    %0 = arith.constant 2.0 : f64
    %1 = arith.constant 3.0 : f64
    %2 = arith.mulf %0, %1 : f64
    limpet.set_state %2 {var = "x"} : f64
    func.return
  }
}
"#;

    fn with_input_file(body: &str, f: impl FnOnce(&str)) {
        let path = std::env::temp_dir().join(format!(
            "limpet-opt-test-{}-{:?}.mlir",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, body).unwrap();
        f(path.to_str().unwrap());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn round_trips_and_folds() {
        with_input_file(INPUT, |path| {
            let (code, out, err) = run_capture(&["--pipeline", "const-prop,dce", path]);
            assert_eq!(code, 0, "stderr: {err}");
            assert!(out.contains("arith.constant 6"), "{out}");
            assert!(!out.contains("arith.mulf"), "{out}");
        });
    }

    #[test]
    fn empty_pipeline_reprints_verbatim_module() {
        with_input_file(INPUT, |path| {
            let (code, out, _) = run_capture(&[path]);
            assert_eq!(code, 0);
            // Reprint parses back: a full round-trip.
            let reparsed = limpet_ir::parse_module(&out).unwrap();
            assert_eq!(limpet_ir::print_module(&reparsed), out);
        });
    }

    #[test]
    fn timing_and_dumps_go_to_stderr() {
        with_input_file(INPUT, |path| {
            let (code, out, err) = run_capture(&[
                "--pipeline",
                "const-prop",
                "--timing",
                "--print-ir-after=const-prop",
                path,
            ]);
            assert_eq!(code, 0);
            assert!(err.contains("IR after pass 'const-prop'"), "{err}");
            assert!(err.contains("ops-folded"), "{err}");
            assert!(err.contains("total"), "{err}");
            assert!(!out.contains("total"), "stdout polluted: {out}");
        });
    }

    #[test]
    fn list_passes_includes_alias() {
        let (code, out, _) = run_capture(&["--list-passes"]);
        assert_eq!(code, 0);
        assert!(out.lines().any(|l| l == "lut-mode"), "{out}");
        assert!(out.lines().any(|l| l == "vectorize"), "{out}");
    }

    #[test]
    fn errors_are_reported_with_exit_one() {
        // Unknown pass.
        with_input_file(INPUT, |path| {
            let (code, _, err) = run_capture(&["--pipeline", "nope", path]);
            assert_eq!(code, 1);
            assert!(err.contains("unknown pass 'nope'"), "{err}");
        });
        // Unparseable input.
        with_input_file("not ir at all", |path| {
            let (code, _, err) = run_capture(&[path]);
            assert_eq!(code, 1);
            assert!(err.contains("parsing"), "{err}");
        });
        // Missing input.
        let (code, _, err) = run_capture(&["--pipeline", "dce"]);
        assert_eq!(code, 1);
        assert!(err.contains("no input file"), "{err}");
        // Unknown flag.
        let (code, _, err) = run_capture(&["--bogus"]);
        assert_eq!(code, 1);
        assert!(err.contains("unknown option"), "{err}");
    }

    #[test]
    fn help_prints_usage() {
        let (code, out, _) = run_capture(&["--help"]);
        assert_eq!(code, 0);
        assert!(out.contains("USAGE"), "{out}");
    }
}
