fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = limpet_opt::run(&args, &mut std::io::stdout(), &mut std::io::stderr());
    std::process::exit(code);
}
