//! FileCheck-lite golden test for `limpet-opt --emit-bytecode`: the VM's
//! post-compile bytecode optimizer must fuse a mul feeding a single add
//! into one `fma` superinstruction, and `--no-bytecode-opt` must show the
//! compiler's raw mul/add stream.

use limpet_pm::filecheck;

/// A kernel whose bytecode is three state loads, a mul, an add, and a
/// store — the canonical Fma fusion shape.
const INPUT: &str = r#"
module @fma_kernel {
  func.func @compute() {
    %0 = limpet.get_state {var = "a"} : f64
    %1 = limpet.get_state {var = "b"} : f64
    %2 = limpet.get_state {var = "c"} : f64
    %3 = arith.mulf %0, %1 : f64
    %4 = arith.addf %3, %2 : f64
    limpet.set_state %4 {var = "c"} : f64
    func.return
  }
}
"#;

/// CHECK directives against the optimized disassembly: the counter line
/// reports one fusion, the listing holds an `fma`, and no separate
/// mul/add instruction survives.
const CHECKS_OPT: &str = "
// CHECK: fma-fused=1
// CHECK: // bytecode:
// CHECK: = fma(
// CHECK-NOT: = Mul(
// CHECK-NOT: = Add(
";

/// With the optimizer off the raw stream keeps the mul and add and no
/// `fma` or counter line appears.
const CHECKS_RAW: &str = "
// CHECK: // bytecode:
// CHECK: = Mul(
// CHECK-NEXT: = Add(
// CHECK-NOT: = fma(
// CHECK-NOT: bytecode-opt:
";

fn emit(extra: &[&str]) -> String {
    let path = std::env::temp_dir().join(format!(
        "limpet-opt-emit-bytecode-{}-{:?}.mlir",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, INPUT).unwrap();
    let mut args: Vec<String> = vec!["--emit-bytecode".into(), path.display().to_string()];
    args.extend(extra.iter().map(|s| s.to_string()));
    let (mut out, mut err) = (Vec::new(), Vec::new());
    let code = limpet_opt::run(&args, &mut out, &mut err);
    let _ = std::fs::remove_file(&path);
    assert_eq!(code, 0, "stderr: {}", String::from_utf8_lossy(&err));
    String::from_utf8(out).unwrap()
}

#[test]
fn optimizer_fuses_mul_add_into_fma() {
    let output = emit(&[]);
    filecheck::check(&output, CHECKS_OPT).unwrap_or_else(|e| panic!("{e}\noutput:\n{output}"));
}

#[test]
fn no_bytecode_opt_shows_raw_mul_add_stream() {
    let output = emit(&["--no-bytecode-opt"]);
    filecheck::check(&output, CHECKS_RAW).unwrap_or_else(|e| panic!("{e}\noutput:\n{output}"));
}
