//! `limpet-opt` round-trip fuzzing (closes the ROADMAP open item): random
//! pass pipelines over random synthetic-model IR must keep every
//! parser/printer/pass invariant — the pipeline runs with
//! verify-after-each-pass, the result survives a print → parse → print
//! fixpoint, and the `limpet-opt` driver itself reproduces the same
//! output byte for byte.
//!
//! The in-tree proptest shim derives its RNG seed from the test path, so
//! the exact same cases run locally and in CI (the ci.sh fuzz smoke).

use limpet_ir::{parse_module, print_module, verify_module};
use limpet_models::{generate, SynthSpec};
use proptest::prelude::*;

/// Structural knobs spanning every synthetic-generator feature, small
/// enough that one case compiles in milliseconds.
fn spec_strategy() -> impl Strategy<Value = SynthSpec> {
    (
        // At least one gate: the generator's current mixers require a
        // non-empty state set.
        (1usize..3, 0usize..3, 0usize..2),
        (0usize..4, 0usize..3),
        prop_oneof![Just(false), Just(true)],
        prop_oneof![Just(false), Just(true)],
    )
        .prop_map(
            |((n_gates, n_relax, n_markov), (n_algebraic, n_branches), use_lut, math_heavy)| {
                SynthSpec {
                    // The name seeds the generator's RNG: distinct knobs,
                    // distinct equations.
                    name: format!(
                        "Fuzz{n_gates}{n_relax}{n_markov}{n_algebraic}{n_branches}{}{}",
                        u8::from(use_lut),
                        u8::from(math_heavy)
                    ),
                    n_gates,
                    n_relax,
                    n_markov,
                    n_algebraic,
                    n_branches,
                    use_lut,
                    math_heavy,
                }
            },
        )
}

/// A random pipeline over the registered passes, mirroring what a user
/// could type after `--pipeline`.
fn pipeline_strategy() -> impl Strategy<Value = String> {
    let pass = prop_oneof![
        Just("const-prop".to_owned()),
        Just("canonicalize".to_owned()),
        Just("cse".to_owned()),
        Just("licm".to_owned()),
        Just("dce".to_owned()),
        Just("fma-contract".to_owned()),
        Just("scalar-lut-mode".to_owned()),
        Just("cubic-lut-mode".to_owned()),
        (1u32..4).prop_map(|i| format!("vectorize{{width={}}}", 1u32 << i)),
    ];
    prop::collection::vec(pass, 0..6).prop_map(|passes| passes.join(","))
}

fn lower(spec: &SynthSpec) -> limpet_ir::Module {
    let src = generate(spec);
    let model = limpet_easyml::compile_model(&spec.name, &src)
        .unwrap_or_else(|e| panic!("synthetic model {} must compile: {e}", spec.name));
    limpet_codegen::lower_model(&model, &limpet_codegen::CodegenOptions { use_lut: true }).module
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random pipeline over random IR: verify-after-each-pass holds, and
    /// the result is a print → parse → print fixpoint.
    #[test]
    fn random_pipeline_keeps_roundtrip_invariants(
        spec in spec_strategy(),
        pipeline in pipeline_strategy(),
    ) {
        let mut module = lower(&spec);
        let mut pm = limpet_passes::parse_pipeline(&pipeline)
            .unwrap_or_else(|e| panic!("pipeline '{pipeline}' must parse: {e}"));
        pm.verify_each(true);
        pm.run(&mut module).unwrap_or_else(|e| {
            panic!("pipeline '{pipeline}' broke IR invariants on {}: {e}", spec.name)
        });

        let printed = print_module(&module);
        let reparsed = parse_module(&printed)
            .unwrap_or_else(|e| panic!("printed module must reparse: {e}\n{printed}"));
        verify_module(&reparsed)
            .unwrap_or_else(|e| panic!("reparsed module must verify: {e}"));
        prop_assert_eq!(print_module(&reparsed), printed);
    }

    /// The driver end to end: `limpet-opt --pipeline <random> <file>`
    /// exits 0 and prints exactly what the in-process pipeline produced.
    #[test]
    fn driver_matches_in_process_pipeline(
        spec in spec_strategy(),
        pipeline in pipeline_strategy(),
    ) {
        let mut module = lower(&spec);
        let input = print_module(&module);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("limpet-fuzz-{}-{}.mlir", std::process::id(), spec.name));
        std::fs::write(&path, &input).unwrap();

        let mut args = vec![path.to_string_lossy().into_owned()];
        if !pipeline.is_empty() {
            args.insert(0, pipeline.clone());
            args.insert(0, "--pipeline".to_owned());
        }
        let mut stdout = Vec::new();
        let mut stderr = Vec::new();
        let code = limpet_opt::run(&args, &mut stdout, &mut stderr);
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(
            code, 0,
            "driver failed on '{}': {}", pipeline, String::from_utf8_lossy(&stderr)
        );

        let mut pm = limpet_passes::parse_pipeline(&pipeline).unwrap();
        pm.verify_each(true);
        pm.run(&mut module).unwrap();
        prop_assert_eq!(String::from_utf8_lossy(&stdout), print_module(&module));
    }
}
