//! Action potential: paces the Hodgkin–Huxley model from the built-in
//! 43-model suite and renders the membrane potential as an ASCII trace —
//! the single-cell workload the paper's intro motivates (virtual
//! electrophysiology).
//!
//! ```text
//! cargo run --release --example action_potential
//! ```

use limpet::harness::{PipelineKind, Simulation, Stimulus, Workload};
use limpet::models;

fn main() {
    let model = models::model("HodgkinHuxley");
    let wl = Workload {
        n_cells: 8,
        steps: 0,
        dt: 0.01,
    };
    let mut sim = Simulation::new(
        &model,
        PipelineKind::LimpetMlir(limpet::codegen::pipeline::VectorIsa::Avx512),
        &wl,
    );
    sim.set_stimulus(Stimulus {
        period: 25.0,
        duration: 1.0,
        amplitude: 80.0,
    });

    // 40 ms of activity, sampled every 0.2 ms.
    let total_ms = 40.0;
    let sample_every = 20; // steps
    let mut trace: Vec<(f64, f64)> = Vec::new();
    let steps = (total_ms / wl.dt) as usize;
    for step in 0..steps {
        sim.step();
        if step % sample_every == 0 {
            trace.push((sim.time(), sim.vm(0)));
        }
    }

    // ASCII plot: 60 rows of time, voltage across columns.
    let (vmin, vmax) = (-90.0, 50.0);
    let width = 64usize;
    println!("Hodgkin-Huxley action potential (Vm of cell 0)");
    println!(
        "t [ms]   {vmin:>6.0} mV {dashes} {vmax:>4.0} mV",
        dashes = "-".repeat(width - 22)
    );
    for (t, v) in trace.iter().step_by(2) {
        let x = ((v - vmin) / (vmax - vmin) * (width as f64 - 1.0)).clamp(0.0, width as f64 - 1.0)
            as usize;
        let mut line = vec![b' '; width];
        line[x] = b'*';
        println!("{t:7.2}  |{}|", String::from_utf8(line).unwrap());
    }

    let peak = trace.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max);
    let rest = trace.iter().map(|(_, v)| *v).fold(f64::MAX, f64::min);
    println!("\npeak overshoot: {peak:+.1} mV, maximum repolarization: {rest:+.1} mV");
    println!(
        "gates at end: m = {:.4}, h = {:.4}, n = {:.4}",
        sim.state_of(0, "m").unwrap(),
        sim.state_of(0, "h").unwrap(),
        sim.state_of(0, "n").unwrap(),
    );
}
