//! Quickstart: write an ionic model in EasyML, compile it with the
//! limpetMLIR pipeline, inspect the generated IR, and run a simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use limpet::{Compiler, Isa};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small gated-current model in EasyML (the openCARP model DSL):
    // `Vm`/`Iion` are the external voltage and current, `diff_n` defines
    // the gate ODE, `.lookup()` tabulates Vm-dependent expressions, and
    // `.method(rush_larsen)` picks the integrator.
    let src = "
        Vm; .external(); .lookup(-100, 100, 0.05);
        Iion; .external();
        group{ g_K = 0.36; E_K = -77.0; }.param();

        n_inf = 1.0 / (1.0 + exp(-(Vm + 53.0) / 15.0));
        tau_n = 1.1 + 4.7 * exp(-square(Vm + 79.0) / 700.0);
        diff_n = (n_inf - n) / tau_n;
        n_init = 0.32;
        n;.method(rush_larsen);

        Iion = g_K * square(square(n)) * (Vm - E_K);
    ";

    // Compile twice: the openCARP-style scalar baseline and the
    // limpetMLIR AVX-512 pipeline.
    let baseline = Compiler::new()
        .isa(Isa::Scalar)
        .compile("quickstart", src)?;
    let optimized = Compiler::new()
        .isa(Isa::Avx512)
        .compile("quickstart", src)?;

    println!("=== limpetMLIR IR (AVX-512, AoSoA, vectorized LUT) ===");
    println!("{}", optimized.ir_text());

    // Run both for one second of simulated time and compare.
    let n_cells = 1024;
    let dt = 0.01;
    let steps = 2000;

    let mut sim_b = baseline.simulation(n_cells, dt);
    let mut sim_o = optimized.simulation(n_cells, dt);

    let t0 = std::time::Instant::now();
    sim_b.run(steps);
    let t_base = t0.elapsed();

    let t0 = std::time::Instant::now();
    sim_o.run(steps);
    let t_opt = t0.elapsed();

    println!(
        "baseline   : {:>8.2?} for {} cells x {} steps (n = {:.6})",
        t_base,
        n_cells,
        steps,
        sim_b.state_of(0, "n").unwrap()
    );
    println!(
        "limpetMLIR : {:>8.2?}  -> speedup {:.2}x (n = {:.6})",
        t_opt,
        t_base.as_secs_f64() / t_opt.as_secs_f64(),
        sim_o.state_of(0, "n").unwrap()
    );

    let diff = (sim_b.state_of(0, "n").unwrap() - sim_o.state_of(0, "n").unwrap()).abs();
    println!("trajectory difference: {diff:.2e} (vectorization is semantics-preserving)");
    Ok(())
}
