//! APD restitution: the classic S1–S2 pacing protocol of cardiac
//! electrophysiology, run on the Beeler–Reuter model — the kind of
//! virtual-physiology experiment (arrhythmia research, drug testing) the
//! paper's introduction motivates as needing fast kernels.
//!
//! The cell is paced to steady state (S1 train), then probed with a
//! premature stimulus (S2) at decreasing coupling intervals; the action
//! potential duration (APD90) is plotted against the preceding diastolic
//! interval (DI). Restitution-curve steepness is a standard arrhythmia
//! marker.
//!
//! ```text
//! cargo run --release --example restitution
//! ```

use limpet::codegen::pipeline::VectorIsa;
use limpet::harness::{PipelineKind, Simulation, Stimulus, Workload};
use limpet::models;

/// Runs until `t_end`, returning (activation time, APD90) of the last AP.
fn measure_last_ap(sim: &mut Simulation, t_end: f64, dt: f64) -> Option<(f64, f64)> {
    let rest = -84.0;
    let threshold = rest + 0.1 * (20.0 - rest); // ~10% above rest
    let mut above = sim.vm(0) > threshold;
    // If the cell is already depolarized (e.g. an S2 pulse fired just
    // before measurement), count the ongoing AP from now.
    let mut last_up: Option<f64> = if above { Some(sim.time()) } else { None };
    let mut last_apd: Option<(f64, f64)> = None;
    while sim.time() < t_end {
        sim.step();
        let v = sim.vm(0);
        let now_above = v > threshold;
        if now_above && !above {
            last_up = Some(sim.time());
        }
        if !now_above && above {
            if let Some(up) = last_up {
                last_apd = Some((up, sim.time() - up));
            }
        }
        above = now_above;
        let _ = dt;
    }
    last_apd
}

fn main() {
    let model = models::model("BeelerReuter");
    let s1_bcl = 500.0; // ms basic cycle length
    let s1_beats = 4;
    let dt = 0.02;
    let threshold = -73.0; // ~10% above BR rest toward peak

    println!("S1-S2 restitution, BeelerReuter, S1 BCL {s1_bcl} ms x{s1_beats}");
    println!("{:>8} {:>10} {:>10}", "S2 (ms)", "DI (ms)", "APD90 (ms)");

    let mut curve: Vec<(f64, f64)> = Vec::new();
    for s2 in [420.0, 380.0, 340.0, 310.0, 290.0, 275.0, 265.0, 258.0] {
        let wl = Workload {
            n_cells: 8,
            steps: 0,
            dt,
        };
        let mut sim = Simulation::new(&model, PipelineKind::LimpetMlir(VectorIsa::Avx512), &wl);
        sim.set_stimulus(Stimulus {
            period: s1_bcl,
            duration: 2.0,
            amplitude: 40.0,
        });
        // S1 train: run just past the last S1 pulse (fires at t = 1500).
        let last_s1 = s1_bcl * (s1_beats - 1) as f64;
        while sim.time() < last_s1 + 3.0 {
            sim.step();
        }
        sim.set_stimulus(Stimulus {
            period: 1e12,
            duration: 0.0,
            amplitude: 0.0,
        });

        // Track the last S1 action potential up to the S2 moment.
        let s2_time = last_s1 + s2;
        let mut t_repol: Option<f64> = None; // end of the S1 AP
        let mut above = sim.vm(0) > threshold;
        while sim.time() < s2_time {
            sim.step();
            let now_above = sim.vm(0) > threshold;
            if above && !now_above {
                t_repol = Some(sim.time());
            }
            above = now_above;
        }

        let Some(t_repol) = t_repol else {
            // Still in the S1 plateau: premature S2 lands in refractory.
            println!("{s2:>8.0} {:>10} {:>10}", "<0", "block");
            continue;
        };
        let di = s2_time - t_repol;

        // Fire the 2 ms S2 pulse.
        let pulse_end = sim.time() + 2.0;
        sim.set_stimulus(Stimulus {
            period: 1e12,
            duration: pulse_end, // on until pulse_end (t % 1e12 == t)
            amplitude: 40.0,
        });
        while sim.time() < pulse_end {
            sim.step();
        }
        sim.set_stimulus(Stimulus {
            period: 1e12,
            duration: 0.0,
            amplitude: 0.0,
        });

        // Observe the S2 response.
        let observe_until = sim.time() + 450.0;
        match measure_last_ap(&mut sim, observe_until, dt) {
            Some((_, apd2)) if apd2 > 20.0 => {
                println!("{s2:>8.0} {di:>10.1} {apd2:>10.1}");
                curve.push((di, apd2));
            }
            _ => println!("{s2:>8.0} {di:>10.1} {:>10}", "block"),
        }
    }

    // Restitution properties: APD90 shortens as DI shortens.
    if curve.len() >= 3 {
        let span = curve.first().unwrap().1 - curve.last().unwrap().1;
        println!("\nrestitution: APD90 shortens by {span:.1} ms from longest to shortest DI");
        let mut max_slope: f64 = 0.0;
        for w in curve.windows(2) {
            let ddi = w[0].0 - w[1].0;
            if ddi.abs() > 1.0 {
                max_slope = max_slope.max((w[0].1 - w[1].1) / ddi);
            }
        }
        println!("maximum restitution slope: {max_slope:.2}");
        assert!(span > 0.0, "restitution curve must shorten at short DI");
    }
}
