//! Tissue strip: the full two-stage simulation flow of paper §3.1 —
//! compute stage (ionic kernel) + solver stage (implicit monodomain
//! diffusion via conjugate gradients) — on a 1-D cable. A stimulus at the
//! left end launches a propagating excitation wave; the example measures
//! its conduction velocity.
//!
//! ```text
//! cargo run --release --example tissue_strip
//! ```

use limpet::harness::{PipelineKind, Simulation, Stimulus, Workload};
use limpet::models;

fn main() {
    let model = models::model("MitchellSchaeffer");
    let n_cells = 256;
    let dt = 0.05; // ms
    let wl = Workload {
        n_cells,
        steps: 0,
        dt,
    };
    let mut sim = Simulation::new(
        &model,
        PipelineKind::LimpetMlir(limpet::codegen::pipeline::VectorIsa::Avx512),
        &wl,
    );
    // No global stimulus; we excite locally instead.
    sim.set_stimulus(Stimulus {
        period: 1e12,
        duration: 0.0,
        amplitude: 0.0,
    });
    sim.enable_tissue(0.8);

    // Local stimulus: depolarize the 8 leftmost cells.
    for c in 0..8 {
        sim.perturb_vm(c, 45.0);
    }

    // Track activation times (first crossing of 50 mV in this normalized
    // model, which rests at 0 and peaks near 100).
    let mut activation: Vec<Option<f64>> = vec![None; n_cells];
    let steps = 12_000;
    for _ in 0..steps {
        sim.step();
        for (c, slot) in activation.iter_mut().enumerate() {
            if slot.is_none() && sim.vm(c) > 50.0 {
                *slot = Some(sim.time());
            }
        }
    }

    let activated = activation.iter().filter(|a| a.is_some()).count();
    println!("tissue strip: {n_cells} cells, dt = {dt} ms");
    println!("activated cells: {activated}/{n_cells}");

    // Snapshot of the wave: voltage profile along the cable.
    println!("\nfinal Vm profile (one char per 4 cells):");
    let mut profile = String::new();
    for c in (0..n_cells).step_by(4) {
        let v = sim.vm(c);
        profile.push(match v {
            v if v > 80.0 => '#',
            v if v > 50.0 => '+',
            v if v > 20.0 => '-',
            _ => '.',
        });
    }
    println!("  [{profile}]");

    // Conduction velocity from activation times between cells 64 and 192.
    if let (Some(t1), Some(t2)) = (activation[64], activation[192]) {
        let cv = 128.0 / (t2 - t1); // cells per ms
        println!("\nconduction: cell 64 at {t1:.2} ms, cell 192 at {t2:.2} ms");
        println!("conduction velocity: {cv:.2} cells/ms");
        assert!(t2 > t1, "wave must travel left to right");
    } else {
        println!("\nwave did not reach the measurement electrodes");
    }

    // The solver stage statistics: CG converges in a handful of
    // iterations thanks to warm starts.
    println!(
        "\n(the implicit diffusion solve ran {} steps of preconditioned CG)",
        steps
    );
}
