//! Custom model workflow: write your own `.model` file (the paper's §A.7
//! customization path), load it, inspect the generated C and MLIR-style
//! IR, and race the baseline against limpetMLIR on it.
//!
//! ```text
//! cargo run --release --example custom_model [path/to/file.model]
//! ```
//!
//! Without an argument, a demonstration model is written to a temporary
//! file first.

use limpet::codegen::pipeline::VectorIsa;
use limpet::harness::{model_info, PipelineKind, Simulation, Workload};
use limpet::vm::Kernel;

const DEMO: &str = "
# A two-gate demonstration channel.
Vm; .external(); .lookup(-100, 100, 0.05);
Iion; .external();
group{ g_max = 0.8; E_rev = -30.0; }.param();

# activation (fast)
a_inf = 1.0 / (1.0 + exp(-(Vm + 20.0) / 9.0));
tau_a = 0.5 + 2.0 * exp(-square(Vm + 30.0) / 400.0);
diff_a = (a_inf - a) / tau_a;
a_init = 0.01;
a;.method(rush_larsen);

# inactivation (slow)
i_inf = 1.0 / (1.0 + exp((Vm + 55.0) / 7.0));
tau_i = 20.0 + 80.0 * exp(-square(Vm + 50.0) / 900.0);
diff_i = (i_inf - i) / tau_i;
i_init = 0.95;
i;.method(sundnes);

Iion = g_max * square(a) * i * (Vm - E_rev);
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let p = std::env::temp_dir().join("limpet_demo_channel.model");
            std::fs::write(&p, DEMO)?;
            println!("(no file given; wrote demo model to {})\n", p.display());
            p
        }
    };

    // 1. Load and analyze.
    let model = limpet::models::load_file(&path)?;
    println!(
        "loaded {}: {} state(s), {} parameter(s), {} lookup table markup(s)",
        model.name,
        model.states.len(),
        model.params.len(),
        model.lookups.len()
    );
    for s in &model.states {
        println!(
            "  state {:8} init {:>8.4}  method {}",
            s.name,
            s.init,
            s.method.name()
        );
    }

    // 2. What openCARP's limpetC++ would have produced (paper Listing 2).
    let baseline_module = PipelineKind::Baseline.build(&model);
    println!("\n=== limpetC++-style C (excerpt) ===");
    let c = limpet::codegen::emit_c(&baseline_module)?;
    for line in c.lines().take(18) {
        println!("{line}");
    }
    println!(
        "    ... ({} more lines)",
        c.lines().count().saturating_sub(18)
    );

    // 3. What limpetMLIR produces instead.
    let opt_module = PipelineKind::LimpetMlir(VectorIsa::Avx512).build(&model);
    println!("\n=== vectorized kernel facts ===");
    let info = model_info(&model);
    let kb = Kernel::from_module(&baseline_module, &info)?;
    let kl = Kernel::from_module(&opt_module, &info)?;
    println!(
        "baseline: {} bytecode instrs (scalar)   limpetMLIR: {} instrs (8 lanes), {} LUT bytes",
        kb.program().instrs.len(),
        kl.program().instrs.len(),
        kl.lut_bytes()
    );
    println!("\nbytecode head (limpetMLIR):");
    for line in kl.program().disassemble().lines().take(10) {
        println!("  {line}");
    }

    // 4. Race them.
    let wl = Workload {
        n_cells: 4096,
        steps: 0,
        dt: 0.01,
    };
    let mut base = Simulation::new(&model, PipelineKind::Baseline, &wl);
    let mut opt = Simulation::new(&model, PipelineKind::LimpetMlir(VectorIsa::Avx512), &wl);
    let steps = 1000;

    let t0 = std::time::Instant::now();
    base.run(steps);
    let tb = t0.elapsed();
    let t0 = std::time::Instant::now();
    opt.run(steps);
    let to = t0.elapsed();

    println!("\n=== race: {} cells x {steps} steps ===", wl.n_cells);
    println!("baseline   {tb:>10.2?}");
    println!(
        "limpetMLIR {to:>10.2?}   speedup {:.2}x",
        tb.as_secs_f64() / to.as_secs_f64()
    );
    let (va, vb) = (base.vm(0), opt.vm(0));
    println!("end-state agreement: |dVm| = {:.2e}", (va - vb).abs());
    Ok(())
}
