//! Compiler explorer: walks a model from the 43-model suite through each
//! stage of the limpetMLIR pipeline, printing the IR after every pass —
//! the compilation flow of paper Fig. 1 made visible.
//!
//! ```text
//! cargo run --release --example compiler_explorer [ModelName]
//! ```

use limpet::codegen::{lower_model, CodegenOptions};
use limpet::ir::print_module;
use limpet::models;
use limpet::passes::{Canonicalize, ConstProp, Cse, Dce, Licm, Pass, Vectorize};

fn op_count(m: &limpet::ir::Module) -> usize {
    m.func("compute").map_or(0, |f| f.walk_ops().len())
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Pathmanathan".to_owned());
    let model = models::model(&name);
    println!(
        "model {name}: {} states, {} params, {} lookup markup(s), complexity {}",
        model.states.len(),
        model.params.len(),
        model.lookups.len(),
        model.complexity()
    );
    for s in &model.states {
        println!(
            "  state {:10} init {:>10.4}  method {}",
            s.name,
            s.init,
            s.method.name()
        );
    }

    // Stage 1: lowering (AST -> IR), LUT extraction included.
    let lowered = lower_model(&model, &CodegenOptions::default());
    let mut module = lowered.module;
    println!(
        "\n== after lowering: {} ops, {} LUT table(s) {:?} ==",
        op_count(&module),
        module.luts.len(),
        lowered.report.lut_tables
    );
    if !lowered.report.rl_fallbacks.is_empty() {
        println!(
            "   (rush_larsen fell back to fe for non-gate states: {:?})",
            lowered.report.rl_fallbacks
        );
    }

    // Stage 2: the scalar optimization pipeline, pass by pass.
    let passes: Vec<Box<dyn Pass>> = vec![
        Box::new(ConstProp),
        Box::new(Canonicalize),
        Box::new(Cse),
        Box::new(Licm),
        Box::new(Dce),
    ];
    for p in passes {
        let before = op_count(&module);
        let changed = p.run_on(&mut module);
        println!(
            "== after {:12}: {:4} ops ({}{})",
            p.name(),
            op_count(&module),
            if changed { "changed" } else { "no change" },
            if before != op_count(&module) {
                format!(", {:+}", op_count(&module) as isize - before as isize)
            } else {
                String::new()
            }
        );
    }

    // Stage 3: vectorization at AVX-512 width.
    Vectorize::new(8).run_on(&mut module);
    Cse.run_on(&mut module);
    Dce.run_on(&mut module);
    println!(
        "== after vectorize(8) + cleanup: {} ops ==",
        op_count(&module)
    );
    limpet::ir::verify_module(&module).expect("pipeline must preserve validity");

    println!("\n==== final vectorized IR ====");
    let text = print_module(&module);
    // Large models produce a lot of IR; cap the dump.
    const MAX_LINES: usize = 120;
    for (i, line) in text.lines().enumerate() {
        if i == MAX_LINES {
            println!("  ... ({} more lines)", text.lines().count() - MAX_LINES);
            break;
        }
        println!("{line}");
    }

    // Round-trip proof: the printed IR parses back identically.
    let reparsed = limpet::ir::parse_module(&text).expect("printer output parses");
    assert_eq!(print_module(&reparsed), text);
    println!("\n(round-trip check passed: printed IR re-parses identically)");
}
