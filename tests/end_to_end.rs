//! Cross-crate integration tests: EasyML source → frontend → codegen →
//! passes → bytecode → execution, across the whole 43-model suite.

use limpet::codegen::pipeline::VectorIsa;
use limpet::harness::{model_info, PipelineKind, Simulation, Stimulus, Workload};
use limpet::models::{self, SizeClass, ROSTER};
use limpet::vm::Kernel;
use limpet::{Compiler, Isa};

/// Every roster model must flow through the complete stack and remain
/// finite over a paced simulation, under both pipelines.
#[test]
fn all_43_models_simulate_stably_both_pipelines() {
    let wl = Workload {
        n_cells: 16,
        steps: 0,
        dt: 0.01,
    };
    for e in &ROSTER {
        let m = models::model(e.name);
        for kind in [
            PipelineKind::Baseline,
            PipelineKind::LimpetMlir(VectorIsa::Avx512),
        ] {
            let mut sim = Simulation::new(&m, kind, &wl);
            sim.set_stimulus(Stimulus {
                period: 3.0,
                duration: 0.5,
                amplitude: 40.0,
            });
            sim.run(500);
            for cell in [0usize, 7, 15] {
                let v = sim.vm(cell);
                assert!(
                    v.is_finite(),
                    "{} / {:?}: Vm diverged at cell {cell}: {v}",
                    e.name,
                    kind
                );
            }
            for s in &m.states {
                let v = sim.state_of(0, &s.name).unwrap();
                assert!(
                    v.is_finite(),
                    "{} / {:?}: state {} diverged: {v}",
                    e.name,
                    kind,
                    s.name
                );
            }
        }
    }
}

/// Baseline and limpetMLIR trajectories agree for every model (the
/// optimizations are semantics-preserving). Tolerance covers the vmath
/// (SVML stand-in) accuracy and LUT interpolation differences between the
/// scalar and vectorized interpolators (none — same tables — so only
/// vmath matters).
#[test]
fn all_43_models_pipelines_agree() {
    let wl = Workload {
        n_cells: 8,
        steps: 0,
        dt: 0.01,
    };
    for e in &ROSTER {
        let m = models::model(e.name);
        let mut a = Simulation::new(&m, PipelineKind::Baseline, &wl);
        let mut b = Simulation::new(&m, PipelineKind::LimpetMlir(VectorIsa::Avx512), &wl);
        let stim = Stimulus {
            period: 5.0,
            duration: 0.5,
            amplitude: 30.0,
        };
        a.set_stimulus(stim);
        b.set_stimulus(stim);
        for _ in 0..300 {
            a.step();
            b.step();
        }
        let (va, vb) = (a.vm(0), b.vm(0));
        let denom = va.abs().max(1.0);
        assert!(
            (va - vb).abs() / denom < 1e-5,
            "{}: baseline Vm {va} vs limpetMLIR Vm {vb}",
            e.name
        );
    }
}

/// The textual IR of every roster model round-trips through the parser.
#[test]
fn all_43_models_ir_round_trips() {
    for e in &ROSTER {
        let m = models::model(e.name);
        let c = Compiler::new()
            .isa(Isa::Avx512)
            .compile_model(m)
            .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        let text = c.ir_text();
        let reparsed =
            limpet::ir::parse_module(&text).unwrap_or_else(|err| panic!("{}: {err}", e.name));
        assert_eq!(
            limpet::ir::print_module(&reparsed),
            text,
            "{} IR not a fixpoint",
            e.name
        );
        limpet::ir::verify_module(&reparsed).unwrap();
    }
}

/// Kernel programs grow with model class: the bytecode length ordering
/// must match small < medium < large on class averages.
#[test]
fn kernel_size_tracks_model_class() {
    let avg_instrs = |class: SizeClass| {
        let names = models::names_in_class(class);
        let total: usize = names
            .iter()
            .map(|n| {
                let m = models::model(n);
                let module = PipelineKind::Baseline.build(&m);
                Kernel::from_module(&module, &model_info(&m))
                    .unwrap()
                    .program()
                    .instrs
                    .len()
            })
            .sum();
        total / names.len()
    };
    let s = avg_instrs(SizeClass::Small);
    let m = avg_instrs(SizeClass::Medium);
    let l = avg_instrs(SizeClass::Large);
    assert!(
        s < m && m < l,
        "instruction counts not ordered: {s} {m} {l}"
    );
}

/// The sharded (threaded) driver produces the same result as the
/// single-thread driver for a real model.
#[test]
fn threaded_execution_matches_single_thread() {
    use limpet::harness::ShardedSimulation;
    let m = models::model("BeelerReuter");
    let wl = Workload {
        n_cells: 32,
        steps: 0,
        dt: 0.01,
    };
    let mut single = Simulation::new(&m, PipelineKind::LimpetMlir(VectorIsa::Avx2), &wl);
    let mut sharded = ShardedSimulation::new(&m, PipelineKind::LimpetMlir(VectorIsa::Avx2), &wl, 4);
    for _ in 0..200 {
        single.step();
    }
    sharded.run_threaded(200);
    assert_eq!(
        single.state_bits(),
        sharded.state_bits(),
        "sharded trajectory diverged from single-thread driver"
    );
}

/// The full two-stage loop (ionic kernel + CG monodomain solve) conserves
/// stability over a long tissue run.
#[test]
fn tissue_two_stage_loop_is_stable() {
    let m = models::model("AlievPanfilov");
    let wl = Workload {
        n_cells: 64,
        steps: 0,
        dt: 0.05,
    };
    let mut sim = Simulation::new(&m, PipelineKind::LimpetMlir(VectorIsa::Avx512), &wl);
    sim.set_stimulus(Stimulus {
        period: 1e12,
        duration: 0.0,
        amplitude: 0.0,
    });
    sim.enable_tissue(0.4);
    for c in 0..6 {
        sim.perturb_vm(c, 40.0);
    }
    for _ in 0..5000 {
        sim.step();
    }
    for c in 0..64 {
        assert!(sim.vm(c).is_finite(), "cell {c} diverged");
    }
}
