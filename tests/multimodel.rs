//! Multimodel support (paper §3.3.2, "Multimodel support"): offspring
//! models may read and modify the state of a parent model; without an
//! attached parent, accesses fall through to the local storage.

use limpet::harness::model_info;
use limpet::vm::{Kernel, ParentView, SimContext, StateLayout};
use limpet::{Compiler, Isa};

/// An offspring model whose conductance modulation comes from the parent
/// model's `f_mod` state (falling back to the external `Vm` path when no
/// parent is attached).
const OFFSPRING: &str = "
Vm; .external(); .parent();
Iion; .external();
group{ g = 0.25; }.param();
diff_x = (0.5 - x) / 10.0;
x_init = 0.1;
Iion = g * x * (Vm + 80.0);
";

#[test]
fn offspring_reads_parent_state_when_attached() {
    for isa in [Isa::Scalar, Isa::Avx512] {
        let compiled = Compiler::new()
            .isa(isa)
            .compile("Offspring", OFFSPRING)
            .unwrap();
        let info = model_info(compiled.model());
        let kernel = Kernel::from_module(compiled.module(), &info).unwrap();

        let n = 16;
        let layout = match isa {
            Isa::Scalar => StateLayout::Aos,
            _ => StateLayout::AoSoA { block: 8 },
        };
        let ctx = SimContext { dt: 0.01, t: 0.0 };

        // Run 1: no parent. Vm reads fall back to the external array (0s).
        let mut st1 = kernel.new_states(n, layout);
        let mut ext1 = kernel.new_ext(n);
        kernel.run_step(&mut st1, &mut ext1, None, ctx);
        let iion_no_parent = ext1.get(0, 1);

        // Run 2: parent attached, with its Vm-like state at +20.
        let mut st2 = kernel.new_states(n, layout);
        let mut ext2 = kernel.new_ext(n);
        let mut parent_states = limpet::vm::CellStates::new(n, &[20.0], StateLayout::Aos);
        let mut pv = ParentView {
            states: &mut parent_states,
            var_map: vec![0],
        };
        kernel.run_step(&mut st2, &mut ext2, Some(&mut pv), ctx);
        let iion_with_parent = ext2.get(0, 1);

        // Iion = g·x·(Vm+80): Vm=0 (fallback) vs Vm=20 (parent).
        let expected_ratio = (20.0 + 80.0) / 80.0;
        let ratio = iion_with_parent / iion_no_parent;
        assert!(
            (ratio - expected_ratio).abs() < 1e-9,
            "{isa:?}: ratio {ratio} vs expected {expected_ratio}"
        );
    }
}

#[test]
fn parent_and_no_parent_agree_across_widths() {
    // The parent path must vectorize identically to the scalar path.
    let scalar = Compiler::new()
        .isa(Isa::Scalar)
        .compile("O", OFFSPRING)
        .unwrap();
    let vector = Compiler::new()
        .isa(Isa::Avx512)
        .compile("O", OFFSPRING)
        .unwrap();
    let info = model_info(scalar.model());
    let ks = Kernel::from_module(scalar.module(), &info).unwrap();
    let kv = Kernel::from_module(vector.module(), &info).unwrap();

    let n = 16;
    let ctx = SimContext { dt: 0.01, t: 0.0 };
    let mut results = Vec::new();
    for k in [&ks, &kv] {
        let layout = if k.width() == 1 {
            StateLayout::Aos
        } else {
            StateLayout::AoSoA { block: 8 }
        };
        let mut st = k.new_states(n, layout);
        let mut ext = k.new_ext(n);
        let mut pstates = limpet::vm::CellStates::new(n, &[13.5], StateLayout::Aos);
        let mut pv = ParentView {
            states: &mut pstates,
            var_map: vec![0],
        };
        for step in 0..50 {
            let c = SimContext {
                dt: ctx.dt,
                t: step as f64 * ctx.dt,
            };
            k.run_step(&mut st, &mut ext, Some(&mut pv), c);
        }
        results.push((st.get(3, 0), ext.get(3, 1)));
    }
    let (s, v) = (results[0], results[1]);
    assert!((s.0 - v.0).abs() < 1e-12, "state: {} vs {}", s.0, v.0);
    assert!((s.1 - v.1).abs() < 1e-12, "Iion: {} vs {}", s.1, v.1);
}

#[test]
fn parent_markup_requires_external() {
    // `.parent()` on a non-external variable is a semantic error.
    let err = limpet::easyml::compile_model("Bad", "a; .parent();\ndiff_x = -x * a;\na = 0;")
        .unwrap_err();
    assert!(err.to_string().contains("parent"), "{err}");
}
