//! Shape-level checks of the paper's performance claims (§4–§5), run at a
//! reduced workload. Absolute numbers differ from the paper (our substrate
//! is a bytecode VM, not a Cascade Lake testbed); the *orderings* the
//! paper reports must hold:
//!
//! * AVX-512 ≥ AVX2 ≥ SSE ≥ 1 (Fig. 5);
//! * limpetMLIR beats the compiler-simd configuration (§5);
//! * vectorized-LUT beats no-LUT on LUT-heavy models (§3.4.2);
//! * large models speed up at least as much as small ones (Fig. 2);
//! * at 32 modeled threads, large models keep large speedups while small
//!   models collapse toward (or below) 1x (Fig. 3).

use limpet::codegen::pipeline::VectorIsa;
use limpet::harness::{
    fig5_isa_threads, geomean, icc_comparison, measure_median, ExperimentOptions, PipelineKind,
    Simulation, ThreadTiming, TimingModel, Workload,
};
use limpet::models;

fn time_config(model: &str, kind: PipelineKind, n_cells: usize, steps: usize) -> f64 {
    let m = models::model(model);
    let wl = Workload {
        n_cells,
        steps: 0,
        dt: 0.01,
    };
    let mut sim = Simulation::new(&m, kind, &wl);
    sim.run(2); // warm-up
    measure_median(3, || sim.run(steps))
}

/// Fig. 5 ordering on a representative medium model: wider ISAs win.
#[test]
fn isa_ordering_holds() {
    let (cells, steps) = (2048, 12);
    let base = time_config("BeelerReuter", PipelineKind::Baseline, cells, steps);
    let sse = time_config(
        "BeelerReuter",
        PipelineKind::LimpetMlir(VectorIsa::Sse),
        cells,
        steps,
    );
    let avx2 = time_config(
        "BeelerReuter",
        PipelineKind::LimpetMlir(VectorIsa::Avx2),
        cells,
        steps,
    );
    let avx512 = time_config(
        "BeelerReuter",
        PipelineKind::LimpetMlir(VectorIsa::Avx512),
        cells,
        steps,
    );
    let (s2, s4, s8) = (base / sse, base / avx2, base / avx512);
    assert!(s2 > 1.0, "SSE did not beat baseline: {s2:.2}");
    // Allow 10% timing noise in the pairwise ordering.
    assert!(s4 > s2 * 0.9, "AVX2 {s4:.2} not above SSE {s2:.2}");
    assert!(s8 > s4 * 0.9, "AVX-512 {s8:.2} not above AVX2 {s4:.2}");
}

/// §5: limpetMLIR beats the icc-style configuration on a LUT-heavy model.
#[test]
fn limpet_mlir_beats_compiler_simd() {
    let (cells, steps) = (2048, 12);
    let base = time_config("LuoRudy91", PipelineKind::Baseline, cells, steps);
    let icc = time_config(
        "LuoRudy91",
        PipelineKind::CompilerSimd(VectorIsa::Avx512),
        cells,
        steps,
    );
    let mlir = time_config(
        "LuoRudy91",
        PipelineKind::LimpetMlir(VectorIsa::Avx512),
        cells,
        steps,
    );
    let (s_icc, s_mlir) = (base / icc, base / mlir);
    assert!(
        s_mlir > s_icc,
        "limpetMLIR {s_mlir:.2}x must beat compiler-simd {s_icc:.2}x"
    );
}

/// §3.4.2: on a rate-table-heavy model, the LUT version beats no-LUT.
#[test]
fn lut_beats_no_lut() {
    let (cells, steps) = (2048, 12);
    let with = time_config(
        "HodgkinHuxley",
        PipelineKind::LimpetMlir(VectorIsa::Avx512),
        cells,
        steps,
    );
    let without = time_config(
        "HodgkinHuxley",
        PipelineKind::LimpetMlirNoLut(VectorIsa::Avx512),
        cells,
        steps,
    );
    assert!(
        without > with,
        "no-LUT {without:.4}s should be slower than LUT {with:.4}s"
    );
}

/// Fig. 2 trend: large-model speedups exceed small-model speedups
/// (geomean over two representatives each).
#[test]
fn large_models_speed_up_more_than_small() {
    let (cells, steps) = (1024, 8);
    let speedup = |name: &str| {
        let b = time_config(name, PipelineKind::Baseline, cells, steps);
        let l = time_config(
            name,
            PipelineKind::LimpetMlir(VectorIsa::Avx512),
            cells,
            steps,
        );
        b / l
    };
    let small = geomean(["Plonsey", "AlievPanfilov"].iter().map(|n| speedup(n)));
    let large = geomean(["OHara", "GrandiPanditVoigt"].iter().map(|n| speedup(n)));
    assert!(
        large > small * 0.95,
        "large geomean {large:.2}x below small {small:.2}x"
    );
}

/// Fig. 3 shape via the timing model: at 32 threads, a large model keeps a
/// substantial speedup while a small model collapses toward 1x (or below).
#[test]
fn thread_scaling_shape_matches_fig3() {
    let timing = ThreadTiming::model_only(TimingModel::default());
    let opts = ExperimentOptions {
        n_cells: 1024,
        steps: 8,
        repeats: 1,
        only: vec!["Plonsey".into(), "OHara".into()],
    };
    let f = limpet::harness::fig3_threads32(&opts, &timing);
    let small = f.rows.iter().find(|r| r.model == "Plonsey").unwrap();
    let large = f.rows.iter().find(|r| r.model == "OHara").unwrap();
    assert!(
        large.speedup > small.speedup,
        "Fig3 shape: large {:.2}x must exceed small {:.2}x",
        large.speedup,
        small.speedup
    );
    assert!(
        small.speedup < large.speedup * 0.8,
        "small-model speedup should collapse at 32 threads"
    );
}

/// Fig. 5 shape via the full runner on a small roster subset.
#[test]
fn fig5_runner_preserves_isa_ordering_at_one_thread() {
    let timing = ThreadTiming::model_only(TimingModel::default());
    let opts = ExperimentOptions {
        n_cells: 1024,
        steps: 8,
        repeats: 1,
        only: vec!["BeelerReuter".into(), "LuoRudy91".into()],
    };
    let f = fig5_isa_threads(&opts, &timing);
    let get = |isa: &str, t: usize| {
        f.series
            .iter()
            .find(|p| p.isa == isa && p.threads == t)
            .map(|p| p.geomean)
            .unwrap()
    };
    let (sse, avx2, avx512) = (get("SSE", 1), get("AVX2", 1), get("AVX-512", 1));
    assert!(
        avx512 > avx2 * 0.9 && avx2 > sse * 0.9,
        "ISA ordering violated: {sse:.2} {avx2:.2} {avx512:.2}"
    );
    assert!(f.overall_geomean > 1.0);
}

/// §5 comparison through the runner.
#[test]
fn icc_comparison_runner_shape() {
    let tm = TimingModel::default();
    let opts = ExperimentOptions {
        n_cells: 1024,
        steps: 8,
        repeats: 1,
        only: vec!["HodgkinHuxley".into()],
    };
    let f = icc_comparison(&opts, &tm);
    assert!(
        f.limpet_mlir > f.compiler_simd,
        "limpetMLIR {:.2} vs compiler-simd {:.2}",
        f.limpet_mlir,
        f.compiler_simd
    );
}

/// §7 extension: spline LUTs on 4x-coarser tables track the
/// full-resolution linear-LUT trajectory closely while using a quarter of
/// the table memory.
#[test]
fn spline_luts_save_memory_and_preserve_accuracy() {
    use limpet::harness::model_info;
    use limpet::vm::Kernel;
    let m = models::model("HodgkinHuxley");
    let info = model_info(&m);
    let lin = Kernel::from_module(
        &PipelineKind::LimpetMlir(VectorIsa::Avx512).build(&m),
        &info,
    )
    .unwrap();
    let spl = Kernel::from_module(
        &PipelineKind::LimpetMlirSpline(VectorIsa::Avx512).build(&m),
        &info,
    )
    .unwrap();
    // Memory: 4x coarser step -> about a quarter of the bytes.
    let ratio = lin.lut_bytes() as f64 / spl.lut_bytes() as f64;
    assert!(
        (3.5..4.5).contains(&ratio),
        "table memory ratio {ratio} not ~4x ({} vs {})",
        lin.lut_bytes(),
        spl.lut_bytes()
    );

    // Accuracy: trajectories agree through a full paced action potential.
    let wl = Workload {
        n_cells: 8,
        steps: 0,
        dt: 0.01,
    };
    let mut a = Simulation::new(&m, PipelineKind::LimpetMlir(VectorIsa::Avx512), &wl);
    let mut b = Simulation::new(&m, PipelineKind::LimpetMlirSpline(VectorIsa::Avx512), &wl);
    let stim = limpet::harness::Stimulus {
        period: 25.0,
        duration: 1.0,
        amplitude: 80.0,
    };
    a.set_stimulus(stim);
    b.set_stimulus(stim);
    let mut max_dv: f64 = 0.0;
    for _ in 0..3000 {
        a.step();
        b.step();
        max_dv = max_dv.max((a.vm(0) - b.vm(0)).abs());
    }
    assert!(
        max_dv < 1.0,
        "spline trajectory deviates by {max_dv} mV over an AP"
    );
}
