//! Property tests for the checkpoint snapshot codec: arbitrary snapshots
//! must round-trip through `encode`/`decode` bit-identically, and every
//! damaged byte stream — torn tails, single-byte corruption, version
//! skew — must come back as a typed [`RejectReason`] on the right ladder
//! rung, never a panic and never a silently different snapshot.
//!
//! The store-level counterparts (atomic rotation, self-healing removal,
//! previous-snapshot fallback, seeded fault injection) live in
//! `crates/harness/tests/checkpoint_resume.rs` against a real on-disk
//! [`SnapshotStore`]; these tests attack the codec itself, mirroring the
//! wire-layer fuzz suite in `crates/serve/tests/fuzz_wire.rs`.

use limpet::harness::{RejectReason, Snapshot, SNAPSHOT_FORMAT_VERSION};
use proptest::prelude::*;

/// Builds a snapshot whose every field is derived from the generators'
/// outputs — including the optional fields' presence.
fn build(
    seed: u64,
    t_bits: u64,
    steps: u64,
    state: Vec<u64>,
    with_plan: bool,
    meta_sel: usize,
) -> Snapshot {
    Snapshot {
        model: format!("Model{}", seed % 97),
        config: if seed.is_multiple_of(2) {
            "baseline".to_string()
        } else {
            "limpetMLIR-avx512".to_string()
        },
        n_cells: (seed % 33) as usize,
        dt_bits: 0.01f64.to_bits() ^ (seed >> 32),
        t_bits,
        steps_done: steps,
        tier: "optimized".to_string(),
        executed_steps: steps.wrapping_mul(3),
        nan_plan: with_plan.then_some((steps, seed)),
        shards: vec![(seed % 5) as usize, (seed % 7) as usize],
        meta: match meta_sel {
            0 => None,
            1 => Some(String::new()),
            2 => Some(r#"{"verb":"submit","id":"j-1","cells":256}"#.to_string()),
            _ => Some(format!("opaque sidecar {seed} \u{2764} with spaces")),
        },
        state,
    }
}

/// A representative snapshot, the seed for the truncation and mutation
/// attacks (as `SUBMIT` is for the wire fuzz suite).
fn sample() -> Snapshot {
    build(
        12345,
        2.5f64.to_bits(),
        400,
        (0..24u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect(),
        true,
        2,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary snapshots — any bit patterns in the clock and state,
    /// any counter values, optional fields present or absent — decode
    /// back to an `==`-equal snapshot.
    #[test]
    fn round_trip_is_bit_identical(
        seed in 0u64..u64::MAX,
        t_bits in 0u64..u64::MAX,
        steps in 0u64..u64::MAX,
        state in prop::collection::vec(0u64..u64::MAX, 0..64),
        with_plan in any::<bool>(),
        meta_sel in 0usize..4,
    ) {
        let snap = build(seed, t_bits, steps, state, with_plan, meta_sel);
        let decoded = Snapshot::decode(&snap.encode()).expect("clean bytes decode");
        prop_assert_eq!(decoded, snap);
    }

    /// Truncation at every prefix length: a torn write is always
    /// rejected — inside the header as `BadHeader`, inside the payload
    /// as `TornTail` (the header promises a payload length the bytes
    /// cannot honor). No prefix ever decodes to a snapshot.
    #[test]
    fn truncated_snapshots_are_rejected_on_the_torn_rung(cut in 0usize..4096) {
        let bytes = sample().encode();
        let cut = cut.min(bytes.len() - 1);
        match Snapshot::decode(&bytes[..cut]) {
            Ok(s) => prop_assert!(false, "torn prefix of {cut} bytes decoded: {s:?}"),
            Err(r) => prop_assert!(
                matches!(r, RejectReason::BadHeader | RejectReason::TornTail),
                "cut at {cut} rejected as {r:?}, expected bad-header or torn-tail"
            ),
        }
    }

    /// Single-byte corruption anywhere in the stream is always caught:
    /// FNV-1a's per-byte chain is injective, so a payload flip cannot
    /// collide the checksum, and a header flip lands on one of the
    /// header rungs. Never `Ok`, never a panic.
    #[test]
    fn mutated_snapshots_never_decode(pos in 0usize..4096, byte in 0usize..256) {
        let mut bytes = sample().encode();
        let pos = pos.min(bytes.len() - 1);
        if bytes[pos] == byte as u8 {
            return Ok(()); // not a mutation
        }
        bytes[pos] = byte as u8;
        prop_assert!(
            Snapshot::decode(&bytes).is_err(),
            "byte {byte:#04x} at offset {pos} slipped through"
        );
    }

    /// Version skew: any header version other than the current one is
    /// rejected as `StaleVersion` — an old build's snapshot is refused
    /// outright rather than misread.
    #[test]
    fn version_skew_is_rejected_as_stale(version in 0u64..1_000_000) {
        if version == u64::from(SNAPSHOT_FORMAT_VERSION) {
            return Ok(());
        }
        let bytes = sample().encode();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let header = std::str::from_utf8(&bytes[..header_end]).unwrap();
        let mut tokens: Vec<String> = header.split(' ').map(String::from).collect();
        tokens[1] = version.to_string();
        let mut patched = tokens.join(" ").into_bytes();
        patched.extend_from_slice(&bytes[header_end..]);
        match Snapshot::decode(&patched) {
            Err(RejectReason::StaleVersion) => {}
            other => prop_assert!(false, "version {version} gave {other:?}"),
        }
    }
}

/// The bit patterns most likely to betray a lossy codec — NaN, both
/// infinities, negative zero, all-ones — survive a round trip exactly,
/// in the state vector and in the clock fields alike.
#[test]
fn hostile_bit_patterns_round_trip() {
    let mut snap = sample();
    snap.state = vec![
        f64::NAN.to_bits(),
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        (-0.0f64).to_bits(),
        0,
        u64::MAX,
        f64::MIN_POSITIVE.to_bits(),
        5e-324f64.to_bits(), // subnormal
    ];
    snap.t_bits = f64::NAN.to_bits();
    snap.dt_bits = u64::MAX;
    snap.steps_done = u64::MAX;
    snap.executed_steps = u64::MAX;
    snap.nan_plan = Some((u64::MAX, u64::MAX));
    let decoded = Snapshot::decode(&snap.encode()).expect("decode");
    assert_eq!(decoded, snap);
}

/// Empty state and empty shard list are legal (a zero-cell snapshot is
/// degenerate but must not wedge the codec).
#[test]
fn empty_state_round_trips() {
    let mut snap = sample();
    snap.state = Vec::new();
    snap.n_cells = 0;
    snap.shards = Vec::new();
    snap.meta = None;
    snap.nan_plan = None;
    let decoded = Snapshot::decode(&snap.encode()).expect("decode");
    assert_eq!(decoded, snap);
}

/// Garbage that never was a snapshot: empty input, wrong magic, and
/// random text all land on the bad-header rung.
#[test]
fn non_snapshots_are_bad_header() {
    for bytes in [
        &b""[..],
        &b"\n"[..],
        &b"limpet-cache 1 0 0\npayload"[..],
        &b"not a checkpoint at all"[..],
        &b"limpet-checkpoint\n"[..], // magic alone, no fields
    ] {
        assert_eq!(
            Snapshot::decode(bytes),
            Err(RejectReason::BadHeader),
            "input {:?}",
            String::from_utf8_lossy(bytes)
        );
    }
}
